//! The observability layer end to end: a zipfian ticket mix runs through a
//! [`Session`] built with [`ServeConfig::observability`] on, then the
//! example prints the metrics registry (engine counters and gauges,
//! queue-wait / service / chunk-latency histograms, the cost model's
//! predicted-vs-observed ratio) and replays **one query's complete
//! lifecycle** — submit → admit → cache lookup → chunk steps → done —
//! from a single [`Session::trace_snapshot`].
//!
//! Run with `cargo run --release --example observability [queries]`
//! (default 16).

use radix_decluster::prelude::*;

fn main() {
    let queries = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);

    // A small multi-tenant mix: zipfian popularity repeats joins, so the
    // trace shows both cold (cache-miss) and warm (cache-hit) lifecycles.
    let mix = QueryMix::generate(&MixConfig {
        tenants: vec![(30_000, 2), (10_000, 1), (4_000, 2)],
        queries,
        zipf_exponent: 1.0,
        seed: 11,
        ..MixConfig::default()
    });

    let mut session = Session::new(ServeConfig {
        params: CacheParams::paper_pentium4(),
        global_budget: MemoryBudget::bytes(mix.tenant_data_bytes(0) / 4),
        max_concurrent: 3,
        cache_bytes: 64 << 20,
        plan_shares: Some(3),
        observability: true,
        ..ServeConfig::default()
    });
    let ids: Vec<(RelationId, RelationId)> = mix
        .tenants
        .iter()
        .map(|w| {
            (
                session.register(w.larger.clone()),
                session.register(w.smaller.clone()),
            )
        })
        .collect();

    println!("serving {queries} queries over {} tenants…\n", ids.len());
    let tickets: Vec<Ticket> = mix
        .queries
        .iter()
        .map(|q| {
            let (larger, smaller) = ids[q.tenant];
            session
                .query(larger, smaller)
                .project(QuerySpec::symmetric(q.project))
                .submit()
        })
        .collect();
    while session.drive(64) > 0 {}
    let reports: Vec<_> = tickets
        .iter()
        .map(|t| match t.poll(&mut session) {
            QueryPoll::Done(report) => report,
            other => panic!("every ticket must finish, got {other:?}"),
        })
        .collect();

    // 1. The whole session in one text snapshot.
    let metrics = session.metrics().expect("observability is on");
    println!("=== metrics snapshot ===\n{}", metrics.to_text());

    // 2. One query's complete lifecycle, replayed from the shared trace.
    // Pick the last report: under zipfian repetition it is usually a warm
    // (cache-hit) lifecycle with no join prefix to pay.
    let trace = session.trace_snapshot().expect("observability is on");
    let stats = &reports.last().expect("served at least one query").stats;
    let query = QueryId(stats.query_id);
    println!(
        "=== lifecycle of {query} ({} rows in {} chunks, cache {}) ===",
        stats.rows,
        stats.chunks,
        if stats.cache_hit { "hit" } else { "miss" }
    );
    for event in trace.events_for(query) {
        println!("  [{:>10} ns] {:?}", event.at_ns, event.kind);
    }
    println!(
        "\ntrace holds {} events across {} queries ({} dropped by the ring)",
        trace.events.len(),
        trace.queries().len(),
        trace.dropped
    );

    // 3. The same registry, scrape-ready.
    let prometheus = metrics.to_prometheus();
    let preview: Vec<&str> = prometheus.lines().take(8).collect();
    println!("\n=== prometheus exposition (first lines) ===");
    for line in preview {
        println!("{line}");
    }
}
