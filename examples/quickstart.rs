//! Quickstart: run one projected join with the paper's recommended strategy
//! (DSM post-projection with Radix-Decluster) and print the phase breakdown.
//!
//! ```text
//! cargo run --release --example quickstart [cardinality] [projected_columns]
//! ```

use radix_decluster::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let cardinality: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500_000);
    let pi: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!(
        "Generating two relations of {cardinality} tuples with {pi} projection columns each …"
    );
    let workload = JoinWorkloadBuilder::equal(cardinality, pi).seed(7).build();

    let params = CacheParams::paper_pentium4();
    let spec = QuerySpec::symmetric(pi);

    // The planner applies the paper's rule: unsorted processing while the
    // projection columns fit the cache, partial-cluster + Radix-Decluster
    // beyond that.
    let plan = DsmPostProjection::plan(&workload.larger, &workload.smaller, &params);
    println!(
        "Planned DSM post-projection codes (larger/smaller): {}",
        plan.label()
    );

    let outcome = plan.execute(&workload.larger, &workload.smaller, &spec, &params);
    let t = &outcome.timings;
    println!();
    println!(
        "result: {} tuples × {} columns (expected {} matches)",
        outcome.result.cardinality(),
        outcome.result.num_columns(),
        workload.expected_matches
    );
    println!("phase breakdown:");
    println!(
        "  join index (partitioned hash-join) : {:>9.3} ms",
        t.join.as_secs_f64() * 1e3
    );
    println!(
        "  join-index reorder (radix-cluster)  : {:>9.3} ms",
        t.reorder.as_secs_f64() * 1e3
    );
    println!(
        "  projections, larger side            : {:>9.3} ms",
        t.project_larger.as_secs_f64() * 1e3
    );
    println!(
        "  projections, smaller side           : {:>9.3} ms",
        t.project_smaller.as_secs_f64() * 1e3
    );
    println!(
        "  radix-decluster, smaller side       : {:>9.3} ms",
        t.decluster.as_secs_f64() * 1e3
    );
    println!(
        "  total                               : {:>9.3} ms",
        t.total_millis()
    );

    let projection_share = 1.0 - t.join.as_secs_f64() / t.total().as_secs_f64();
    println!();
    println!(
        "projection phases account for {:.0}% of the query — the paper's point that \
         projection handling must be part of any cache-conscious join.",
        projection_share * 100.0
    );
    assert_eq!(outcome.result.cardinality(), workload.expected_matches);
}
