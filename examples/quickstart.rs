//! Quickstart through the **one front door**: open a [`Session`], register
//! the relations, and run one projected join with the cost-planned strategy
//! — then print the phase breakdown the session measured.
//!
//! ```text
//! cargo run --release --example quickstart [cardinality] [projected_columns]
//! ```
//!
//! (The legacy per-crate entry points this used to call directly are pinned
//! by `examples/legacy_surface.rs`.)

use radix_decluster::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let cardinality: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500_000);
    let pi: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!(
        "Generating two relations of {cardinality} tuples with {pi} projection columns each …"
    );
    let workload = JoinWorkloadBuilder::equal(cardinality, pi).seed(7).build();

    // One front door: the session owns the catalog, the cache params every
    // plan is priced against, and the planner entry every mode resolves
    // through.
    let mut session = Session::with_params(CacheParams::paper_pentium4());
    let larger = session.register(workload.larger);
    let smaller = session.register(workload.smaller);

    let report = session
        .query(larger, smaller)
        .project(QuerySpec::symmetric(pi))
        .run()
        .expect("projection query");

    println!(
        "Planned DSM post-projection codes (larger/smaller): {}",
        report.stats.plan.label()
    );

    let t = &report.stats.timings;
    println!();
    println!(
        "result: {} tuples × {} columns (expected {} matches)",
        report.result.cardinality(),
        report.result.num_columns(),
        workload.expected_matches
    );
    println!("phase breakdown:");
    println!(
        "  join index (partitioned hash-join) : {:>9.3} ms",
        t.join.as_secs_f64() * 1e3
    );
    println!(
        "  join-index reorder (radix-cluster)  : {:>9.3} ms",
        t.reorder.as_secs_f64() * 1e3
    );
    println!(
        "  projections, larger side            : {:>9.3} ms",
        t.project_larger.as_secs_f64() * 1e3
    );
    println!(
        "  projections, smaller side           : {:>9.3} ms",
        t.project_smaller.as_secs_f64() * 1e3
    );
    println!(
        "  radix-decluster, smaller side       : {:>9.3} ms",
        t.decluster.as_secs_f64() * 1e3
    );
    println!(
        "  total                               : {:>9.3} ms",
        t.total_millis()
    );

    let projection_share = 1.0 - t.join.as_secs_f64() / t.total().as_secs_f64();
    println!();
    println!(
        "projection phases account for {:.0}% of the query — the paper's point that \
         projection handling must be part of any cache-conscious join.",
        projection_share * 100.0
    );
    assert_eq!(report.result.cardinality(), workload.expected_matches);
    assert_eq!(report.stats.rows, workload.expected_matches);
}
