//! Pins the **legacy entry points** — the four pre-`Session` front doors —
//! so they keep compiling and keep agreeing with the unified API they are
//! now documented thin wrappers over:
//!
//! | legacy call | front-door replacement |
//! |---|---|
//! | `DsmPostProjection::plan(..).execute(..)` | `session.query(l, s).project(spec).run()` |
//! | `par_dsm_post_projection(.., threads)` | `.threads(t).run()` |
//! | `ProjectionPipeline::new(plan).execute(.., sink)` | `.budget(b).stream(sink)` |
//! | `RdxServer::run_batch(&requests)` | `submit()` tickets + `Session::drive` + `Ticket::poll` |
//!
//! Run with `cargo run --release --example legacy_surface`.

use radix_decluster::prelude::*;

fn columns(result: &ResultRelation) -> Vec<Vec<i32>> {
    result
        .columns()
        .iter()
        .map(|c| c.as_slice().to_vec())
        .collect()
}

fn main() {
    let n = 50_000;
    let pi = 2;
    let w = JoinWorkloadBuilder::equal(n, pi).seed(11).build();
    let params = CacheParams::paper_pentium4();
    let spec = QuerySpec::symmetric(pi);

    // Legacy door 1: the sequential executor with the paper's planning rule.
    let plan = DsmPostProjection::plan(&w.larger, &w.smaller, &params);
    let sequential = plan.execute(&w.larger, &w.smaller, &spec, &params);
    println!(
        "DsmPostProjection::execute      {:>8} rows  codes {}",
        sequential.result.cardinality(),
        plan.label()
    );

    // Legacy door 2: the morsel-parallel executor.
    let parallel = par_dsm_post_projection(
        &plan,
        &w.larger,
        &w.smaller,
        &spec,
        &params,
        &ExecPolicy::with_threads(0), // auto-detect
    );
    println!(
        "par_dsm_post_projection         {:>8} rows  (byte-identical: {})",
        parallel.result.cardinality(),
        columns(&parallel.result) == columns(&sequential.result)
    );

    // Legacy door 3: the streaming pipeline under a memory budget.
    let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::fraction_of(n * pi * 8, 16));
    let (streamed, stats) = ProjectionPipeline::new(plan)
        .execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
    println!(
        "ProjectionPipeline::execute     {:>8} rows  in {} chunks (byte-identical: {})",
        streamed.result.cardinality(),
        stats.chunks_emitted,
        columns(&streamed.result) == columns(&sequential.result)
    );

    // Legacy door 4: the batch server — itself now a thin wrapper over the
    // ticket engine.
    let mut server = RdxServer::new(ServeConfig {
        params: params.clone(),
        plan_shares: Some(1),
        ..ServeConfig::default()
    });
    let larger = server.register(w.larger.clone());
    let smaller = server.register(w.smaller.clone());
    let report = server.run_batch(&[ServerRequest::new(larger, smaller, spec).with_codes(plan)]);
    let batch = report.outcomes[0].outcome.as_ref().expect("served");
    println!(
        "RdxServer::run_batch            {:>8} rows  in {} chunks (byte-identical: {})",
        batch.result.cardinality(),
        batch.stats.chunks,
        columns(&batch.result) == columns(&sequential.result)
    );

    // And the front door they all route through now.
    let mut session = Session::with_params(params);
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    let front = session
        .query(larger, smaller)
        .project(spec)
        .codes(plan)
        .run()
        .expect("front door");
    println!(
        "Session::query(..).run()        {:>8} rows  (byte-identical: {})",
        front.result.cardinality(),
        columns(&front.result) == columns(&sequential.result)
    );

    assert_eq!(columns(&parallel.result), columns(&sequential.result));
    assert_eq!(columns(&streamed.result), columns(&sequential.result));
    assert_eq!(columns(&batch.result), columns(&sequential.result));
    assert_eq!(columns(&front.result), columns(&sequential.result));
    println!("all five surfaces agree byte for byte.");
}
