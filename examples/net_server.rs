//! A standalone wire-protocol server: registers a deterministic join
//! workload, binds a TCP listener, and hands the session to the `rdx-net`
//! poll loop — clients connect with `examples/net_client.rs` (or any
//! speaker of the versioned frame format in `net::wire`).
//!
//! The server runs single-threaded: socket I/O and engine chunk-steps
//! interleave in one loop, so a slow client can never block another
//! query's progress — its replies queue under per-connection
//! backpressure instead.  It exits once at least one client has been
//! seen and every connection has drained.
//!
//! Run with `cargo run --release --example net_server [addr]`
//! (default `127.0.0.1:7744`), then in another terminal:
//! `cargo run --release --example net_client [addr]`.

use radix_decluster::prelude::*;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7744".to_owned());

    // A seeded workload so every run serves identical data: two relations
    // of 100 000 rows × 2 columns that join with hit rate 1.
    let workload = workload::JoinWorkloadBuilder::equal(100_000, 2)
        .seed(42)
        .build();

    let mut session = Session::new(ServeConfig {
        observability: true,
        ..ServeConfig::default()
    });
    let larger = session.register(workload.larger.clone());
    let smaller = session.register(workload.smaller.clone());

    let listener = NetListener::bind_tcp(&addr).expect("bind listener");
    let bound = listener.tcp_addr().expect("tcp listener has an address");
    println!("serving on {bound}");
    println!(
        "  relation {} = larger ({} rows × {} cols), relation {} = smaller ({} rows × {} cols)",
        larger.raw(),
        workload.larger.cardinality(),
        workload.larger.width(),
        smaller.raw(),
        workload.smaller.cardinality(),
        workload.smaller.width(),
    );
    println!("  connect with: cargo run --release --example net_client {bound}");

    // `into_server` (rather than `Session::serve`) keeps the engine
    // reachable after the loop exits, so we can report engine-side stats
    // next to the connection-lifecycle ones.
    let mut server = session.into_server(listener, NetConfig::default());
    let net = server.serve();
    let engine = server.engine_mut().stats();
    println!(
        "all clients disconnected: {} conns, {} frames in / {} out, {} decode errors, \
         {} backpressure pauses",
        net.accepted, net.frames_in, net.frames_out, net.decode_errors, net.backpressure_pauses,
    );
    println!(
        "engine admitted {} queries ({} rejected, {} cancelled)",
        engine.admissions, engine.rejections, engine.cancellations,
    );
}
