//! A multi-tenant serving session through the **ticket front door**: a
//! zipfian query mix is submitted as non-blocking tickets, pumped with
//! [`Session::drive`] and observed with [`Ticket::poll`] — comparing serial
//! execution, fair chunk interleaving, and interleaving with the
//! clustered-join-index cache warm.  A final pass demonstrates the
//! async-front enabler: new submissions landing between chunk steps of
//! queries already in flight.
//!
//! Run with `cargo run --release --example multi_query_server [queries]`
//! (default 24).
//!
//! Everything here runs in-process; the same engine speaks the wire
//! protocol in `examples/net_server.rs` / `examples/net_client.rs`, where
//! remote clients submit, poll and cancel over TCP or unix sockets.

use radix_decluster::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One served pass: per-query latency (wait + service) and cache hits.
struct PassReport {
    latencies: Vec<Duration>,
    cache_hits: usize,
    peak_concurrency: usize,
    peak_bytes: usize,
    wall: Duration,
}

fn summarize(label: &str, pass: &PassReport) {
    let mut latencies = pass.latencies.clone();
    latencies.sort();
    let wall = pass.wall.as_secs_f64();
    println!(
        "{label:<28} wall {:>7.1} ms  thr {:>6.1} q/s  p50 {:>7.1} ms  p99 {:>7.1} ms  \
         peak-conc {}  peak-bytes {:>9}  cache-hits {}",
        wall * 1e3,
        latencies.len() as f64 / wall.max(1e-9),
        percentile(&latencies, 0.50).as_secs_f64() * 1e3,
        percentile(&latencies, 0.99).as_secs_f64() * 1e3,
        pass.peak_concurrency,
        pass.peak_bytes,
        pass.cache_hits,
    );
}

/// Submits every query of the mix as a ticket, drives the session to
/// completion with bounded `drive` calls, and polls outcomes as they land.
fn serve_mix(
    session: &mut Session,
    mix: &QueryMix,
    ids: &[(RelationId, RelationId)],
) -> PassReport {
    let started = std::time::Instant::now();
    session.engine_mut().reset_stats();
    let tickets: Vec<Ticket> = mix
        .queries
        .iter()
        .map(|q| {
            let (larger, smaller) = ids[q.tenant];
            session
                .query(larger, smaller)
                .project(QuerySpec::symmetric(q.project))
                .submit()
        })
        .collect();
    let mut latencies = Vec::with_capacity(tickets.len());
    let mut cache_hits = 0;
    let mut open: Vec<Ticket> = tickets;
    // The async-front loop shape: run a bounded burst of chunk-steps, then
    // poll — submissions, polls and drives interleave freely.
    loop {
        let ran = session.drive(8);
        open.retain(|t| match t.poll(session) {
            QueryPoll::Done(report) => {
                latencies.push(report.stats.wait + report.stats.service);
                cache_hits += report.stats.cache_hit as usize;
                false
            }
            QueryPoll::Rejected(e) => panic!("query rejected: {e}"),
            QueryPoll::Queued | QueryPoll::Chunk(_) => true,
        });
        if ran == 0 && open.is_empty() {
            break;
        }
    }
    let stats = session.engine_mut().stats();
    PassReport {
        latencies,
        cache_hits,
        peak_concurrency: stats.peak_concurrency,
        peak_bytes: stats.peak_concurrent_bytes,
        wall: started.elapsed(),
    }
}

fn main() {
    let queries = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);

    println!("generating the multi-tenant mix ({queries} queries, zipfian tenants)…");
    let mix = QueryMix::generate(&MixConfig {
        tenants: vec![(400_000, 2), (120_000, 4), (40_000, 1), (12_000, 2)],
        queries,
        zipf_exponent: 1.0,
        seed: 7,
        ..MixConfig::default()
    });
    println!(
        "tenant popularity: {:?}  (repeat factor {:.1}×)",
        mix.popularity(),
        mix.repeat_factor()
    );

    // Global budget: a quarter of the hottest tenant's data, split across
    // up to four admitted queries.  The tenants' relations are Arc-shared
    // across all three sessions — registered, never copied.
    let budget = MemoryBudget::bytes(mix.tenant_data_bytes(0) / 4);
    let relations: Vec<(Arc<DsmRelation>, Arc<DsmRelation>)> = mix
        .tenants
        .iter()
        .map(|w| (Arc::new(w.larger.clone()), Arc::new(w.smaller.clone())))
        .collect();
    let base = ServeConfig {
        params: CacheParams::paper_pentium4(),
        global_budget: budget,
        max_concurrent: 4,
        threads_per_query: 1,
        cache_bytes: 0,
        fairness: FairnessPolicy::CostWeighted,
        plan_shares: Some(4),
        observability: false,
        profiled: false,
        ..ServeConfig::default()
    };
    let register_all = |session: &mut Session| -> Vec<(RelationId, RelationId)> {
        relations
            .iter()
            .map(|(l, s)| {
                (
                    session.register_arc(l.clone()),
                    session.register_arc(s.clone()),
                )
            })
            .collect()
    };

    // 1. Serial: one query at a time, no reuse.
    let mut serial = Session::new(ServeConfig {
        max_concurrent: 1,
        ..base.clone()
    });
    let ids = register_all(&mut serial);
    summarize("serial (no cache)", &serve_mix(&mut serial, &mix, &ids));

    // 2. Interleaved: admission + fair chunk scheduling, still cold.
    let mut interleaved = Session::new(base.clone());
    let ids = register_all(&mut interleaved);
    summarize(
        "interleaved (no cache)",
        &serve_mix(&mut interleaved, &mix, &ids),
    );

    // 3. Interleaved + clustered-index cache, cold then warm pass.
    let mut cached = Session::new(ServeConfig {
        cache_bytes: 256 << 20,
        ..base
    });
    let ids = register_all(&mut cached);
    summarize(
        "interleaved + cache (cold)",
        &serve_mix(&mut cached, &mix, &ids),
    );
    summarize(
        "interleaved + cache (warm)",
        &serve_mix(&mut cached, &mix, &ids),
    );
    let stats = cached.cache_stats();
    println!(
        "cache after both passes: {} hits / {} misses / {} evictions, {} B resident",
        stats.hits, stats.misses, stats.evictions, stats.resident_bytes
    );

    // 4. The async-front enabler: a latecomer submitted while the warm mix
    // is mid-flight still gets admitted, interleaved and served.
    let (l0, s0) = ids[0];
    let early = cached
        .query(l0, s0)
        .project(QuerySpec::symmetric(2))
        .submit();
    cached.drive(3);
    let late = cached
        .query(l0, s0)
        .project(QuerySpec::symmetric(2))
        .submit();
    cached.drive_until_idle();
    match (early.poll(&mut cached), late.poll(&mut cached)) {
        (QueryPoll::Done(a), QueryPoll::Done(b)) => {
            assert_eq!(a.result.cardinality(), b.result.cardinality());
            println!(
                "late submission joined mid-flight and finished: {} rows each \
                 (in-flight admission, zero executor changes)",
                a.stats.rows
            );
        }
        other => panic!("both tickets must finish, got {other:?}"),
    }

    // 5. Robustness: a latecomer with an impossible deadline is rejected at
    // admission — the cost model prices it at this session's cache share
    // and refuses before a single chunk runs — while a straggler cancelled
    // mid-flight hands its memory grant back at the next chunk boundary.
    // Neither disturbs the in-flight query they share the session with.
    let in_flight = cached
        .query(l0, s0)
        .project(QuerySpec::symmetric(2))
        .submit();
    cached.drive(3);
    let doomed = cached
        .query(l0, s0)
        .project(QuerySpec::symmetric(2))
        .deadline(1) // 1 ns of service time: infeasible by construction
        .submit();
    let straggler = cached
        .query(l0, s0)
        .project(QuerySpec::symmetric(2))
        .submit();
    cached.drive(6);
    let was_live = straggler.cancel(&mut cached);
    cached.drive_until_idle();
    match doomed.poll(&mut cached) {
        QueryPoll::Rejected(RdxError::Deadline(DeadlineError::Infeasible {
            predicted_ns,
            deadline_ns,
        })) => println!(
            "deadline latecomer rejected at admission: predicted {predicted_ns} ns \
             against a {deadline_ns} ns deadline — it never held a grant"
        ),
        other => panic!("infeasible deadline must be rejected, got {other:?}"),
    }
    match straggler.poll(&mut cached) {
        QueryPoll::Rejected(RdxError::Cancelled) => println!(
            "straggler cancelled mid-flight (was_live={was_live}): grant reclaimed \
             at the chunk boundary"
        ),
        // A small mix can finish the straggler before the cancel lands.
        QueryPoll::Done(_) if !was_live => {
            println!("straggler finished before the cancel landed — delivered once")
        }
        other => panic!("straggler must cancel or finish, got {other:?}"),
    }
    match in_flight.poll(&mut cached) {
        QueryPoll::Done(q) => println!(
            "the in-flight query never noticed: {} rows, byte-identical by \
             construction ({} cancellation(s), {} deadline reject(s) this session)",
            q.stats.rows,
            cached.engine_mut().stats().cancellations,
            cached.engine_mut().stats().deadline_rejects,
        ),
        other => panic!("the in-flight query must finish, got {other:?}"),
    }
}
