//! A multi-tenant serving session: zipfian query mix through `rdx-serve`,
//! comparing serial execution, fair chunk interleaving, and interleaving
//! with the clustered-join-index cache warm.
//!
//! Run with `cargo run --release --example multi_query_server [queries]`
//! (default 24).

use radix_decluster::prelude::*;
use radix_decluster::serve::BatchReport;
use std::time::Duration;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn summarize(label: &str, report: &BatchReport) {
    let mut latencies: Vec<Duration> = report
        .outcomes
        .iter()
        .filter_map(|o| o.outcome.as_ref().ok())
        .map(|q| q.stats.wait + q.stats.service)
        .collect();
    latencies.sort();
    let served = latencies.len();
    let hits = report
        .outcomes
        .iter()
        .filter_map(|o| o.outcome.as_ref().ok())
        .filter(|q| q.stats.cache_hit)
        .count();
    let wall = report.stats.wall.as_secs_f64();
    println!(
        "{label:<28} wall {:>7.1} ms  thr {:>6.1} q/s  p50 {:>7.1} ms  p99 {:>7.1} ms  \
         peak-conc {}  peak-bytes {:>9}  cache-hits {hits}",
        wall * 1e3,
        served as f64 / wall.max(1e-9),
        percentile(&latencies, 0.50).as_secs_f64() * 1e3,
        percentile(&latencies, 0.99).as_secs_f64() * 1e3,
        report.stats.peak_concurrency,
        report.stats.peak_concurrent_bytes,
    );
}

fn main() {
    let queries = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);

    println!("generating the multi-tenant mix ({queries} queries, zipfian tenants)…");
    let mix = QueryMix::generate(&MixConfig {
        tenants: vec![(400_000, 2), (120_000, 4), (40_000, 1), (12_000, 2)],
        queries,
        zipf_exponent: 1.0,
        seed: 7,
    });
    println!(
        "tenant popularity: {:?}  (repeat factor {:.1}×)",
        mix.popularity(),
        mix.repeat_factor()
    );

    // Global budget: a quarter of the hottest tenant's data, split across
    // up to four admitted queries.
    let budget = MemoryBudget::bytes(mix.tenant_data_bytes(0) / 4);
    let base = ServeConfig {
        params: CacheParams::paper_pentium4(),
        global_budget: budget,
        max_concurrent: 4,
        threads_per_query: 1,
        cache_bytes: 0,
        fairness: FairnessPolicy::CostWeighted,
        plan_shares: Some(4),
    };

    let build_requests = |server: &mut RdxServer| -> Vec<ServerRequest> {
        let ids: Vec<(RelationId, RelationId)> = mix
            .tenants
            .iter()
            .map(|w| {
                (
                    server.register(w.larger.clone()),
                    server.register(w.smaller.clone()),
                )
            })
            .collect();
        mix.queries
            .iter()
            .map(|q| {
                let (larger, smaller) = ids[q.tenant];
                ServerRequest::new(larger, smaller, QuerySpec::symmetric(q.project))
            })
            .collect()
    };

    // 1. Serial: one query at a time, no reuse.
    let mut serial = RdxServer::new(ServeConfig {
        max_concurrent: 1,
        ..base.clone()
    });
    let requests = build_requests(&mut serial);
    summarize("serial (no cache)", &serial.run_batch(&requests));

    // 2. Interleaved: admission + fair chunk scheduling, still cold.
    let mut interleaved = RdxServer::new(base.clone());
    let requests = build_requests(&mut interleaved);
    summarize("interleaved (no cache)", &interleaved.run_batch(&requests));

    // 3. Interleaved + clustered-index cache, cold then warm pass.
    let mut cached = RdxServer::new(ServeConfig {
        cache_bytes: 256 << 20,
        ..base
    });
    let requests = build_requests(&mut cached);
    summarize("interleaved + cache (cold)", &cached.run_batch(&requests));
    summarize("interleaved + cache (warm)", &cached.run_batch(&requests));
    let stats = cached.cache_stats();
    println!(
        "cache after both passes: {} hits / {} misses / {} evictions, {} B resident",
        stats.hits, stats.misses, stats.evictions, stats.resident_bytes
    );
}
