//! A wire-protocol client for `examples/net_server.rs`: opens the session
//! with `Hello`, submits post-projection queries over TCP, polls their
//! tickets to completion, and exercises the cancel path — the same
//! `submit → poll → take outcome` state machine the in-process ticket
//! front door speaks, carried over length-prefixed frames.
//!
//! Start the server first (`cargo run --release --example net_server`),
//! then run with `cargo run --release --example net_client [addr]`
//! (default `127.0.0.1:7744`).

use radix_decluster::prelude::*;
use std::net::SocketAddr;

fn main() {
    let addr: SocketAddr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7744".to_owned())
        .parse()
        .expect("server address");

    let mut client = NetClient::connect_tcp(addr).expect("connect to net_server");
    let (version, tenant) = client.hello(Some("demo")).expect("hello");
    println!("connected to {addr}: wire version {version}, tenant id {tenant:?}");

    // The server registered the workload pair as relations 0 (larger) and
    // 1 (smaller); project both columns from each side.
    let spec = SubmitSpec {
        larger: 0,
        smaller: 1,
        project_larger: 2,
        project_smaller: 2,
        budget_bytes: None,
        threads: None,
        codes: None,
        deadline_ns: None,
        priority: 1,
    };

    // First run is a cold cache; the identical resubmission reuses the
    // server's clustered-join-index cache.
    for pass in ["cold", "warm"] {
        let ticket = client.submit(spec).expect("submit");
        let report = client
            .wait(ticket)
            .expect("transport")
            .expect("query accepted");
        let preview: Vec<i32> = report.columns[0].iter().take(4).copied().collect();
        let share = if report.share_bytes == u64::MAX {
            "unbounded".to_owned()
        } else {
            format!("{} B", report.share_bytes)
        };
        println!(
            "{pass}: ticket {ticket} → {} rows in {} chunks, cache_hit={}, \
             share {share}, col0 starts {:?}",
            report.rows, report.chunks, report.cache_hit, preview,
        );
    }

    // The cancel path: tear a fresh ticket down before draining it.  On a
    // fast server it may finish first — both outcomes are well-formed.
    let doomed = client.submit(spec).expect("submit");
    let cancelled = client.cancel(doomed).expect("cancel");
    match client.wait(doomed).expect("transport") {
        Err(RdxError::Cancelled) => {
            println!("ticket {doomed} cancelled mid-flight (was_live={cancelled})")
        }
        Ok(report) => println!(
            "ticket {doomed} finished before the cancel landed: {} rows",
            report.rows
        ),
        Err(other) => panic!("unexpected rejection: {other}"),
    }
}
