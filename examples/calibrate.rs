//! Calibrate-then-plan: measure the host's memory latency curve, derive cache
//! parameters from it, and show how the cost-based planner's choice of
//! projection codes depends on the machine it runs on.
//!
//! This mirrors how MonetDB uses the Calibrator (paper §1.1): the cost models
//! are hardware-independent formulas, and the machine-specific numbers are
//! measured at run time.
//!
//! ```text
//! cargo run --release --example calibrate [cardinality]
//! ```

use radix_decluster::cache::Calibrator;
use radix_decluster::core::strategy::plan_by_cost;
use radix_decluster::prelude::*;

fn main() {
    let cardinality: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000_000);

    println!("Measuring the host's dependent-load latency curve (pointer chase) …");
    let calibrator = Calibrator::default();
    let curve = calibrator.run();
    println!();
    println!("{:>14}  {:>12}", "working set", "latency [ns]");
    for p in &curve {
        println!("{:>12} KB  {:>12.2}", p.working_set / 1024, p.latency_ns);
    }

    let host_params = Calibrator::params_from_curve(&curve, 3.0e9);
    let paper_params = CacheParams::paper_pentium4();
    println!();
    println!(
        "derived miss latencies (cycles): L1 = {}, L2 = {}  (paper platform: 28, 350)",
        host_params.levels[0].miss_latency_cycles, host_params.levels[1].miss_latency_cycles
    );

    let workload = JoinWorkloadBuilder::equal(cardinality, 4).seed(17).build();
    let spec = QuerySpec::symmetric(4);
    let host_plan = plan_by_cost(&workload.larger, &workload.smaller, &spec, &host_params);
    let paper_plan = plan_by_cost(&workload.larger, &workload.smaller, &spec, &paper_params);
    println!();
    println!(
        "cost-based plan for N = {cardinality}: host-calibrated parameters → {}, paper Pentium 4 → {}",
        host_plan.label(),
        paper_plan.label()
    );

    let outcome = host_plan.execute(&workload.larger, &workload.smaller, &spec, &host_params);
    println!(
        "executed host-calibrated plan: {} result tuples in {:.2} ms",
        outcome.result.cardinality(),
        outcome.timings.total_millis()
    );
}
