//! Feature-vector propagation: the high-projectivity extreme.
//!
//! The paper's introduction imagines "a join with thousands of projection
//! columns to propagate feature vectors in a multimedia application" and
//! reports that queries may spend more than 90% of their time in projection.
//! This example joins a table of media objects against a table of extracted
//! feature vectors (π = 64 columns) and compares the smaller-side projection
//! codes `u` (unsorted positional joins) and `d` (partial cluster +
//! Radix-Decluster), showing the decluster pipeline winning once the vectors
//! no longer fit the cache.
//!
//! ```text
//! cargo run --release --example feature_vectors [cardinality]
//! ```

use radix_decluster::prelude::*;

fn main() {
    let cardinality: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300_000);
    let features = 64;

    println!("Feature-vector propagation: N = {cardinality}, {features}-dimensional vectors");
    let workload = JoinWorkloadBuilder::equal(cardinality, features)
        .seed(3)
        .build();
    let params = CacheParams::paper_pentium4();
    // Project nothing from the probing side, the whole vector from the other.
    let spec = QuerySpec {
        project_larger: 0,
        project_smaller: features,
    };

    let unsorted = DsmPostProjection::with_codes(
        ProjectionCode::Unsorted,
        SecondSideCode::Unsorted,
    )
    .execute(&workload.larger, &workload.smaller, &spec, &params);
    let declustered = DsmPostProjection::with_codes(
        ProjectionCode::Unsorted,
        SecondSideCode::Decluster,
    )
    .execute(&workload.larger, &workload.smaller, &spec, &params);

    let u_ms = unsorted.timings.total_millis();
    let d_ms = declustered.timings.total_millis();
    println!();
    println!("smaller-side code u (unsorted positional joins) : {u_ms:>9.2} ms");
    println!("smaller-side code d (radix-decluster pipeline)  : {d_ms:>9.2} ms");
    println!(
        "projection share of total (code d): {:.0}%",
        100.0
            * (1.0
                - declustered.timings.join.as_secs_f64()
                    / declustered.timings.total().as_secs_f64())
    );
    println!();
    if cardinality * 4 > params.cache_capacity() {
        println!(
            "columns exceed the {} KB cache: the clustered/declustered access pattern is the one \
             that scales (speed-up over unsorted here: {:.2}×).",
            params.cache_capacity() / 1024,
            u_ms / d_ms
        );
    } else {
        println!("columns fit the cache: unsorted processing is expected to win at this size.");
    }

    assert_eq!(
        unsorted.result.cardinality(),
        declustered.result.cardinality()
    );
}
