//! OLAP-style scenario: wide tables, few projected columns.
//!
//! This is the workload the paper's introduction motivates DSM with — queries
//! that "touch many tuples but few columns".  We run the same projected join
//! with every strategy the paper compares (Fig. 10a) and print a small table
//! of total times, so the DSM-vs-NSM and pre-vs-post orderings can be seen on
//! this host.
//!
//! ```text
//! cargo run --release --example olap_projection [cardinality]
//! ```

use radix_decluster::core::strategy::{
    dsm_pre_projection, nsm_post_projection_decluster, nsm_post_projection_jive,
    nsm_pre_projection_hash, nsm_pre_projection_phash,
};
use radix_decluster::prelude::*;

fn main() {
    let cardinality: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);
    // ω = 16 stored columns, π = 2 projected from each side: low projectivity.
    let omega = 16;
    let pi = 2;

    println!("OLAP projection: N = {cardinality}, ω = {omega} stored columns, π = {pi} projected per side");
    let workload = JoinWorkloadBuilder::equal(cardinality, omega)
        .seed(11)
        .build();
    let params = CacheParams::paper_pentium4();
    let spec = QuerySpec::symmetric(pi);

    let mut rows: Vec<(String, f64, usize)> = Vec::new();

    let plan = DsmPostProjection::plan(&workload.larger, &workload.smaller, &params);
    let out = plan.execute(&workload.larger, &workload.smaller, &spec, &params);
    rows.push((
        format!("DSM-post-decluster ({})", plan.label()),
        out.timings.total_millis(),
        out.result.cardinality(),
    ));

    let out = dsm_pre_projection(&workload.larger, &workload.smaller, &spec, &params);
    rows.push((
        "DSM-pre-phash".into(),
        out.timings.total_millis(),
        out.result.cardinality(),
    ));

    let out = nsm_pre_projection_phash(&workload.larger_nsm, &workload.smaller_nsm, &spec, &params);
    rows.push((
        "NSM-pre-phash".into(),
        out.timings.total_millis(),
        out.result.cardinality(),
    ));

    let out = nsm_pre_projection_hash(&workload.larger_nsm, &workload.smaller_nsm, &spec);
    rows.push((
        "NSM-pre-hash".into(),
        out.timings.total_millis(),
        out.result.cardinality(),
    ));

    let out =
        nsm_post_projection_decluster(&workload.larger_nsm, &workload.smaller_nsm, &spec, &params);
    rows.push((
        "NSM-post-decluster".into(),
        out.timings.total_millis(),
        out.result.cardinality(),
    ));

    let out = nsm_post_projection_jive(&workload.larger_nsm, &workload.smaller_nsm, &spec, &params);
    rows.push((
        "NSM-post-jive".into(),
        out.timings.total_millis(),
        out.result.cardinality(),
    ));

    println!();
    println!(
        "{:<32} {:>12} {:>12}",
        "strategy", "total [ms]", "result rows"
    );
    for (name, ms, n) in &rows {
        println!("{name:<32} {ms:>12.2} {n:>12}");
    }

    let all_equal = rows.iter().all(|(_, _, n)| *n == rows[0].2);
    println!();
    println!(
        "all strategies produced {} result tuples: {}",
        rows[0].2,
        if all_equal {
            "agreed ✓"
        } else {
            "MISMATCH ✗"
        }
    );
}
