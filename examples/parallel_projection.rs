//! Parallel DSM post-projection on a 10M-tuple workload: the morsel-driven
//! executor (`rdx-exec`) against the sequential reference, wall-clock and
//! per-phase.
//!
//! Run with `cargo run --release --example parallel_projection [threads]`
//! (default: one worker per hardware thread).

use radix_decluster::core::strategy::planner::plan_by_cost_with_threads;
use radix_decluster::exec::par_dsm_post_projection;
use radix_decluster::prelude::*;
use std::time::Instant;

fn main() {
    let threads = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| ExecPolicy::available().threads)
        .max(1);
    let n = 10_000_000;
    let pi = 2;

    println!("generating 2 × {n} tuples, {pi} projection columns per side…");
    let workload = JoinWorkloadBuilder::equal(n, pi).seed(1).build();
    let spec = QuerySpec::symmetric(pi);
    let params = CacheParams::paper_pentium4();

    // Plan against each core's cache share, then run both executors.
    let plan =
        plan_by_cost_with_threads(&workload.larger, &workload.smaller, &spec, &params, threads);
    println!("planned codes: {} ({threads} threads)", plan.label());

    let t = Instant::now();
    let sequential = plan.execute(&workload.larger, &workload.smaller, &spec, &params);
    let sequential_wall = t.elapsed();

    let policy = ExecPolicy::with_threads(threads);
    let t = Instant::now();
    let parallel = par_dsm_post_projection(
        &plan,
        &workload.larger,
        &workload.smaller,
        &spec,
        &params,
        &policy,
    );
    let parallel_wall = t.elapsed();

    // The executors must agree byte for byte before timings mean anything.
    assert_eq!(
        sequential.result.cardinality(),
        parallel.result.cardinality()
    );
    for (s, p) in sequential
        .result
        .columns()
        .iter()
        .zip(parallel.result.columns())
    {
        assert_eq!(s.as_slice(), p.as_slice(), "parallel result diverged");
    }

    println!("\n{:<18} {:>12} {:>12}", "phase", "sequential", "parallel");
    let rows = [
        ("join", sequential.timings.join, parallel.timings.join),
        (
            "reorder",
            sequential.timings.reorder,
            parallel.timings.reorder,
        ),
        (
            "project larger",
            sequential.timings.project_larger,
            parallel.timings.project_larger,
        ),
        (
            "project smaller",
            sequential.timings.project_smaller,
            parallel.timings.project_smaller,
        ),
        (
            "decluster",
            sequential.timings.decluster,
            parallel.timings.decluster,
        ),
    ];
    for (name, seq, par) in rows {
        println!(
            "{:<18} {:>10.1}ms {:>10.1}ms",
            name,
            seq.as_secs_f64() * 1e3,
            par.as_secs_f64() * 1e3
        );
    }
    println!(
        "{:<18} {:>10.1}ms {:>10.1}ms   ({:.2}× at {threads} threads)",
        "wall clock",
        sequential_wall.as_secs_f64() * 1e3,
        parallel_wall.as_secs_f64() * 1e3,
        sequential_wall.as_secs_f64() / parallel_wall.as_secs_f64()
    );
    println!(
        "result: {} rows × {} columns, identical under both executors",
        parallel.result.cardinality(),
        parallel.result.num_columns()
    );
}
