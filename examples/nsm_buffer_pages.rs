//! The §5 scenario: DSM Radix-Decluster inside an NSM DBMS, with
//! variable-size values landing in buffer-manager pages (Fig. 12).
//!
//! A projection column of strings is fetched in clustered order and then
//! radix-declustered in three phases — lengths first, then a prefix-sum pass
//! computing page/offset placements, then the actual copy — into slotted
//! pages.  The example prints the page statistics and verifies every value.
//!
//! ```text
//! cargo run --release --example nsm_buffer_pages [tuples]
//! ```

use radix_decluster::core::cluster::{radix_cluster_oids, RadixClusterSpec};
use radix_decluster::core::decluster::paged::radix_decluster_paged;
use radix_decluster::dsm::VarColumn;
use radix_decluster::nsm::BufferManager;
use radix_decluster::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let page_size = 8 * 1024;

    println!("Declustering {n} variable-size values into {page_size}-byte buffer pages …");

    // The "smaller" relation: one string attribute per tuple, varying length.
    let strings: Vec<String> = (0..n)
        .map(|i| format!("tuple-{i}:{}", "payload".repeat(1 + i % 5)))
        .collect();

    // A join result that needs those strings in an order that is neither the
    // base-table order nor anything cache-friendly: result row r wants the
    // string of smaller tuple (r * 2654435761) mod n.
    let smaller_oids: Vec<Oid> = (0..n as u64)
        .map(|r| ((r.wrapping_mul(2654435761)) % n as u64) as Oid)
        .collect();
    let result_positions: Vec<Oid> = (0..n as Oid).collect();

    // Fig. 4 pipeline: partially cluster (smaller_oid, result_position), then
    // fetch the strings in clustered order (cache-friendly), then decluster.
    let params = CacheParams::paper_pentium4();
    let spec = RadixClusterSpec::optimal_partial(n, 32, params.cache_capacity());
    let clustered = radix_cluster_oids(&smaller_oids, &result_positions, spec);

    let mut clust_values = VarColumn::new();
    for &oid in clustered.keys() {
        clust_values.push_str(&strings[oid as usize]);
    }

    let mut bm = BufferManager::new(page_size);
    let window =
        radix_decluster::core::decluster::choose_window_bytes(4, clustered.num_clusters(), &params);
    let placed = radix_decluster_paged(
        &clust_values,
        clustered.payloads(),
        clustered.bounds(),
        window,
        &mut bm,
    );

    let total_bytes: usize = strings.iter().map(|s| s.len()).sum();
    println!();
    println!("clusters used            : {}", clustered.num_clusters());
    println!("insertion window         : {} KB", window / 1024);
    println!("buffer pages allocated   : {}", bm.num_pages());
    println!("payload bytes written    : {total_bytes}");
    println!(
        "page utilisation         : {:.1}%",
        100.0 * total_bytes as f64 / (bm.num_pages() * page_size) as f64
    );

    // Verify a sample of result tuples against the expected strings.
    for r in (0..n).step_by((n / 1000).max(1)) {
        let expected = &strings[smaller_oids[r] as usize];
        let got = placed.read(&bm, r, expected.len());
        assert_eq!(got, expected.as_bytes(), "result tuple {r}");
    }
    println!();
    println!("verification of sampled result tuples: ok ✓");
}
