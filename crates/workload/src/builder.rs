//! Single-relation generation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rdx_dsm::{Column, DsmRelation};
use rdx_nsm::NsmRelation;

/// Deterministic attribute value of tuple `row`, attribute `attr`.
///
/// A cheap injective-ish mixing function: tests and the figure harness use it
/// to validate projected results without retaining the generating relation.
pub fn attr_value(row: usize, attr: usize) -> i32 {
    let x = (row as u64)
        .wrapping_mul(2654435761)
        .wrapping_add(attr as u64 * 40503);
    (x & 0x7fff_ffff) as i32
}

/// Builder for one relation, in either storage model.
///
/// * cardinality `N` — number of tuples;
/// * `columns` — number of attribute columns ω (beyond the join key);
/// * `seed` — RNG seed for the key permutation;
/// * `key_domain` — keys are a random permutation of `0..N` by default, or of
///   `0..key_domain` (with repetition if `key_domain < N`) when set.
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    cardinality: usize,
    columns: usize,
    seed: u64,
    key_domain: Option<u64>,
}

impl RelationBuilder {
    /// Starts a builder for a relation of `cardinality` tuples.
    pub fn new(cardinality: usize) -> Self {
        RelationBuilder {
            cardinality,
            columns: 1,
            seed: 42,
            key_domain: None,
        }
    }

    /// Sets the number of attribute columns ω (default 1).
    pub fn columns(mut self, columns: usize) -> Self {
        self.columns = columns;
        self
    }

    /// Sets the RNG seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Draws keys from `0..domain` instead of a permutation of `0..N`.
    pub fn key_domain(mut self, domain: u64) -> Self {
        self.key_domain = Some(domain);
        self
    }

    /// Generates the key column for this configuration.
    pub fn keys(&self) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.key_domain {
            None => {
                let mut keys: Vec<u64> = (0..self.cardinality as u64).collect();
                keys.shuffle(&mut rng);
                keys
            }
            Some(domain) => {
                let domain = domain.max(1);
                let n = self.cardinality as u64;
                // domain ≤ N: cycle through the domain so every value appears
                // ⌈N/domain⌉ or ⌊N/domain⌋ times (skew-free duplication, used
                // by the h ≥ 1 hit-rate workloads).  domain > N: spread the
                // keys evenly over the domain so only a N/domain fraction of
                // any sub-range is populated (used by the h < 1 workloads,
                // where most probe keys must find no partner).
                let mut keys: Vec<u64> = if domain <= n {
                    (0..n).map(|i| i % domain).collect()
                } else {
                    (0..n)
                        .map(|i| (i as u128 * domain as u128 / n as u128) as u64)
                        .collect()
                };
                keys.shuffle(&mut rng);
                keys
            }
        }
    }

    /// Builds the relation in DSM form: one key column + ω value columns.
    pub fn build_dsm(&self) -> DsmRelation {
        let keys = self.keys();
        let mut rel = DsmRelation::from_key(Column::from_vec(keys));
        for attr in 0..self.columns {
            let col: Vec<i32> = (0..self.cardinality)
                .map(|row| attr_value(row, attr))
                .collect();
            rel.push_attr(Column::from_vec(col));
        }
        rel
    }

    /// Builds the relation in NSM form: records of `1 + ω` integer attributes,
    /// attribute 0 being the join key.
    ///
    /// # Panics
    /// Panics if any key exceeds `i32::MAX` (NSM records store 4-byte
    /// attributes, exactly as the paper's NSM simulation does).
    pub fn build_nsm(&self) -> NsmRelation {
        let keys = self.keys();
        let mut rel = NsmRelation::with_capacity(1 + self.columns, self.cardinality);
        let mut tuple = vec![0i32; 1 + self.columns];
        for (row, &key) in keys.iter().enumerate() {
            assert!(
                key <= i32::MAX as u64,
                "key {key} does not fit an NSM attribute"
            );
            tuple[0] = key as i32;
            for attr in 0..self.columns {
                tuple[attr + 1] = attr_value(row, attr);
            }
            rel.push_tuple(&tuple);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn default_keys_are_a_permutation() {
        let b = RelationBuilder::new(1000).seed(7);
        let keys = b.keys();
        let set: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(set.len(), 1000);
        assert_eq!(*keys.iter().max().unwrap(), 999);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = RelationBuilder::new(500).seed(3).keys();
        let b = RelationBuilder::new(500).seed(3).keys();
        let c = RelationBuilder::new(500).seed(4).keys();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn key_domain_duplicates_evenly() {
        let keys = RelationBuilder::new(100).key_domain(10).keys();
        for k in 0..10u64 {
            assert_eq!(keys.iter().filter(|&&x| x == k).count(), 10);
        }
    }

    #[test]
    fn dsm_and_nsm_agree_on_content() {
        let b = RelationBuilder::new(200).columns(3).seed(11);
        let dsm = b.build_dsm();
        let nsm = b.build_nsm();
        assert_eq!(dsm.cardinality(), 200);
        assert_eq!(nsm.cardinality(), 200);
        assert_eq!(dsm.width(), 3);
        assert_eq!(nsm.width(), 4); // key + 3
        for row in 0..200 {
            assert_eq!(dsm.key_at(row as u32), nsm.key(row));
            for attr in 0..3 {
                assert_eq!(dsm.attr(attr)[row], nsm.value(row, attr + 1));
                assert_eq!(dsm.attr(attr)[row], attr_value(row, attr));
            }
        }
    }

    #[test]
    fn attr_value_varies_with_both_arguments() {
        assert_ne!(attr_value(1, 0), attr_value(2, 0));
        assert_ne!(attr_value(1, 0), attr_value(1, 1));
        assert!(attr_value(123, 7) >= 0);
    }
}
