//! Out-of-budget workload presets for the streaming projection pipeline.
//!
//! The paper's evaluation always fits both relations in RAM; the streaming
//! pipeline's regime of interest is the opposite — an explicit memory budget
//! *smaller* than the data.  This preset pairs a standard [`JoinWorkload`]
//! with the sweep of budgets (expressed in bytes, `1/4 … 1/64` of the value
//! data) the `streaming_budget` bench and the conformance grid run it under.
//! Budgets are plain byte counts so this crate stays free of algorithm-crate
//! dependencies; `rdx_core::budget::MemoryBudget::bytes` consumes them
//! directly.

use crate::join_pair::{HitRate, JoinWorkload, JoinWorkloadBuilder};

/// The paper's largest evaluation cardinality (§4: `N ∈ {15K … 16M}`): the
/// ceiling the out-of-budget presets are meant to be swept towards.
pub const PAPER_MAX_TUPLES: usize = 16_000_000;

/// The budget denominators of the out-of-budget experiment: the working set
/// is capped at `1/4`, `1/16` and `1/64` of the value data.
pub const BUDGET_DENOMINATORS: [usize; 3] = [4, 16, 64];

/// A join workload annotated with its value-data size and the budget sweep
/// to run it under.
#[derive(Debug, Clone)]
pub struct BudgetedWorkload {
    /// The relations (standard equal-cardinality join pair).
    pub workload: JoinWorkload,
    /// Total bytes of attribute value data across both relations
    /// (`2 · N · ω · 4`) — the "data size" budgets are a fraction of.
    pub data_bytes: usize,
}

impl BudgetedWorkload {
    /// An out-of-budget preset: two `n`-tuple relations with `columns`
    /// attribute columns each, hit rate `h = 1`, deterministic seed.
    ///
    /// # Panics
    /// Panics if `n > PAPER_MAX_TUPLES` (the preset mirrors the paper's
    /// evaluation range) or `columns == 0`.
    pub fn generate(n: usize, columns: usize, seed: u64) -> Self {
        assert!(n <= PAPER_MAX_TUPLES, "N beyond the paper's 16M ceiling");
        assert!(columns >= 1, "need at least one value column");
        let workload = JoinWorkloadBuilder::equal(n, columns)
            .hit_rate(HitRate(1.0))
            .seed(seed)
            .build();
        BudgetedWorkload {
            workload,
            data_bytes: 2 * n * columns * 4,
        }
    }

    /// The budget sweep in bytes: `data_bytes / d` for each
    /// [`BUDGET_DENOMINATORS`] entry, never below one byte.
    pub fn budgets(&self) -> Vec<usize> {
        BUDGET_DENOMINATORS
            .iter()
            .map(|&d| (self.data_bytes / d).max(1))
            .collect()
    }

    /// The budget for an arbitrary denominator (e.g. the grid's `1/256`
    /// stress point), never below one byte.
    pub fn budget_fraction(&self, denominator: usize) -> usize {
        assert!(denominator > 0, "denominator must be positive");
        (self.data_bytes / denominator).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_reports_data_size_and_budgets() {
        let b = BudgetedWorkload::generate(10_000, 2, 7);
        assert_eq!(b.data_bytes, 2 * 10_000 * 2 * 4);
        assert_eq!(
            b.budgets(),
            vec![b.data_bytes / 4, b.data_bytes / 16, b.data_bytes / 64]
        );
        assert_eq!(b.budget_fraction(64), b.data_bytes / 64);
        assert_eq!(b.workload.larger.cardinality(), 10_000);
        assert_eq!(b.workload.larger.width(), 2);
    }

    #[test]
    fn every_budget_is_genuinely_out_of_budget() {
        let b = BudgetedWorkload::generate(4_096, 1, 3);
        for budget in b.budgets() {
            assert!(budget < b.data_bytes);
            assert!(budget >= 1);
        }
    }

    #[test]
    fn tiny_workloads_floor_at_one_byte() {
        let b = BudgetedWorkload::generate(4, 1, 1);
        assert!(b.budgets().iter().all(|&x| x >= 1));
    }

    #[test]
    #[should_panic]
    fn beyond_paper_ceiling_rejected() {
        BudgetedWorkload::generate(PAPER_MAX_TUPLES + 1, 1, 0);
    }
}
