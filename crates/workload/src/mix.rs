//! Multi-tenant query-mix generation for the serving layer.
//!
//! A serving workload is not one query but a *population*: several tenants,
//! each with their own relation pair (different cardinalities `N` and widths
//! `ω`), issuing queries whose popularity is heavily skewed — the classic
//! zipfian access pattern that makes cross-query caching pay.  This module
//! generates such mixes deterministically: a [`Zipf`] sampler picks which
//! tenant's pair each query hits, and per-query projection widths cycle
//! through the tenant's available columns.
//!
//! Everything is seeded, so a mix is reproducible across the bench
//! (`serve_mix`), the conformance grid and examples.

use crate::join_pair::{HitRate, JoinWorkload, JoinWorkloadBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k + 1)^s`.  `s = 0` degenerates to uniform; the
/// customary serving-skew setting is `s ≈ 1`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution, `cdf[k] = P(rank ≤ k)`, last entry 1.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and ≥ 0");
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `k`.
    pub fn probability(&self, k: usize) -> f64 {
        let prev = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - prev
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u = rng.gen_f64();
        // partition_point: first rank whose cdf exceeds u.
        self.cdf.partition_point(|&c| c <= u).min(self.ranks() - 1)
    }
}

/// Configuration of a multi-tenant mix.
#[derive(Debug, Clone, Default)]
pub struct MixConfig {
    /// Relation-pair presets, one per tenant: `(cardinality N, width ω)`.
    /// Popularity is zipfian in listed order (first = hottest).
    pub tenants: Vec<(usize, usize)>,
    /// Number of queries to draw.
    pub queries: usize,
    /// Zipf exponent of tenant popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Optional tenant names, one per [`MixConfig::tenants`] entry — what a
    /// serving front-end hands to `tenant_id` / `Hello` so the mix's
    /// queries are billed against per-tenant quotas.  Empty (the default)
    /// keeps the legacy anonymous mix.
    pub tenant_names: Vec<String>,
    /// Optional per-tenant zipf exponents over each tenant's **projection
    /// widths** (`rank k` ↦ `π = k + 1`): a skew of 0 spreads a tenant's
    /// queries uniformly over `1..=ω`, a high skew concentrates them on
    /// narrow projections — so different tenants stress the cache
    /// differently.  Empty (the default) keeps the legacy deterministic
    /// `1 + (q mod ω)` cycling.
    pub width_skews: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl MixConfig {
    /// The default serving mix: four tenants spanning two orders of
    /// magnitude in `N` — one big-scan tenant and three lookup-ish ones —
    /// with `ω` mixed, under the customary `s = 1` skew.
    pub fn standard(queries: usize, seed: u64) -> Self {
        MixConfig {
            tenants: vec![(60_000, 2), (20_000, 4), (6_000, 1), (2_000, 2)],
            queries,
            zipf_exponent: 1.0,
            tenant_names: Vec::new(),
            width_skews: Vec::new(),
            seed,
        }
    }

    /// The [`MixConfig::standard`] mix with its four tenants *named* and
    /// given distinct per-tenant width skews — the preset for quota /
    /// wire-serving scenarios where queries must be billed to someone.
    pub fn tagged(queries: usize, seed: u64) -> Self {
        MixConfig {
            tenant_names: ["alpha", "beta", "gamma", "delta"]
                .into_iter()
                .map(str::to_owned)
                .collect(),
            width_skews: vec![0.0, 0.5, 1.0, 1.5],
            ..MixConfig::standard(queries, seed)
        }
    }
}

/// One drawn query of a [`QueryMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixQuery {
    /// Index into [`QueryMix::tenants`].
    pub tenant: usize,
    /// Columns to project from each side (`≤` the tenant's width).
    pub project: usize,
    /// Per-query budget preset: `None` = whatever the server grants,
    /// `Some(d)` = cap the query at `1/d` of its tenant's value data (the
    /// PR 2 out-of-budget denominators, cycled so a mix exercises both
    /// generous and tight clients).
    pub budget_denominator: Option<usize>,
}

/// A generated multi-tenant workload: the tenants' relation pairs plus the
/// zipfian-popular query sequence over them.
#[derive(Debug)]
pub struct QueryMix {
    /// One relation pair per tenant, in [`MixConfig::tenants`] order.
    pub tenants: Vec<JoinWorkload>,
    /// Tenant names when the mix is tagged ([`MixConfig::tenant_names`]);
    /// empty for anonymous legacy mixes.
    pub names: Vec<String>,
    /// The drawn query sequence.
    pub queries: Vec<MixQuery>,
}

impl QueryMix {
    /// Generates the mix described by `config`.
    ///
    /// # Panics
    /// Panics if `config.tenants` is empty, any width is zero, or
    /// `tenant_names` / `width_skews` are non-empty with a length other
    /// than `tenants.len()`.
    pub fn generate(config: &MixConfig) -> Self {
        assert!(!config.tenants.is_empty(), "need at least one tenant");
        assert!(
            config.tenant_names.is_empty() || config.tenant_names.len() == config.tenants.len(),
            "tenant_names must be empty or name every tenant"
        );
        assert!(
            config.width_skews.is_empty() || config.width_skews.len() == config.tenants.len(),
            "width_skews must be empty or cover every tenant"
        );
        let tenants: Vec<JoinWorkload> = config
            .tenants
            .iter()
            .enumerate()
            .map(|(i, &(n, columns))| {
                assert!(columns >= 1, "tenant {i} has zero columns");
                JoinWorkloadBuilder::equal(n, columns)
                    .hit_rate(HitRate(1.0))
                    .seed(config.seed.wrapping_add(i as u64).wrapping_mul(0x9E37))
                    .build()
            })
            .collect();
        let zipf = Zipf::new(tenants.len(), config.zipf_exponent);
        // Per-tenant projection-width samplers (one rank per column),
        // only when the config opts into skewed widths.
        let width_zipfs: Vec<Zipf> = config
            .width_skews
            .iter()
            .zip(&config.tenants)
            .map(|(&s, &(_, columns))| Zipf::new(columns, s))
            .collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Budget presets cycled across the mix: unconstrained clients plus
        // the PR 2 out-of-budget denominators.
        const BUDGET_PRESETS: [Option<usize>; 3] = [None, Some(4), Some(16)];
        let queries = (0..config.queries)
            .map(|q| {
                let tenant = zipf.sample(&mut rng);
                let width = config.tenants[tenant].1;
                // Skewed draw per tenant when configured; otherwise cycle
                // the projection width so one tenant's repeats still
                // exercise different π (1..=ω).
                let project = match width_zipfs.get(tenant) {
                    Some(z) => 1 + z.sample(&mut rng),
                    None => 1 + (q % width),
                };
                MixQuery {
                    tenant,
                    project,
                    budget_denominator: BUDGET_PRESETS[q % BUDGET_PRESETS.len()],
                }
            })
            .collect();
        QueryMix {
            tenants,
            names: config.tenant_names.clone(),
            queries,
        }
    }

    /// The name of tenant `t` in a tagged mix, `None` in an anonymous one.
    pub fn tenant_name(&self, t: usize) -> Option<&str> {
        self.names.get(t).map(String::as_str)
    }

    /// Total value-data bytes of tenant `t`'s pair (`2 · N · ω · 4`), the
    /// base a [`MixQuery::budget_denominator`] divides.
    pub fn tenant_data_bytes(&self, t: usize) -> usize {
        let w = &self.tenants[t];
        2 * w.larger.cardinality() * w.larger.width() * 4
    }

    /// How many of the drawn queries hit each tenant.
    pub fn popularity(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.tenants.len()];
        for q in &self.queries {
            counts[q.tenant] += 1;
        }
        counts
    }

    /// Queries per distinct `(tenant, project)` pair, i.e. the repeat factor
    /// a clustered-index cache can exploit.
    pub fn repeat_factor(&self) -> f64 {
        let mut seen = std::collections::HashSet::new();
        for q in &self.queries {
            seen.insert((q.tenant, q.project));
        }
        self.queries.len() as f64 / seen.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_normalised_and_skewed() {
        let z = Zipf::new(4, 1.0);
        let total: f64 = (0..4).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(3));
        // Harmonic weights at s = 1: p0 / p1 = 2.
        assert!((z.probability(0) / z.probability(1) - 2.0).abs() < 1e-9);
        // s = 0 is uniform.
        let u = Zipf::new(5, 0.0);
        for k in 0..5 {
            assert!((u.probability(k) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_is_deterministic_and_covers_ranks() {
        let z = Zipf::new(3, 1.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..300).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        let samples = draw(7);
        let mut counts = [0usize; 3];
        for &s in &samples {
            counts[s] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        // Rank 0 dominates under skew.
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn mix_generation_is_reproducible_and_bounded() {
        let config = MixConfig::standard(64, 11);
        let a = QueryMix::generate(&config);
        let b = QueryMix::generate(&config);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.tenants.len(), 4);
        assert_eq!(a.queries.len(), 64);
        for q in &a.queries {
            let width = config.tenants[q.tenant].1;
            assert!(q.project >= 1 && q.project <= width);
        }
        // Budget presets cycle: unconstrained and out-of-budget clients mix.
        assert_eq!(a.queries[0].budget_denominator, None);
        assert_eq!(a.queries[1].budget_denominator, Some(4));
        assert_eq!(a.queries[2].budget_denominator, Some(16));
        assert!(a.tenant_data_bytes(0) > a.tenant_data_bytes(3));
        // The hottest tenant is the most popular, and repeats exist for a
        // cache to exploit.
        let pop = a.popularity();
        assert_eq!(pop.iter().sum::<usize>(), 64);
        assert!(pop[0] >= *pop.iter().max().unwrap() / 2);
        assert!(a.repeat_factor() > 2.0);
    }

    #[test]
    fn tagged_mixes_name_tenants_and_skew_widths_per_tenant() {
        let config = MixConfig::tagged(200, 5);
        let mix = QueryMix::generate(&config);
        // Reproducible, like every mix.
        assert_eq!(mix.queries, QueryMix::generate(&config).queries);
        assert_eq!(mix.tenant_name(0), Some("alpha"));
        assert_eq!(mix.tenant_name(3), Some("delta"));
        assert_eq!(mix.tenant_name(4), None);
        // The anonymous mix stays anonymous (legacy behaviour untouched:
        // same seed, same tenants, same width cycling as before).
        let legacy = QueryMix::generate(&MixConfig::standard(200, 5));
        assert_eq!(legacy.tenant_name(0), None);
        for (q, query) in legacy.queries.iter().enumerate() {
            assert_eq!(
                query.project,
                1 + (q % legacy.tenants[query.tenant].larger.width())
            );
        }
        // Tenant "beta" (ω = 4, skew 0.5) draws narrow projections more
        // often than wide ones; widths stay in bounds everywhere.
        let mut beta_widths = [0usize; 4];
        for q in &mix.queries {
            let width = mix.tenants[q.tenant].larger.width();
            assert!(q.project >= 1 && q.project <= width);
            if q.tenant == 1 {
                beta_widths[q.project - 1] += 1;
            }
        }
        assert!(beta_widths[0] >= beta_widths[3]);
    }

    #[test]
    fn different_seeds_draw_different_sequences() {
        let a = QueryMix::generate(&MixConfig::standard(40, 1));
        let b = QueryMix::generate(&MixConfig::standard(40, 2));
        assert_ne!(a.queries, b.queries);
    }
}
