//! # rdx-workload — evaluation workload generators
//!
//! Generators for the relations used throughout the paper's §4 evaluation:
//! equal-sized relations of `N ∈ {15K … 16M}` tuples with `ω ∈ {1,4,16,64}`
//! 4-byte integer columns, joined on an integer key with hit rate
//! `h ∈ {3, 1, 0.3}`, projecting `π` columns from each side, optionally with
//! one side being a `s ∈ {1, 0.1, 0.01}` selection of a larger base table
//! (the sparse-projection experiments).
//!
//! Everything is seeded and deterministic, so benchmarks and tests are
//! reproducible, and attribute values are a pure function of `(row, attr)`
//! ([`attr_value`]) so that any projected join result can be verified without
//! keeping the inputs around.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod join_pair;
pub mod mix;
pub mod sparse;
pub mod streaming;

pub use builder::{attr_value, RelationBuilder};
pub use join_pair::{HitRate, JoinWorkload, JoinWorkloadBuilder};
pub use mix::{MixConfig, MixQuery, QueryMix, Zipf};
pub use sparse::SparseWorkload;
pub use streaming::BudgetedWorkload;
