//! Generation of joinable relation pairs with a controlled hit rate.

use crate::builder::RelationBuilder;
use rdx_dsm::DsmRelation;
use rdx_nsm::NsmRelation;

/// The join hit rate `h` of §4: the expected number of result tuples per
/// tuple of the probing (larger) relation.
///
/// * `h = 1`   — every larger tuple matches exactly one smaller tuple
///   (the `1:1` case of Fig. 10b);
/// * `h = 3`   — every larger tuple matches three smaller tuples (`3:1`);
/// * `h = 0.3` — only 30% of the larger tuples find a match (`1:3`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitRate(pub f64);

impl HitRate {
    /// The paper's three evaluation points.
    pub const PAPER_POINTS: [HitRate; 3] = [HitRate(1.0 / 3.0), HitRate(1.0), HitRate(3.0)];

    /// Expected join-result cardinality for a probing relation of `n` tuples.
    pub fn expected_matches(&self, n: usize) -> usize {
        (self.0 * n as f64).round() as usize
    }
}

/// A generated pair of joinable relations plus bookkeeping for verification.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// The larger (probing) relation, DSM form.
    pub larger: DsmRelation,
    /// The smaller (build) relation, DSM form.
    pub smaller: DsmRelation,
    /// The same larger relation in NSM form (width 1 + ω).
    pub larger_nsm: NsmRelation,
    /// The same smaller relation in NSM form.
    pub smaller_nsm: NsmRelation,
    /// The exact number of matching pairs the key columns produce.
    pub expected_matches: usize,
}

/// Builder for a [`JoinWorkload`].
#[derive(Debug, Clone)]
pub struct JoinWorkloadBuilder {
    larger_cardinality: usize,
    smaller_cardinality: usize,
    columns: usize,
    hit_rate: HitRate,
    seed: u64,
}

impl JoinWorkloadBuilder {
    /// Starts a builder for two relations of equal cardinality `n` (the
    /// paper's setting) with ω = `columns` attribute columns each.
    pub fn equal(n: usize, columns: usize) -> Self {
        JoinWorkloadBuilder {
            larger_cardinality: n,
            smaller_cardinality: n,
            columns,
            hit_rate: HitRate(1.0),
            seed: 42,
        }
    }

    /// Uses different cardinalities for the two relations.
    pub fn cardinalities(mut self, larger: usize, smaller: usize) -> Self {
        self.larger_cardinality = larger;
        self.smaller_cardinality = smaller;
        self
    }

    /// Sets the join hit rate (default 1.0).
    pub fn hit_rate(mut self, h: HitRate) -> Self {
        self.hit_rate = h;
        self
    }

    /// Sets the RNG seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the workload.
    ///
    /// Key construction: the smaller relation's keys cover the domain
    /// `0..d_s`, each value appearing `⌈h⌉` times when `h > 1`.  The larger
    /// relation's keys cover `0..d_l` with `d_l` chosen so that exactly the
    /// intended fraction of larger tuples has a partner.  All keys stay below
    /// `i32::MAX` so the NSM twins can hold them.
    pub fn build(&self) -> JoinWorkload {
        let h = self.hit_rate.0;
        let n_l = self.larger_cardinality;
        let n_s = self.smaller_cardinality;

        let (smaller_domain, larger_domain) = if h >= 1.0 {
            // Each smaller key appears `dup` times; larger keys all fall in the
            // smaller domain, so every larger tuple matches `dup` partners.
            let dup = h.round() as u64;
            let sd = (n_s as u64 / dup).max(1);
            (sd, sd)
        } else {
            // Smaller keys are (near-)unique over 0..n_s; larger keys range
            // over a wider domain so only a fraction `h` of them has a match.
            let ld = (n_s as f64 / h).round() as u64;
            (n_s as u64, ld.max(n_s as u64))
        };

        let larger_builder = RelationBuilder::new(n_l)
            .columns(self.columns)
            .seed(self.seed)
            .key_domain(larger_domain);
        let smaller_builder = RelationBuilder::new(n_s)
            .columns(self.columns)
            .seed(self.seed.wrapping_add(1))
            .key_domain(smaller_domain);

        let larger = larger_builder.build_dsm();
        let smaller = smaller_builder.build_dsm();
        let larger_nsm = larger_builder.build_nsm();
        let smaller_nsm = smaller_builder.build_nsm();

        // Count the exact matches the generated keys produce.
        let mut smaller_key_counts = vec![0u32; smaller_domain as usize];
        for &k in smaller.key().as_slice() {
            smaller_key_counts[k as usize] += 1;
        }
        let expected_matches = larger
            .key()
            .as_slice()
            .iter()
            .map(|&k| smaller_key_counts.get(k as usize).copied().unwrap_or(0) as usize)
            .sum();

        JoinWorkload {
            larger,
            smaller,
            larger_nsm,
            smaller_nsm,
            expected_matches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_one_yields_n_matches() {
        let w = JoinWorkloadBuilder::equal(10_000, 2)
            .hit_rate(HitRate(1.0))
            .build();
        assert_eq!(w.expected_matches, 10_000);
        assert_eq!(w.larger.cardinality(), 10_000);
        assert_eq!(w.smaller.cardinality(), 10_000);
        assert_eq!(w.larger.width(), 2);
    }

    #[test]
    fn hit_rate_three_triples_matches() {
        let w = JoinWorkloadBuilder::equal(9_000, 1)
            .hit_rate(HitRate(3.0))
            .build();
        let expected = 3 * 9_000;
        let tolerance = expected / 100;
        assert!(
            (w.expected_matches as i64 - expected as i64).unsigned_abs() as usize <= tolerance,
            "matches {} not within 1% of {}",
            w.expected_matches,
            expected
        );
    }

    #[test]
    fn hit_rate_one_third_shrinks_matches() {
        let w = JoinWorkloadBuilder::equal(9_000, 1)
            .hit_rate(HitRate(1.0 / 3.0))
            .build();
        let expected = 3_000;
        let tolerance = expected / 10;
        assert!(
            (w.expected_matches as i64 - expected as i64).unsigned_abs() as usize <= tolerance,
            "matches {} not within 10% of {}",
            w.expected_matches,
            expected
        );
    }

    #[test]
    fn nsm_twins_share_keys_with_dsm() {
        let w = JoinWorkloadBuilder::equal(500, 3).seed(9).build();
        for row in 0..500 {
            assert_eq!(w.larger.key_at(row as u32), w.larger_nsm.key(row));
            assert_eq!(w.smaller.key_at(row as u32), w.smaller_nsm.key(row));
        }
    }

    #[test]
    fn expected_matches_helper() {
        assert_eq!(HitRate(1.0).expected_matches(100), 100);
        assert_eq!(HitRate(3.0).expected_matches(100), 300);
        assert_eq!(HitRate(0.3).expected_matches(100), 30);
    }

    #[test]
    fn unequal_cardinalities() {
        let w = JoinWorkloadBuilder::equal(1000, 1)
            .cardinalities(2000, 500)
            .build();
        assert_eq!(w.larger.cardinality(), 2000);
        assert_eq!(w.smaller.cardinality(), 500);
        // every larger key is drawn from the smaller key domain
        assert_eq!(w.expected_matches, 2000);
    }
}
