//! Sparse-projection workloads (paper §4.1 "Sparse Projections", Fig. 11).
//!
//! One join relation is a selection of fraction `s` over a larger base table.
//! The join itself sees only the selected tuples, but the projection columns
//! live in the base table, so positional joins touch only `s` of the values in
//! each cache line they load.

use crate::builder::RelationBuilder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rdx_dsm::{DsmRelation, Oid, Selection};

/// A base table plus a selection over it.
#[derive(Debug, Clone)]
pub struct SparseWorkload {
    /// The base table (cardinality `selected / selectivity`).
    pub base: DsmRelation,
    /// The selection: `selected` ascending oids into the base table.
    pub selection: Selection,
}

impl SparseWorkload {
    /// Generates a base table such that a selection of `selected` tuples has
    /// the given `selectivity` (1.0 means the selection covers the whole base
    /// table, 0.01 means the base table is 100× larger).
    ///
    /// The selected oids are drawn uniformly at random (then sorted), which is
    /// what a value-predicate selection over an unordered table produces.
    ///
    /// # Panics
    /// Panics if `selectivity` is not in `(0, 1]`.
    pub fn generate(selected: usize, selectivity: f64, columns: usize, seed: u64) -> Self {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must be in (0, 1]"
        );
        let base_cardinality = (selected as f64 / selectivity).round() as usize;
        let base = RelationBuilder::new(base_cardinality)
            .columns(columns)
            .seed(seed)
            .build_dsm();

        let selection = if base_cardinality == selected {
            Selection::all(base_cardinality)
        } else {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7));
            let mut all: Vec<Oid> = (0..base_cardinality as Oid).collect();
            all.shuffle(&mut rng);
            let mut chosen: Vec<Oid> = all.into_iter().take(selected).collect();
            chosen.sort_unstable();
            Selection::new(chosen, base_cardinality)
        };

        SparseWorkload { base, selection }
    }

    /// Number of selected tuples.
    pub fn selected(&self) -> usize {
        self.selection.len()
    }

    /// The effective selectivity of the generated selection.
    pub fn selectivity(&self) -> f64 {
        self.selection.selectivity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_selectivity_selects_everything() {
        let w = SparseWorkload::generate(1000, 1.0, 2, 3);
        assert_eq!(w.base.cardinality(), 1000);
        assert_eq!(w.selected(), 1000);
        assert_eq!(w.selectivity(), 1.0);
    }

    #[test]
    fn ten_percent_selectivity_uses_ten_times_base() {
        let w = SparseWorkload::generate(1000, 0.1, 1, 3);
        assert_eq!(w.base.cardinality(), 10_000);
        assert_eq!(w.selected(), 1000);
        assert!((w.selectivity() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn selection_oids_are_ascending_and_in_range() {
        let w = SparseWorkload::generate(500, 0.01, 1, 9);
        let oids = w.selection.oids();
        assert_eq!(oids.len(), 500);
        for pair in oids.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert!((*oids.last().unwrap() as usize) < w.base.cardinality());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SparseWorkload::generate(100, 0.1, 1, 5);
        let b = SparseWorkload::generate(100, 0.1, 1, 5);
        let c = SparseWorkload::generate(100, 0.1, 1, 6);
        assert_eq!(a.selection.oids(), b.selection.oids());
        assert_ne!(a.selection.oids(), c.selection.oids());
    }

    #[test]
    #[should_panic]
    fn zero_selectivity_rejected() {
        SparseWorkload::generate(100, 0.0, 1, 1);
    }
}
