//! # rdx-cache — cache hierarchy simulator and calibrator
//!
//! The paper's evaluation relies on two pieces of infrastructure that are not
//! portable:
//!
//! 1. **Hardware performance counters** on a 2.2 GHz Pentium 4, used to count
//!    L1, L2 and TLB misses (Fig. 7a, Fig. 9).
//! 2. The **Calibrator** utility, which measures cache capacities, line sizes
//!    and miss latencies at run time and feeds them into the cost models.
//!
//! This crate substitutes both:
//!
//! * [`CacheParams`] describes a memory hierarchy; `CacheParams::paper_pentium4()`
//!   is the exact machine of §4 (16 KB L1 / 32 B lines / 28-cycle miss,
//!   512 KB L2 / 128 B lines / 350-cycle miss ≙ 178 ns, 64-entry TLB /
//!   50-cycle miss, 4 KB pages).
//! * [`MemorySystem`] is a set-associative, LRU, inclusive two-level cache +
//!   TLB simulator.  Algorithms in `rdx-core` expose *traced* variants that
//!   replay their exact logical access pattern through it, reproducing the
//!   miss-count curves of Fig. 7a and validating the Appendix-A cost models.
//! * [`Calibrator`] measures approximate access latencies on the host for a
//!   range of working-set sizes, so the cost models can also be fed host
//!   parameters instead of the paper's.
//! * [`AddressSpace`] / [`Region`] lay out simulated arrays in a virtual
//!   address space so traced algorithms can talk about addresses without
//!   owning real memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod calibrator;
pub mod counters;
pub mod hierarchy;
pub mod params;

pub use address::{AddressSpace, Region};
pub use calibrator::{CalibrationPoint, Calibrator};
pub use counters::EventCounts;
pub use hierarchy::{CacheLevelSim, MemorySystem, TlbSim};
pub use params::{CacheLevel, CacheParams, Tlb};
