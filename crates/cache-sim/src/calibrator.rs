//! A miniature Calibrator: run-time measurement of memory access latencies.
//!
//! The paper's cost models are "parametrized by all relevant architectural
//! characteristics … derived automatically at run-time with the Calibrator
//! utility" (§1.1).  This module provides a small, dependency-free analogue:
//! it walks pointer-chased buffers of increasing size and reports the average
//! access latency per working-set size, from which cache capacities and miss
//! penalties can be read off.  It is deliberately conservative (bounded
//! iteration counts) so that it can run inside tests.

use crate::{CacheLevel, CacheParams, Tlb};
use std::time::Instant;

/// One measurement: average dependent-load latency for a working set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// Working-set size in bytes.
    pub working_set: usize,
    /// Average latency of one dependent load, in nanoseconds.
    pub latency_ns: f64,
}

/// Runs pointer-chase measurements over a range of working-set sizes.
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Smallest working set measured, in bytes.
    pub min_bytes: usize,
    /// Largest working set measured, in bytes.
    pub max_bytes: usize,
    /// Number of dependent loads issued per measurement.
    pub loads_per_point: usize,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator {
            min_bytes: 4 * 1024,
            max_bytes: 16 * 1024 * 1024,
            loads_per_point: 1 << 20,
        }
    }
}

impl Calibrator {
    /// A calibrator with very small working sets and few loads, suitable for
    /// unit tests (completes in a few milliseconds).
    pub fn quick() -> Self {
        Calibrator {
            min_bytes: 4 * 1024,
            max_bytes: 256 * 1024,
            loads_per_point: 1 << 16,
        }
    }

    /// Measures the latency curve: one point per power-of-two working set in
    /// `[min_bytes, max_bytes]`.
    pub fn run(&self) -> Vec<CalibrationPoint> {
        let mut points = Vec::new();
        let mut size = self.min_bytes.next_power_of_two();
        while size <= self.max_bytes {
            points.push(self.measure(size));
            size *= 2;
        }
        points
    }

    /// Measures the average dependent-load latency for one working-set size
    /// using a cache-line-strided cyclic pointer chase (the classic
    /// latency-measurement pattern the Calibrator uses).
    pub fn measure(&self, working_set: usize) -> CalibrationPoint {
        const STRIDE: usize = 16; // u32 slots; 64 bytes, one typical cache line
        let slots = (working_set / std::mem::size_of::<u32>()).max(STRIDE * 2);
        let mut chain = vec![0u32; slots];

        // Build a cyclic permutation visiting one slot per stride, in an order
        // that defeats next-line prefetching (simple LCG over the stride count).
        let hops = slots / STRIDE;
        let mut order: Vec<usize> = (0..hops).collect();
        let mut state = 0x9e3779b9u64;
        for i in (1..hops).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for w in 0..hops {
            let from = order[w] * STRIDE;
            let to = order[(w + 1) % hops] * STRIDE;
            chain[from] = to as u32;
        }

        // Chase.
        let mut pos = order[0] * STRIDE;
        let start = Instant::now();
        for _ in 0..self.loads_per_point {
            pos = chain[pos] as usize;
        }
        let elapsed = start.elapsed();
        // Keep `pos` observable so the chase is not optimized away.
        std::hint::black_box(pos);

        CalibrationPoint {
            working_set,
            latency_ns: elapsed.as_nanos() as f64 / self.loads_per_point as f64,
        }
    }

    /// Builds a [`CacheParams`] from a measured latency curve, using the paper
    /// platform's geometry (line sizes, associativity, TLB shape) but the
    /// host's latencies.  Intended as a convenience for running the cost
    /// models against host measurements; reproduction benchmarks default to
    /// [`CacheParams::paper_pentium4`].
    pub fn params_from_curve(points: &[CalibrationPoint], cpu_hz: f64) -> CacheParams {
        let reference = CacheParams::paper_pentium4();
        let latency_at = |bytes: usize| -> f64 {
            points
                .iter()
                .filter(|p| p.working_set >= bytes)
                .map(|p| p.latency_ns)
                .next()
                .or_else(|| points.last().map(|p| p.latency_ns))
                .unwrap_or(1.0)
        };
        let base = points.first().map(|p| p.latency_ns).unwrap_or(1.0);
        let to_cycles = |ns: f64| ((ns - base).max(0.5) * cpu_hz / 1e9).round() as u64;

        CacheParams {
            cpu_hz,
            levels: reference
                .levels
                .iter()
                .map(|l| CacheLevel {
                    miss_latency_cycles: to_cycles(latency_at(l.capacity * 2)).max(1),
                    ..*l
                })
                .collect(),
            tlb: Tlb { ..reference.tlb },
            sequential_bandwidth: reference.sequential_bandwidth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_produces_monotone_sizes() {
        let cal = Calibrator::quick();
        let points = cal.run();
        assert!(points.len() >= 3);
        for w in points.windows(2) {
            assert!(w[0].working_set < w[1].working_set);
        }
        for p in &points {
            assert!(p.latency_ns > 0.0);
            assert!(
                p.latency_ns < 10_000.0,
                "implausible latency {}",
                p.latency_ns
            );
        }
    }

    #[test]
    fn params_from_curve_preserves_geometry() {
        let points = vec![
            CalibrationPoint {
                working_set: 16 * 1024,
                latency_ns: 1.0,
            },
            CalibrationPoint {
                working_set: 1024 * 1024,
                latency_ns: 5.0,
            },
            CalibrationPoint {
                working_set: 16 * 1024 * 1024,
                latency_ns: 80.0,
            },
        ];
        let params = Calibrator::params_from_curve(&points, 3.0e9);
        assert_eq!(params.levels.len(), 2);
        assert_eq!(params.l1().capacity, 16 * 1024);
        assert!(params.levels[1].miss_latency_cycles >= params.levels[0].miss_latency_cycles);
    }
}
