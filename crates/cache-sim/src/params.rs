//! Descriptions of memory hierarchies (the Calibrator's output format).

/// One level of the data-cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    /// Total capacity in bytes (`C` in the paper's formulas).
    pub capacity: usize,
    /// Cache-line size in bytes (the block size of the "RAM block device").
    pub line_size: usize,
    /// Associativity (ways per set). `usize::MAX` means fully associative.
    pub associativity: usize,
    /// Miss latency in CPU cycles (the cost of fetching a line from the next
    /// level on a miss).
    pub miss_latency_cycles: u64,
}

impl CacheLevel {
    /// Number of cache lines this level holds.
    pub fn lines(&self) -> usize {
        self.capacity / self.line_size
    }

    /// Number of sets for the configured associativity.
    pub fn sets(&self) -> usize {
        let ways = self.ways();
        (self.lines() / ways).max(1)
    }

    /// Effective number of ways (clamped to the line count).
    pub fn ways(&self) -> usize {
        self.associativity.min(self.lines()).max(1)
    }
}

/// A translation-lookaside buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tlb {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Miss latency in CPU cycles.
    pub miss_latency_cycles: u64,
}

impl Tlb {
    /// Bytes covered by a full TLB (`entries × page_size`).
    pub fn reach(&self) -> usize {
        self.entries * self.page_size
    }
}

/// A complete memory-hierarchy description, as the Calibrator would produce it
/// and as the cost models consume it.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheParams {
    /// CPU clock frequency in Hz, used to convert cycle counts to seconds.
    pub cpu_hz: f64,
    /// Data-cache levels, ordered from the one closest to the CPU (L1) outward.
    pub levels: Vec<CacheLevel>,
    /// The data TLB.
    pub tlb: Tlb,
    /// Sustained sequential RAM bandwidth in bytes/second (STREAM-like), used
    /// by the cost models for sequential traversals that modern prefetchers
    /// stream at bandwidth rather than latency (paper §1.1: 3.2 GB/s vs the
    /// 360 MB/s that "optimal" random access achieves).
    pub sequential_bandwidth: f64,
}

impl CacheParams {
    /// The exact evaluation platform of paper §4: a 2.2 GHz Pentium 4 with a
    /// 16 KB L1 (32-byte lines, 28-cycle miss), a 512 KB L2 (128-byte lines,
    /// 350-cycle miss — the 178 ns latency of PC800 RDRAM), a 64-entry TLB
    /// with a 50-cycle miss penalty, 4 KB pages, and ~3.2 GB/s STREAM
    /// bandwidth.
    pub fn paper_pentium4() -> Self {
        CacheParams {
            cpu_hz: 2.2e9,
            levels: vec![
                CacheLevel {
                    capacity: 16 * 1024,
                    line_size: 32,
                    associativity: 4,
                    miss_latency_cycles: 28,
                },
                CacheLevel {
                    capacity: 512 * 1024,
                    line_size: 128,
                    associativity: 8,
                    miss_latency_cycles: 350,
                },
            ],
            tlb: Tlb {
                entries: 64,
                page_size: 4096,
                miss_latency_cycles: 50,
            },
            sequential_bandwidth: 3.2e9,
        }
    }

    /// A small hierarchy for fast unit tests: 1 KB L1 with 64-byte lines,
    /// 8 KB L2 with 64-byte lines, 8-entry TLB with 1 KB pages.
    pub fn tiny_for_tests() -> Self {
        CacheParams {
            cpu_hz: 1.0e9,
            levels: vec![
                CacheLevel {
                    capacity: 1024,
                    line_size: 64,
                    associativity: 2,
                    miss_latency_cycles: 10,
                },
                CacheLevel {
                    capacity: 8 * 1024,
                    line_size: 64,
                    associativity: 4,
                    miss_latency_cycles: 100,
                },
            ],
            tlb: Tlb {
                entries: 8,
                page_size: 1024,
                miss_latency_cycles: 20,
            },
            sequential_bandwidth: 1.0e9,
        }
    }

    /// The innermost (L1) cache level.
    pub fn l1(&self) -> &CacheLevel {
        &self.levels[0]
    }

    /// The outermost cache level (the one whose capacity bounds the
    /// Radix-Decluster insertion window — `C` in §3.2).
    pub fn last_level(&self) -> &CacheLevel {
        self.levels.last().expect("at least one cache level")
    }

    /// Capacity of the outermost cache level in bytes (`C`).
    pub fn cache_capacity(&self) -> usize {
        self.last_level().capacity
    }

    /// The hierarchy as seen by one of `threads` concurrently active cores:
    /// the *shared* resources — the outermost cache level and the sequential
    /// RAM bandwidth — are divided evenly (capacity never below one cache
    /// line).  Inner cache levels and the TLB are per-core private on the
    /// multi-core hosts this models, so they are left untouched.  The
    /// parallel executor (`rdx-exec`) and the `threads`-aware planner use
    /// this so each worker's working set — cluster sizes, insertion windows,
    /// hash-join build partitions — is tuned to its *share* of the shared
    /// cache instead of the whole of it, exactly the per-core
    /// cache-containment argument of the morsel model.
    ///
    /// With `threads <= 1` this is the identity.
    pub fn per_core_share(&self, threads: usize) -> CacheParams {
        let threads = threads.max(1);
        let mut shared = self.clone();
        if let Some(last) = shared.levels.last_mut() {
            last.capacity = (last.capacity / threads).max(last.line_size);
        }
        shared.sequential_bandwidth /= threads as f64;
        shared
    }

    /// The hierarchy as seen by one of `queries` concurrently *admitted
    /// queries*: the same shared-resource split as
    /// [`CacheParams::per_core_share`], one level up — instead of threads of
    /// one query competing for the outermost cache, whole queries do.  A
    /// serving layer multiplies the two: `q` active queries of `t` worker
    /// threads each leave every worker `C / (q · t)` of the shared cache.
    /// Kept as its own name so call sites say which axis they divide along.
    pub fn per_query_share(&self, queries: usize) -> CacheParams {
        self.per_core_share(queries)
    }

    /// Seconds per CPU cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.cpu_hz
    }

    /// Converts a cycle count to seconds at this CPU's clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles * self.cycle_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_matches_section_4() {
        let p = CacheParams::paper_pentium4();
        assert_eq!(p.levels.len(), 2);
        assert_eq!(p.l1().capacity, 16 * 1024);
        assert_eq!(p.l1().line_size, 32);
        assert_eq!(p.l1().miss_latency_cycles, 28);
        assert_eq!(p.last_level().capacity, 512 * 1024);
        assert_eq!(p.last_level().line_size, 128);
        assert_eq!(p.last_level().miss_latency_cycles, 350);
        assert_eq!(p.tlb.entries, 64);
        assert_eq!(p.tlb.page_size, 4096);
        // 350 cycles at 2.2 GHz ≈ 159 ns; the paper quotes 178 ns RDRAM
        // latency — same order, the cycle count is what the models use.
        let ns = p.cycles_to_seconds(350.0) * 1e9;
        assert!(ns > 100.0 && ns < 200.0);
    }

    #[test]
    fn level_geometry() {
        let l = CacheLevel {
            capacity: 16 * 1024,
            line_size: 32,
            associativity: 4,
            miss_latency_cycles: 1,
        };
        assert_eq!(l.lines(), 512);
        assert_eq!(l.ways(), 4);
        assert_eq!(l.sets(), 128);
    }

    #[test]
    fn fully_associative_clamps_ways() {
        let l = CacheLevel {
            capacity: 1024,
            line_size: 64,
            associativity: usize::MAX,
            miss_latency_cycles: 1,
        };
        assert_eq!(l.ways(), 16);
        assert_eq!(l.sets(), 1);
    }

    #[test]
    fn per_core_share_divides_only_shared_resources() {
        let p = CacheParams::paper_pentium4();
        let quarter = p.per_core_share(4);
        assert_eq!(quarter.cache_capacity(), p.cache_capacity() / 4);
        assert_eq!(quarter.sequential_bandwidth, p.sequential_bandwidth / 4.0);
        // Per-core-private resources — inner levels, TLB — are untouched,
        // and line sizes / latencies are physical properties that never
        // change.
        assert_eq!(quarter.l1().capacity, p.l1().capacity);
        assert_eq!(quarter.tlb.entries, p.tlb.entries);
        assert_eq!(quarter.l1().line_size, p.l1().line_size);
        assert_eq!(
            quarter.last_level().miss_latency_cycles,
            p.last_level().miss_latency_cycles
        );
        // Identity at one thread, floor at absurd thread counts.
        assert_eq!(p.per_core_share(1), p);
        let floor = p.per_core_share(1_000_000);
        assert_eq!(floor.cache_capacity(), p.last_level().line_size);
    }

    #[test]
    fn tlb_reach() {
        let t = Tlb {
            entries: 64,
            page_size: 4096,
            miss_latency_cycles: 50,
        };
        assert_eq!(t.reach(), 256 * 1024);
    }
}
