//! A virtual address space for traced algorithm runs.
//!
//! Traced variants of the algorithms (in `rdx-core::trace`) replay their
//! logical memory access pattern through the [`crate::MemorySystem`] without
//! owning real memory for the operand arrays.  [`AddressSpace`] hands out
//! non-overlapping [`Region`]s, each standing for one array (a DSM column, a
//! cluster, a hash table, …), and a `Region` converts element indices to byte
//! addresses.

/// A contiguous range of the simulated address space representing one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    elem_width: usize,
    elems: usize,
}

impl Region {
    /// Base address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of elements.
    pub fn elems(&self) -> usize {
        self.elems
    }

    /// Width of one element in bytes.
    pub fn elem_width(&self) -> usize {
        self.elem_width
    }

    /// Total size in bytes.
    pub fn byte_size(&self) -> usize {
        self.elems * self.elem_width
    }

    /// Address of element `index`.
    ///
    /// # Panics
    /// Panics if `index >= elems` — a traced algorithm addressing outside its
    /// own array is a bug in the trace, not a recoverable condition.
    #[inline]
    pub fn addr(&self, index: usize) -> u64 {
        assert!(
            index < self.elems,
            "index {index} out of region ({})",
            self.elems
        );
        self.base + (index * self.elem_width) as u64
    }

    /// A sub-region covering elements `[start, start + len)`, sharing this
    /// region's element width.  Used to model clusters laid out back-to-back
    /// inside one operand array.
    pub fn slice(&self, start: usize, len: usize) -> Region {
        assert!(start + len <= self.elems, "sub-region out of bounds");
        Region {
            base: self.base + (start * self.elem_width) as u64,
            elem_width: self.elem_width,
            elems: len,
        }
    }
}

/// Allocator of non-overlapping [`Region`]s.
///
/// Regions are aligned to `alignment` bytes (default 4 KB, one page) so that
/// distinct arrays never share a page or a cache line, matching how the real
/// operands are allocated by the memory allocator for multi-megabyte arrays.
#[derive(Debug)]
pub struct AddressSpace {
    next: u64,
    alignment: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// A fresh address space with page (4 KB) alignment.
    pub fn new() -> Self {
        AddressSpace {
            // Start away from address 0 so that "null-ish" addresses stand out
            // in debugging output.
            next: 1 << 20,
            alignment: 4096,
        }
    }

    /// A fresh address space with a custom allocation alignment.
    pub fn with_alignment(alignment: u64) -> Self {
        assert!(
            alignment.is_power_of_two(),
            "alignment must be a power of two"
        );
        AddressSpace {
            next: alignment.max(1 << 20),
            alignment,
        }
    }

    /// Allocates a region of `elems` elements of `elem_width` bytes each.
    pub fn alloc(&mut self, elems: usize, elem_width: usize) -> Region {
        let region = Region {
            base: self.next,
            elem_width,
            elems,
        };
        let bytes = (elems * elem_width) as u64;
        self.next = (self.next + bytes).div_ceil(self.alignment) * self.alignment;
        region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut space = AddressSpace::new();
        let a = space.alloc(1000, 4);
        let b = space.alloc(10, 8);
        assert!(a.base() + a.byte_size() as u64 <= b.base());
    }

    #[test]
    fn regions_are_page_aligned() {
        let mut space = AddressSpace::new();
        let a = space.alloc(3, 4);
        let b = space.alloc(3, 4);
        assert_eq!(a.base() % 4096, 0);
        assert_eq!(b.base() % 4096, 0);
    }

    #[test]
    fn addr_scales_by_element_width() {
        let mut space = AddressSpace::new();
        let r = space.alloc(10, 8);
        assert_eq!(r.addr(0), r.base());
        assert_eq!(r.addr(3), r.base() + 24);
    }

    #[test]
    #[should_panic]
    fn addr_out_of_bounds_panics() {
        let mut space = AddressSpace::new();
        let r = space.alloc(2, 4);
        let _ = r.addr(2);
    }

    #[test]
    fn slice_addresses_match_parent() {
        let mut space = AddressSpace::new();
        let r = space.alloc(100, 4);
        let s = r.slice(10, 5);
        assert_eq!(s.addr(0), r.addr(10));
        assert_eq!(s.addr(4), r.addr(14));
        assert_eq!(s.elems(), 5);
    }

    #[test]
    fn custom_alignment() {
        let mut space = AddressSpace::with_alignment(64);
        let a = space.alloc(1, 4);
        let b = space.alloc(1, 4);
        assert_eq!((b.base() - a.base()) % 64, 0);
    }
}
