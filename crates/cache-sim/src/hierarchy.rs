//! The set-associative cache + TLB simulator.

use crate::{CacheLevel, CacheParams, EventCounts, Tlb};

/// Simulator of one set-associative, LRU cache level.
#[derive(Debug, Clone)]
pub struct CacheLevelSim {
    line_size: u64,
    sets: usize,
    ways: usize,
    /// `tags[set]` holds the resident line tags in LRU order (front = MRU).
    tags: Vec<Vec<u64>>,
    misses: u64,
}

impl CacheLevelSim {
    /// Builds a simulator for the given cache geometry.
    pub fn new(level: &CacheLevel) -> Self {
        let sets = level.sets();
        CacheLevelSim {
            line_size: level.line_size as u64,
            sets,
            ways: level.ways(),
            tags: vec![Vec::new(); sets],
            misses: 0,
        }
    }

    /// Accesses the cache line containing `addr`; returns `true` on a miss.
    pub fn access_line(&mut self, addr: u64) -> bool {
        let line = addr / self.line_size;
        let set = (line % self.sets as u64) as usize;
        let ways = self.ways;
        let entries = &mut self.tags[set];
        if let Some(pos) = entries.iter().position(|&t| t == line) {
            // Hit: move to MRU position.
            let tag = entries.remove(pos);
            entries.insert(0, tag);
            false
        } else {
            // Miss: install at MRU, evict LRU if the set is full.
            self.misses += 1;
            entries.insert(0, line);
            if entries.len() > ways {
                entries.pop();
            }
            true
        }
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cache-line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.tags {
            s.clear();
        }
        self.misses = 0;
    }
}

/// Simulator of a fully associative, LRU data TLB.
#[derive(Debug, Clone)]
pub struct TlbSim {
    page_size: u64,
    entries: usize,
    /// Resident page numbers in LRU order (front = MRU).
    pages: Vec<u64>,
    misses: u64,
}

impl TlbSim {
    /// Builds a simulator for the given TLB.
    pub fn new(tlb: &Tlb) -> Self {
        TlbSim {
            page_size: tlb.page_size as u64,
            entries: tlb.entries,
            pages: Vec::new(),
            misses: 0,
        }
    }

    /// Accesses the page containing `addr`; returns `true` on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr / self.page_size;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            let p = self.pages.remove(pos);
            self.pages.insert(0, p);
            false
        } else {
            self.misses += 1;
            self.pages.insert(0, page);
            if self.pages.len() > self.entries {
                self.pages.pop();
            }
            true
        }
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.pages.clear();
        self.misses = 0;
    }
}

/// A two-level (or deeper) inclusive cache hierarchy plus TLB.
///
/// Every logical reference issued through [`MemorySystem::read`] /
/// [`MemorySystem::write`] touches the TLB once per page spanned and walks the
/// cache levels inner-to-outer, stopping at the first hit — the usual
/// simplified inclusive-hierarchy model.  Writes are treated as
/// write-allocate / fetch-on-write, which matches the Pentium 4 and is what
/// the paper's cost models assume for output regions.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    params: CacheParams,
    levels: Vec<CacheLevelSim>,
    tlb: TlbSim,
    accesses: u64,
}

impl MemorySystem {
    /// Builds a simulator for `params`.
    pub fn new(params: &CacheParams) -> Self {
        MemorySystem {
            params: params.clone(),
            levels: params.levels.iter().map(CacheLevelSim::new).collect(),
            tlb: TlbSim::new(&params.tlb),
            accesses: 0,
        }
    }

    /// The hierarchy description this simulator was built from.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Issues a read of `bytes` bytes starting at `addr`.
    pub fn read(&mut self, addr: u64, bytes: usize) {
        self.touch(addr, bytes);
    }

    /// Issues a write of `bytes` bytes starting at `addr` (write-allocate).
    pub fn write(&mut self, addr: u64, bytes: usize) {
        self.touch(addr, bytes);
    }

    fn touch(&mut self, addr: u64, bytes: usize) {
        debug_assert!(bytes > 0, "zero-byte access");
        self.accesses += 1;
        let end = addr + bytes as u64;

        // TLB: one lookup per page spanned.
        let page = self.tlb.page_size;
        let mut p = addr / page * page;
        while p < end {
            self.tlb.access(p);
            p += page;
        }

        // Caches: one lookup per innermost-level line spanned; on a miss the
        // request is forwarded to the next level (whose larger lines are
        // touched at the same addresses).
        let l1_line = self.levels[0].line_size();
        let mut a = addr / l1_line * l1_line;
        while a < end {
            let mut missed = true;
            for level in &mut self.levels {
                missed = level.access_line(a);
                if !missed {
                    break;
                }
            }
            let _ = missed;
            a += l1_line;
        }
    }

    /// The counters accumulated so far.
    pub fn counts(&self) -> EventCounts {
        EventCounts {
            accesses: self.accesses,
            l1_misses: self.levels.first().map(|l| l.misses()).unwrap_or(0),
            l2_misses: self.levels.get(1).map(|l| l.misses()).unwrap_or(0),
            tlb_misses: self.tlb.misses(),
        }
    }

    /// Clears cache contents and all counters.
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.reset();
        }
        self.tlb.reset();
        self.accesses = 0;
    }

    /// Estimated memory-stall milliseconds for the accumulated counters.
    pub fn stall_millis(&self) -> f64 {
        self.counts().stall_millis(&self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MemorySystem {
        MemorySystem::new(&CacheParams::tiny_for_tests())
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut mem = tiny();
        // 4096 bytes scanned 4 bytes at a time with 64-byte lines -> 64 L1 misses.
        for i in 0..1024u64 {
            mem.read(i * 4, 4);
        }
        let c = mem.counts();
        assert_eq!(c.accesses, 1024);
        assert_eq!(c.l1_misses, 64);
        // 4096 bytes > 1 KB L1 but < 8 KB L2 -> L2 sees the same 64 cold misses.
        assert_eq!(c.l2_misses, 64);
        // 4096 bytes / 1 KB pages -> 4 TLB misses.
        assert_eq!(c.tlb_misses, 4);
    }

    #[test]
    fn repeated_scan_of_cache_resident_region_hits() {
        let mut mem = tiny();
        // 512 bytes fit the 1 KB L1: second scan must not miss at all.
        for _ in 0..2 {
            for i in 0..128u64 {
                mem.read(i * 4, 4);
            }
        }
        let c = mem.counts();
        assert_eq!(c.l1_misses, 8); // 512/64 cold misses only
        assert_eq!(c.l2_misses, 8);
    }

    #[test]
    fn repeated_scan_of_oversized_region_thrashes_l1_but_fits_l2() {
        let mut mem = tiny();
        // 4 KB > 1 KB L1 (fully thrashes under LRU), but fits the 8 KB L2.
        for _ in 0..3 {
            for i in 0..64u64 {
                mem.read(i * 64, 4);
            }
        }
        let c = mem.counts();
        assert_eq!(c.l1_misses, 3 * 64); // every line re-missed every pass
        assert_eq!(c.l2_misses, 64); // only cold misses at L2
    }

    #[test]
    fn accesses_spanning_lines_touch_both() {
        let mut mem = tiny();
        mem.read(60, 8); // straddles the 0..64 and 64..128 lines
        assert_eq!(mem.counts().l1_misses, 2);
    }

    #[test]
    fn tlb_lru_behaviour() {
        let params = CacheParams::tiny_for_tests();
        let mut tlb = TlbSim::new(&params.tlb);
        // 8 entries, 1 KB pages: touching 8 pages then re-touching them hits.
        for p in 0..8u64 {
            assert!(tlb.access(p * 1024));
        }
        for p in 0..8u64 {
            assert!(!tlb.access(p * 1024));
        }
        // The 9th page evicts the LRU one (page 0).
        assert!(tlb.access(8 * 1024));
        assert!(tlb.access(0));
        assert_eq!(tlb.misses(), 10);
    }

    #[test]
    fn reset_clears_state_and_counts() {
        let mut mem = tiny();
        for i in 0..256u64 {
            mem.read(i * 16, 4);
        }
        assert!(mem.counts().l1_misses > 0);
        mem.reset();
        assert_eq!(mem.counts(), EventCounts::zero());
        // After reset the first access misses again (contents were dropped).
        mem.read(0, 4);
        assert_eq!(mem.counts().l1_misses, 1);
    }

    #[test]
    fn associativity_conflict_misses() {
        // Direct-mapped-like behaviour: two lines mapping to the same set with
        // associativity 2 coexist; a third one evicts.
        let params = CacheParams {
            levels: vec![CacheLevel {
                capacity: 8 * 64,
                line_size: 64,
                associativity: 2,
                miss_latency_cycles: 1,
            }],
            ..CacheParams::tiny_for_tests()
        };
        let mut mem = MemorySystem::new(&params);
        // 4 sets; addresses 0, 4*64, 8*64 all map to set 0.
        let stride = 4 * 64u64;
        mem.read(0, 4);
        mem.read(stride, 4);
        mem.read(0, 4); // hit
        mem.read(2 * stride, 4); // evicts LRU (stride)
        mem.read(stride, 4); // miss again
        assert_eq!(mem.counts().l1_misses, 4);
    }
}
