//! Event counters — the software stand-in for hardware performance counters.

use crate::CacheParams;

/// Miss/access counts accumulated by a [`crate::MemorySystem`] run.
///
/// The paper reports L1 misses, L2 misses and TLB misses for Radix-Decluster
/// (Fig. 7a) and uses the same three series to validate the cost models
/// (Fig. 9).  `accesses` counts logical memory references (per value touched,
/// not per byte).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Logical memory references issued.
    pub accesses: u64,
    /// Misses in the innermost (L1) data cache.
    pub l1_misses: u64,
    /// Misses in the outermost (L2) data cache.
    pub l2_misses: u64,
    /// Data-TLB misses.
    pub tlb_misses: u64,
}

impl EventCounts {
    /// All-zero counts.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Adds another set of counts to this one.
    pub fn accumulate(&mut self, other: &EventCounts) {
        self.accesses += other.accesses;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.tlb_misses += other.tlb_misses;
    }

    /// The memory-stall cycles these events imply under `params`' latencies.
    ///
    /// This is the quantity the cost models predict; comparing it against the
    /// simulator's replay of an algorithm is how we reproduce the
    /// "modeled (lines) vs measured (points)" panels of Fig. 7 and Fig. 9.
    pub fn stall_cycles(&self, params: &CacheParams) -> f64 {
        let l1 = params
            .levels
            .first()
            .map(|l| l.miss_latency_cycles)
            .unwrap_or(0);
        let l2 = params
            .levels
            .get(1)
            .map(|l| l.miss_latency_cycles)
            .unwrap_or(0);
        self.l1_misses as f64 * l1 as f64
            + self.l2_misses as f64 * l2 as f64
            + self.tlb_misses as f64 * params.tlb.miss_latency_cycles as f64
    }

    /// Memory-stall time in milliseconds under `params`.
    pub fn stall_millis(&self, params: &CacheParams) -> f64 {
        params.cycles_to_seconds(self.stall_cycles(params)) * 1e3
    }
}

impl std::ops::Add for EventCounts {
    type Output = EventCounts;

    fn add(self, rhs: EventCounts) -> EventCounts {
        let mut out = self;
        out.accumulate(&rhs);
        out
    }
}

impl std::iter::Sum for EventCounts {
    fn sum<I: Iterator<Item = EventCounts>>(iter: I) -> Self {
        iter.fold(EventCounts::zero(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_all_fields() {
        let a = EventCounts {
            accesses: 10,
            l1_misses: 4,
            l2_misses: 2,
            tlb_misses: 1,
        };
        let b = EventCounts {
            accesses: 5,
            l1_misses: 1,
            l2_misses: 1,
            tlb_misses: 0,
        };
        let c = a + b;
        assert_eq!(c.accesses, 15);
        assert_eq!(c.l1_misses, 5);
        assert_eq!(c.l2_misses, 3);
        assert_eq!(c.tlb_misses, 1);
    }

    #[test]
    fn stall_cycles_weights_by_latency() {
        let params = CacheParams::paper_pentium4();
        let e = EventCounts {
            accesses: 100,
            l1_misses: 10,
            l2_misses: 2,
            tlb_misses: 3,
        };
        let expected = 10.0 * 28.0 + 2.0 * 350.0 + 3.0 * 50.0;
        assert_eq!(e.stall_cycles(&params), expected);
        assert!(e.stall_millis(&params) > 0.0);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            EventCounts {
                accesses: 1,
                l1_misses: 1,
                l2_misses: 0,
                tlb_misses: 0,
            };
            4
        ];
        let total: EventCounts = parts.into_iter().sum();
        assert_eq!(total.accesses, 4);
        assert_eq!(total.l1_misses, 4);
    }
}
