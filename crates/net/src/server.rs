//! The socket front-end: a non-blocking accept/read/decode/write loop
//! interleaved with [`QueryEngine::step`].
//!
//! One thread owns everything — the listener, every connection's buffers,
//! and the engine.  A poll cycle services sockets *between* engine steps,
//! so a slow client never stalls query execution and a long chunk never
//! stalls `accept` for longer than one chunk's work.  Backpressure is
//! per-connection: each connection has a bounded outbound queue, and when
//! a client stops draining replies the server stops *decoding that
//! connection's requests* (bytes stay in its inbound buffer, the socket's
//! own flow control eventually pushes back on the client) while every
//! other connection and the engine proceed untouched.
//!
//! Protocol violations are connection-scoped by the same principle: a
//! malformed frame gets a best-effort [`Frame::ProtocolError`] reply and
//! tears down that connection only — the listener, the other connections,
//! and the engine all survive.

use crate::wire::{
    decode_frame, encode_frame, Frame, SubmitSpec, WireReport, DEFAULT_MAX_PAYLOAD, WIRE_VERSION,
};
use rdx_core::budget::MemoryBudget;
use rdx_core::error::RdxError;
use rdx_core::strategy::QuerySpec;
use rdx_serve::{
    QueryEngine, QueryOutcome, RelationId, ServerRequest, TenantId, TicketId, TicketStatus,
};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

/// A non-blocking listening socket, TCP or unix-domain.
#[derive(Debug)]
pub enum NetListener {
    /// A TCP listener (loopback or otherwise).
    Tcp(TcpListener),
    /// A unix-domain socket listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl NetListener {
    /// Binds a TCP listener (pass port 0 for an ephemeral port) and
    /// switches it to non-blocking mode.
    pub fn bind_tcp(addr: &str) -> io::Result<NetListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetListener::Tcp(listener))
    }

    /// Binds a unix-domain listener at `path` and switches it to
    /// non-blocking mode.  The caller owns the path (it must not exist).
    #[cfg(unix)]
    pub fn bind_unix(path: &Path) -> io::Result<NetListener> {
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(NetListener::Unix(listener))
    }

    /// The bound TCP address, for handing an ephemeral port to clients.
    /// `None` for unix listeners.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            NetListener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            NetListener::Unix(_) => None,
        }
    }

    /// Accepts one pending connection, or `None` when nothing is pending.
    fn accept(&self) -> io::Result<Option<NetStream>> {
        match self {
            NetListener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => Ok(Some(NetStream::Tcp(stream))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            NetListener::Unix(l) => match l.accept() {
                Ok((stream, _)) => Ok(Some(NetStream::Unix(stream))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// One connected byte stream, TCP or unix-domain — the transport under
/// both the server's connections and the blocking [`crate::NetClient`].
#[derive(Debug)]
pub enum NetStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl NetStream {
    /// Connects to a TCP server (blocking mode — callers that poll flip
    /// it with [`NetStream::set_nonblocking`]).
    pub fn connect_tcp(addr: SocketAddr) -> io::Result<NetStream> {
        Ok(NetStream::Tcp(TcpStream::connect(addr)?))
    }

    /// Connects to a unix-domain server.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> io::Result<NetStream> {
        Ok(NetStream::Unix(UnixStream::connect(path)?))
    }

    /// Switches the stream between blocking and non-blocking mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            NetStream::Unix(s) => s.flush(),
        }
    }
}

/// Tuning knobs for the poll loop.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Per-frame payload cap handed to the decoder — a hostile length
    /// field is refused before any buffer grows to meet it.
    pub max_payload: u32,
    /// Bound on a connection's queued outbound frames.  At the bound the
    /// server stops decoding that connection's requests until the client
    /// drains replies — backpressure that never blocks the engine.
    pub outbound_limit: usize,
    /// Engine steps per poll cycle: the knob trading socket latency
    /// against query throughput.
    pub steps_per_cycle: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_payload: DEFAULT_MAX_PAYLOAD,
            outbound_limit: 64,
            steps_per_cycle: 4,
        }
    }
}

/// Cumulative counters for one server's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections closed (all causes: client EOF, protocol teardown,
    /// socket errors).
    pub closed: u64,
    /// Frames decoded from clients.
    pub frames_in: u64,
    /// Frames queued to clients.
    pub frames_out: u64,
    /// Malformed-input events (each also tears its connection down).
    pub decode_errors: u64,
    /// Times a connection's request decoding paused because its outbound
    /// queue hit [`NetConfig::outbound_limit`].
    pub backpressure_pauses: u64,
}

/// Per-connection state: buffered bytes in, queued frames out, and the
/// session facts (tenant, issued tickets) the protocol scopes per
/// connection.
struct Conn {
    stream: NetStream,
    inbound: Vec<u8>,
    outbound: VecDeque<Vec<u8>>,
    /// Bytes of `outbound.front()` already written (partial writes).
    write_pos: usize,
    /// Interned tenant from this connection's `Hello`, billed on every
    /// subsequent `Submit`.
    tenant: Option<TenantId>,
    /// Tickets issued to this connection: raw wire number → engine handle.
    /// Tickets are connection-scoped — polling another client's ticket is
    /// `UnknownTicket` by construction.
    tickets: HashMap<u64, TicketId>,
    /// Tear down once the outbound queue drains (EOF seen, or a protocol
    /// error reply is on its way out).
    close_after_flush: bool,
    /// Set while this connection is holding off decoding at the outbound
    /// bound, so one pause is counted once, not once per poll cycle.
    paused: bool,
}

impl Conn {
    fn new(stream: NetStream) -> Conn {
        Conn {
            stream,
            inbound: Vec::new(),
            outbound: VecDeque::new(),
            write_pos: 0,
            tenant: None,
            tickets: HashMap::new(),
            close_after_flush: false,
            paused: false,
        }
    }
}

/// What one cycle's socket servicing did to a connection.
enum ConnFate {
    Keep,
    Close,
}

/// The engine's socket front-end: owns a [`QueryEngine`], a listener, and
/// every connection, and multiplexes them from one thread.
///
/// ```no_run
/// use rdx_net::{NetConfig, NetListener, NetServer};
/// use rdx_serve::{QueryEngine, ServeConfig};
///
/// let engine = QueryEngine::new(ServeConfig::default());
/// let listener = NetListener::bind_tcp("127.0.0.1:0").unwrap();
/// let mut server = NetServer::new(listener, engine, NetConfig::default());
/// // register relations via server.engine_mut(), hand out the address...
/// let stats = server.serve();
/// # let _ = stats;
/// ```
pub struct NetServer {
    listener: NetListener,
    engine: QueryEngine,
    config: NetConfig,
    conns: Vec<Conn>,
    stats: NetStats,
    /// `serve` runs until the server has seen at least one client and then
    /// drained back to zero connections with an idle engine.
    seen_any: bool,
}

impl NetServer {
    /// Wraps `engine` behind `listener`.
    pub fn new(listener: NetListener, engine: QueryEngine, config: NetConfig) -> NetServer {
        NetServer {
            listener,
            engine,
            config,
            conns: Vec::new(),
            stats: NetStats::default(),
            seen_any: false,
        }
    }

    /// The engine, for registering relations (and inspecting stats)
    /// before/after serving.
    pub fn engine_mut(&mut self) -> &mut QueryEngine {
        &mut self.engine
    }

    /// The engine, read-only.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The bound TCP address (for ephemeral ports); `None` on unix.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.listener.tcp_addr()
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Live connection count.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Runs one cycle: accept pending connections, flush writes, read and
    /// decode requests (respecting per-connection backpressure), then run
    /// up to [`NetConfig::steps_per_cycle`] engine steps.  Returns `true`
    /// when the cycle did any work (socket bytes moved, frames handled, or
    /// engine progress) — `false` means the caller may sleep briefly.
    pub fn poll_cycle(&mut self) -> bool {
        let mut progressed = false;

        // Accept everything pending; each new socket goes non-blocking so
        // it can never stall the loop.
        while let Ok(Some(stream)) = self.listener.accept() {
            if stream.set_nonblocking(true).is_ok() {
                self.conns.push(Conn::new(stream));
                self.stats.accepted += 1;
                self.seen_any = true;
                progressed = true;
            }
        }

        // Service each connection: writes first (draining replies is what
        // releases backpressure), then reads.
        let mut idx = 0;
        while idx < self.conns.len() {
            let fate = self.service_conn(idx, &mut progressed);
            match fate {
                ConnFate::Keep => idx += 1,
                ConnFate::Close => {
                    let conn = self.conns.swap_remove(idx);
                    self.teardown(conn);
                    self.stats.closed += 1;
                    progressed = true;
                }
            }
        }

        // Engine work, bounded so sockets are re-serviced between bursts.
        for _ in 0..self.config.steps_per_cycle {
            match self.engine.step() {
                rdx_serve::EngineStep::Idle => break,
                rdx_serve::EngineStep::Waiting => {
                    // Parked retries advance on the step clock; count it
                    // as progress so serve() keeps stepping instead of
                    // sleeping the backoff away one cycle at a time.
                    progressed = true;
                }
                _ => progressed = true,
            }
        }

        progressed
    }

    /// Serves until at least one client has connected and then *all*
    /// clients have disconnected with the engine drained — the natural
    /// shape for tests and batch front-ends.  Long-running deployments
    /// call [`NetServer::poll_cycle`] in their own loop instead.  Borrows
    /// rather than consumes, so the caller can inspect the engine (stats,
    /// traces, tenant accounting) after the run.
    pub fn serve(&mut self) -> NetStats {
        loop {
            let progressed = self.poll_cycle();
            if self.seen_any && self.conns.is_empty() && self.engine.is_idle() {
                return self.stats;
            }
            if !progressed {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    /// Cancels and drains a departing connection's outstanding tickets so
    /// nothing stays parked in the engine forever.
    fn teardown(&mut self, conn: Conn) {
        for (_, ticket) in conn.tickets {
            self.engine.cancel(ticket);
            let _ = self.engine.take_outcome(ticket);
        }
    }

    fn service_conn(&mut self, idx: usize, progressed: &mut bool) -> ConnFate {
        // --- flush queued replies (partial writes resume at write_pos) ---
        loop {
            let conn = &mut self.conns[idx];
            let Some(front) = conn.outbound.front() else {
                break;
            };
            match conn.stream.write(&front[conn.write_pos..]) {
                Ok(0) => return ConnFate::Close,
                Ok(n) => {
                    *progressed = true;
                    conn.write_pos += n;
                    if conn.write_pos == front.len() {
                        conn.outbound.pop_front();
                        conn.write_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ConnFate::Close,
            }
        }
        if self.conns[idx].outbound.is_empty() && self.conns[idx].close_after_flush {
            return ConnFate::Close;
        }

        // --- read whatever the socket has ---
        let mut buf = [0u8; 4096];
        loop {
            let conn = &mut self.conns[idx];
            if conn.close_after_flush {
                break; // tearing down: ignore further input
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF: finish flushing replies, then close.
                    conn.close_after_flush = true;
                    if conn.outbound.is_empty() {
                        return ConnFate::Close;
                    }
                    break;
                }
                Ok(n) => {
                    *progressed = true;
                    conn.inbound.extend_from_slice(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ConnFate::Close,
            }
        }

        // --- decode + handle, while the outbound queue has room ---
        loop {
            let conn = &mut self.conns[idx];
            if conn.close_after_flush {
                break;
            }
            if conn.outbound.len() >= self.config.outbound_limit {
                if !conn.paused {
                    conn.paused = true;
                    self.stats.backpressure_pauses += 1;
                }
                break;
            }
            conn.paused = false;
            match decode_frame(&conn.inbound, self.config.max_payload) {
                Ok(None) => break,
                Ok(Some((frame, consumed))) => {
                    conn.inbound.drain(..consumed);
                    self.stats.frames_in += 1;
                    *progressed = true;
                    self.handle_frame(idx, frame);
                }
                Err(err) => {
                    // Protocol violation: best-effort notice, then tear
                    // down this connection only.
                    self.stats.decode_errors += 1;
                    *progressed = true;
                    self.enqueue(
                        idx,
                        &Frame::ProtocolError {
                            detail: err.to_string(),
                        },
                    );
                    self.conns[idx].close_after_flush = true;
                    break;
                }
            }
        }
        ConnFate::Keep
    }

    fn enqueue(&mut self, idx: usize, frame: &Frame) {
        let mut bytes = Vec::new();
        encode_frame(frame, &mut bytes);
        self.conns[idx].outbound.push_back(bytes);
        self.stats.frames_out += 1;
    }

    fn handle_frame(&mut self, idx: usize, frame: Frame) {
        match frame {
            Frame::Hello { tenant } => {
                let id = tenant.map(|name| self.engine.tenant_id(&name));
                self.conns[idx].tenant = id;
                self.enqueue(
                    idx,
                    &Frame::HelloOk {
                        version: WIRE_VERSION,
                        tenant: id.map(|t| t.raw()),
                    },
                );
            }
            Frame::Submit(spec) => self.handle_submit(idx, spec),
            Frame::Poll { ticket } => self.handle_poll(idx, ticket),
            Frame::Cancel { ticket } => {
                let cancelled = match self.conns[idx].tickets.get(&ticket) {
                    Some(&tid) => self.engine.cancel(tid),
                    None => false,
                };
                self.enqueue(idx, &Frame::CancelResult { ticket, cancelled });
            }
            // A client echoing server frames is a protocol violation of
            // the same severity as unparseable bytes.
            _ => {
                self.stats.decode_errors += 1;
                self.enqueue(
                    idx,
                    &Frame::ProtocolError {
                        detail: "server-to-client frame sent by client".into(),
                    },
                );
                self.conns[idx].close_after_flush = true;
            }
        }
    }

    fn handle_submit(&mut self, idx: usize, spec: SubmitSpec) {
        // A zero budget can never become a valid `MemoryBudget` value, so
        // it is refused before a ticket exists; `NO_TICKET` marks the
        // rejection as pre-admission.  Every other validation failure
        // (unknown relation, too many columns, below-one-row budget…)
        // flows through the engine and surfaces on the ticket, exactly as
        // it does in-process.
        let budget = match spec.budget_bytes {
            Some(bytes) => match MemoryBudget::try_bytes(bytes as usize) {
                Ok(b) => Some(b),
                Err(e) => {
                    self.enqueue(
                        idx,
                        &Frame::Rejected {
                            ticket: NO_TICKET,
                            error: RdxError::Budget(e),
                        },
                    );
                    return;
                }
            },
            None => None,
        };
        let mut request = ServerRequest::new(
            RelationId::from_raw(spec.larger),
            RelationId::from_raw(spec.smaller),
            QuerySpec {
                project_larger: spec.project_larger as usize,
                project_smaller: spec.project_smaller as usize,
            },
        )
        .with_priority(spec.priority);
        if let Some(b) = budget {
            request = request.with_budget_hint(b);
        }
        if let Some(t) = spec.threads {
            request = request.with_threads(t as usize);
        }
        if let Some(codes) = spec.codes {
            request = request.with_codes(codes);
        }
        if let Some(d) = spec.deadline_ns {
            request = request.with_deadline(d);
        }
        if let Some(t) = self.conns[idx].tenant {
            request = request.with_tenant(t);
        }
        let ticket = self.engine.submit(request);
        let raw = ticket.raw();
        self.conns[idx].tickets.insert(raw, ticket);
        self.enqueue(idx, &Frame::Submitted { ticket: raw });
    }

    fn handle_poll(&mut self, idx: usize, ticket: u64) {
        let Some(&tid) = self.conns[idx].tickets.get(&ticket) else {
            self.enqueue(
                idx,
                &Frame::Rejected {
                    ticket,
                    error: RdxError::UnknownTicket { ticket },
                },
            );
            return;
        };
        match self.engine.status(tid) {
            Some(TicketStatus::Queued { position }) => self.enqueue(
                idx,
                &Frame::Queued {
                    ticket,
                    position: position as u64,
                },
            ),
            Some(TicketStatus::Running { chunks, rows }) => self.enqueue(
                idx,
                &Frame::Chunk {
                    ticket,
                    chunks: chunks as u64,
                    rows: rows as u64,
                },
            ),
            Some(TicketStatus::Finished) => {
                // Consume the parked outcome; the ticket is spent.
                let outcome = self.engine.take_outcome(tid);
                self.conns[idx].tickets.remove(&ticket);
                match outcome {
                    Some(QueryOutcome {
                        outcome: Ok(result),
                        ..
                    }) => {
                        let report = WireReport {
                            rows: result.stats.rows as u64,
                            chunks: result.stats.chunks as u64,
                            cache_hit: result.stats.cache_hit,
                            share_bytes: result.stats.share_bytes as u64,
                            columns: result
                                .result
                                .columns()
                                .iter()
                                .map(|c| c.as_slice().to_vec())
                                .collect(),
                        };
                        self.enqueue(idx, &Frame::Done { ticket, report });
                    }
                    Some(QueryOutcome {
                        outcome: Err(error),
                        ..
                    }) => self.enqueue(idx, &Frame::Rejected { ticket, error }),
                    None => self.enqueue(
                        idx,
                        &Frame::Rejected {
                            ticket,
                            error: RdxError::UnknownTicket { ticket },
                        },
                    ),
                }
            }
            None => self.enqueue(
                idx,
                &Frame::Rejected {
                    ticket,
                    error: RdxError::UnknownTicket { ticket },
                },
            ),
        }
    }
}

/// The sentinel ticket number on a [`Frame::Rejected`] for a submit that
/// was refused before a ticket could be issued (only a zero-byte budget,
/// which no `MemoryBudget` value can represent).  Real tickets count up
/// from zero and can never reach it.
pub const NO_TICKET: u64 = u64::MAX;
