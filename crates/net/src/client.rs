//! A minimal blocking client for the wire protocol — enough to drive a
//! server from tests, examples, and other processes without pulling in
//! any async machinery.

use crate::server::NetStream;
use crate::wire::{decode_frame, encode_frame, Frame, SubmitSpec, WireError, WireReport};
use rdx_core::error::RdxError;
use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::path::Path;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server sent bytes that do not decode.
    Wire(WireError),
    /// The server answered with a frame the call did not expect, or sent
    /// [`Frame::ProtocolError`] (the connection is about to be closed).
    Protocol(String),
    /// The server closed the connection.
    Disconnected,
    /// The server refused the request with a typed engine error.
    Rejected(RdxError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "undecodable server bytes: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol violation: {d}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Rejected(e) => write!(f, "request rejected: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            ClientError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a [`crate::NetServer`].
///
/// One request/reply at a time: each helper sends its frame and blocks on
/// the matching reply.  [`NetClient::wait`] layers a poll loop on top to
/// block until a ticket finishes.
pub struct NetClient {
    stream: NetStream,
    inbound: Vec<u8>,
    max_payload: u32,
    /// Delay between polls inside [`NetClient::wait`].
    poll_interval: Duration,
}

impl NetClient {
    /// Connects over TCP.
    pub fn connect_tcp(addr: SocketAddr) -> Result<NetClient, ClientError> {
        Ok(NetClient::new(NetStream::connect_tcp(addr)?))
    }

    /// Connects over a unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> Result<NetClient, ClientError> {
        Ok(NetClient::new(NetStream::connect_unix(path)?))
    }

    /// Wraps an already-connected (blocking-mode) stream.
    pub fn new(stream: NetStream) -> NetClient {
        NetClient {
            stream,
            inbound: Vec::new(),
            max_payload: crate::wire::DEFAULT_MAX_PAYLOAD,
            poll_interval: Duration::from_micros(200),
        }
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        let mut bytes = Vec::new();
        encode_frame(frame, &mut bytes);
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Blocks until the next complete frame arrives.
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        loop {
            if let Some((frame, consumed)) = decode_frame(&self.inbound, self.max_payload)? {
                self.inbound.drain(..consumed);
                return Ok(frame);
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => self.inbound.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Receives, turning a server-side [`Frame::ProtocolError`] into the
    /// typed client error every helper reports it as.
    fn recv_expected(&mut self) -> Result<Frame, ClientError> {
        match self.recv()? {
            Frame::ProtocolError { detail } => Err(ClientError::Protocol(detail)),
            frame => Ok(frame),
        }
    }

    /// Opens the session, optionally naming the tenant every subsequent
    /// submit is billed to.  Returns the server's wire version and the
    /// interned raw tenant id.
    pub fn hello(&mut self, tenant: Option<&str>) -> Result<(u8, Option<u32>), ClientError> {
        self.send(&Frame::Hello {
            tenant: tenant.map(str::to_owned),
        })?;
        match self.recv_expected()? {
            Frame::HelloOk { version, tenant } => Ok((version, tenant)),
            other => Err(ClientError::Protocol(format!(
                "expected HelloOk, got {other:?}"
            ))),
        }
    }

    /// Submits one query, returning its ticket.  A pre-ticket refusal
    /// (zero-byte budget) surfaces as [`ClientError::Rejected`].
    pub fn submit(&mut self, spec: SubmitSpec) -> Result<u64, ClientError> {
        self.send(&Frame::Submit(spec))?;
        match self.recv_expected()? {
            Frame::Submitted { ticket } => Ok(ticket),
            Frame::Rejected { error, .. } => Err(ClientError::Rejected(error)),
            other => Err(ClientError::Protocol(format!(
                "expected Submitted, got {other:?}"
            ))),
        }
    }

    /// Polls a ticket once, returning the raw status frame (`Queued`,
    /// `Chunk`, `Done`, or `Rejected`).
    pub fn poll(&mut self, ticket: u64) -> Result<Frame, ClientError> {
        self.send(&Frame::Poll { ticket })?;
        match self.recv_expected()? {
            frame @ (Frame::Queued { .. }
            | Frame::Chunk { .. }
            | Frame::Done { .. }
            | Frame::Rejected { .. }) => Ok(frame),
            other => Err(ClientError::Protocol(format!(
                "expected a status frame, got {other:?}"
            ))),
        }
    }

    /// Cancels a ticket; `false` means it had already finished (or was
    /// never this connection's).
    pub fn cancel(&mut self, ticket: u64) -> Result<bool, ClientError> {
        self.send(&Frame::Cancel { ticket })?;
        match self.recv_expected()? {
            Frame::CancelResult { cancelled, .. } => Ok(cancelled),
            other => Err(ClientError::Protocol(format!(
                "expected CancelResult, got {other:?}"
            ))),
        }
    }

    /// Polls until the ticket finishes: the completion report on success,
    /// the typed engine error on refusal — the same `Result` shape the
    /// in-process `run` returns.
    pub fn wait(&mut self, ticket: u64) -> Result<Result<WireReport, RdxError>, ClientError> {
        loop {
            match self.poll(ticket)? {
                Frame::Done { report, .. } => return Ok(Ok(report)),
                Frame::Rejected { error, .. } => return Ok(Err(error)),
                _ => std::thread::sleep(self.poll_interval),
            }
        }
    }
}
