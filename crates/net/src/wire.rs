//! The **pure codec**: frame ⇄ bytes, no sockets, no engine.
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! ┌────────┬─────────┬──────┬─────────────┬─────────────────┐
//! │ magic  │ version │ type │ payload_len │ payload         │
//! │ 2 B    │ 1 B     │ 1 B  │ 4 B LE      │ payload_len B   │
//! └────────┴─────────┴──────┴─────────────┴─────────────────┘
//! ```
//!
//! `magic` is `"RD"` (`0x52 0x44`), `version` is [`WIRE_VERSION`].  Client
//! frame types live below `0x80`, server types at or above it.  Integers
//! are little-endian; optional fields are a presence byte (`0`/`1`)
//! followed by the value; strings and columns are a `u32` length followed
//! by the bytes/values.  Everything here is a total function of the input
//! bytes: [`decode_frame`] returns `Ok(None)` for an incomplete buffer and
//! a typed [`WireError`] for a malformed one — it never panics on
//! untrusted input, which is what lets the server treat a bad client as a
//! per-connection event rather than a process event.
//!
//! A frame decoded under a *newer* `version` byte fails with
//! [`WireError::UnsupportedVersion`] before its type byte is even
//! considered, so protocol evolution is: bump [`WIRE_VERSION`], keep
//! decoding old versions where the layout allows, and let old servers
//! refuse new clients with a typed error instead of garbage.

use rdx_core::budget::BudgetError;
use rdx_core::error::{DeadlineError, RdxError, Side, TenantQuotaKind};
use rdx_core::strategy::common::{ProjectionCode, SecondSideCode};
use rdx_core::strategy::DsmPostProjection;

/// The two magic bytes every frame starts with: `"RD"`.
pub const MAGIC: [u8; 2] = [0x52, 0x44];

/// The protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// Header size in bytes (magic + version + type + payload length).
pub const HEADER_LEN: usize = 8;

/// Default cap on a single frame's payload (16 MiB) — a decoded length
/// above the cap is refused with [`WireError::Oversized`] *before* any
/// buffer grows to meet it, so a hostile length field cannot balloon
/// server memory.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 << 20;

/// Why a byte sequence could not be decoded as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 2],
    },
    /// The version byte names a protocol this build does not speak.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The type byte names no known frame.
    UnknownFrameType {
        /// The type byte found.
        found: u8,
    },
    /// The declared payload length exceeds the decoder's cap.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The decoder's cap.
        max: u32,
    },
    /// The payload did not parse as its frame type's layout.
    BadPayload {
        /// What went wrong (static: decoding allocates only for values).
        detail: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected \"RD\")")
            }
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (speaking {WIRE_VERSION})"
                )
            }
            WireError::UnknownFrameType { found } => {
                write!(f, "unknown frame type 0x{found:02x}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "frame payload of {len} B exceeds the {max} B cap")
            }
            WireError::BadPayload { detail } => write!(f, "malformed frame payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The submit payload: the wire form of a `ServerRequest` minus the
/// in-process-only knobs (adaptive policies, fault injection, profiling
/// stay server-side; the tenant rides the connection's `Hello`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitSpec {
    /// Raw id of the larger (probing) relation.
    pub larger: u32,
    /// Raw id of the smaller (build) relation.
    pub smaller: u32,
    /// Columns projected from the larger side.
    pub project_larger: u32,
    /// Columns projected from the smaller side.
    pub project_smaller: u32,
    /// Optional per-query budget cap in bytes.
    pub budget_bytes: Option<u64>,
    /// Optional worker-thread count (`0` = auto-detect).
    pub threads: Option<u32>,
    /// Optional pinned projection codes (bypasses the cost planner).
    pub codes: Option<DsmPostProjection>,
    /// Optional service-time deadline in nanoseconds.
    pub deadline_ns: Option<u64>,
    /// Scheduling priority (`1` default).
    pub priority: u32,
}

/// The completion report a [`Frame::Done`] carries — enough to reproduce
/// the in-process `QueryResult` byte for byte (the full result columns)
/// plus the headline stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReport {
    /// Result cardinality.
    pub rows: u64,
    /// Chunks the query streamed in.
    pub chunks: u64,
    /// Whether the prepared prefix came from the clustered-index cache.
    pub cache_hit: bool,
    /// The budget share the query ran under, in bytes.
    pub share_bytes: u64,
    /// The materialised result columns, in projection order.
    pub columns: Vec<Vec<i32>>,
}

/// One protocol message, client or server.
///
/// The server frames mirror the engine's `TicketStatus` exactly:
/// `Queued { position }` ⇄ [`Frame::Queued`], `Running { chunks, rows }` ⇄
/// [`Frame::Chunk`], and a `Finished` ticket's outcome ⇄ [`Frame::Done`] /
/// [`Frame::Rejected`].
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client: opens the connection, optionally naming the tenant every
    /// subsequent submit on this connection is billed to.
    Hello {
        /// Tenant name, interned server-side into a `TenantId`.
        tenant: Option<String>,
    },
    /// Client: submits one projection query.
    Submit(SubmitSpec),
    /// Client: asks where a ticket is in its state machine.
    Poll {
        /// The ticket, as returned by [`Frame::Submitted`].
        ticket: u64,
    },
    /// Client: cancels a ticket wherever it is.
    Cancel {
        /// The ticket to cancel.
        ticket: u64,
    },
    /// Server: answers [`Frame::Hello`] with the negotiated version and
    /// the interned tenant id (if a tenant was named).
    HelloOk {
        /// The server's wire version.
        version: u8,
        /// Raw interned tenant id.
        tenant: Option<u32>,
    },
    /// Server: answers [`Frame::Submit`] with the issued ticket.
    Submitted {
        /// The raw ticket number.
        ticket: u64,
    },
    /// Server: the ticket is waiting for admission (mirrors
    /// `TicketStatus::Queued`).
    Queued {
        /// The polled ticket.
        ticket: u64,
        /// 0-based position in the admission queue.
        position: u64,
    },
    /// Server: the ticket is running (mirrors `TicketStatus::Running`).
    Chunk {
        /// The polled ticket.
        ticket: u64,
        /// Chunks emitted so far.
        chunks: u64,
        /// Rows emitted so far.
        rows: u64,
    },
    /// Server: the ticket finished; the report carries the full result.
    Done {
        /// The polled ticket.
        ticket: u64,
        /// Result columns and headline stats.
        report: WireReport,
    },
    /// Server: the ticket failed with a typed engine error.
    Rejected {
        /// The polled ticket.
        ticket: u64,
        /// Why — the workspace-wide error, encoded losslessly.
        error: RdxError,
    },
    /// Server: answers [`Frame::Cancel`].
    CancelResult {
        /// The cancelled ticket.
        ticket: u64,
        /// `false` when the ticket was already finished (or unknown).
        cancelled: bool,
    },
    /// Server: the connection violated the protocol and will be closed
    /// (sent best-effort before teardown; the server itself survives).
    ProtocolError {
        /// Human-readable detail, mirroring the server-side [`WireError`].
        detail: String,
    },
}

impl Frame {
    /// This frame's wire type byte.
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Submit(_) => 0x02,
            Frame::Poll { .. } => 0x03,
            Frame::Cancel { .. } => 0x04,
            Frame::HelloOk { .. } => 0x81,
            Frame::Submitted { .. } => 0x82,
            Frame::Queued { .. } => 0x83,
            Frame::Chunk { .. } => 0x84,
            Frame::Done { .. } => 0x85,
            Frame::Rejected { .. } => 0x86,
            Frame::CancelResult { .. } => 0x87,
            Frame::ProtocolError { .. } => 0x88,
        }
    }
}

// ---------------------------------------------------------------- writing

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u32(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_error(out: &mut Vec<u8>, e: &RdxError) {
    match e {
        RdxError::Budget(b) => {
            out.push(0);
            match b {
                BudgetError::ZeroBytes => out.push(0),
                BudgetError::BelowOneRow {
                    budget_bytes,
                    bytes_per_row,
                } => {
                    out.push(1);
                    put_u64(out, *budget_bytes as u64);
                    put_u64(out, *bytes_per_row as u64);
                }
            }
        }
        RdxError::UnknownRelation { id } => {
            out.push(1);
            put_u32(out, *id);
        }
        RdxError::TooManyColumns {
            side,
            requested,
            available,
        } => {
            out.push(2);
            out.push(match side {
                Side::Larger => 0,
                Side::Smaller => 1,
            });
            put_u64(out, *requested as u64);
            put_u64(out, *available as u64);
        }
        RdxError::SelectionMismatch {
            selection_base,
            base_cardinality,
        } => {
            out.push(3);
            put_u64(out, *selection_base as u64);
            put_u64(out, *base_cardinality as u64);
        }
        RdxError::UnknownTicket { ticket } => {
            out.push(4);
            put_u64(out, *ticket);
        }
        RdxError::Deadline(d) => {
            out.push(5);
            match d {
                DeadlineError::Infeasible {
                    predicted_ns,
                    deadline_ns,
                } => {
                    out.push(0);
                    put_u64(out, *predicted_ns);
                    put_u64(out, *deadline_ns);
                }
                DeadlineError::Exceeded {
                    consumed_ns,
                    deadline_ns,
                } => {
                    out.push(1);
                    put_u64(out, *consumed_ns);
                    put_u64(out, *deadline_ns);
                }
            }
        }
        RdxError::Cancelled => out.push(6),
        RdxError::WorkerPanicked { worker } => {
            out.push(7);
            put_u64(out, *worker as u64);
        }
        RdxError::TenantQuota { tenant, kind } => {
            out.push(8);
            put_u32(out, *tenant);
            match kind {
                TenantQuotaKind::InFlight { in_flight, limit } => {
                    out.push(0);
                    put_u64(out, *in_flight as u64);
                    put_u64(out, *limit as u64);
                }
                TenantQuotaKind::ResidentBytes {
                    needed,
                    in_use,
                    limit,
                } => {
                    out.push(1);
                    put_u64(out, *needed as u64);
                    put_u64(out, *in_use as u64);
                    put_u64(out, *limit as u64);
                }
            }
        }
    }
}

/// Appends `frame`, fully encoded (header + payload), to `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(frame.type_byte());
    let len_at = out.len();
    put_u32(out, 0); // patched below
    let payload_start = out.len();
    match frame {
        Frame::Hello { tenant } => match tenant {
            Some(name) => {
                out.push(1);
                put_string(out, name);
            }
            None => out.push(0),
        },
        Frame::Submit(s) => {
            put_u32(out, s.larger);
            put_u32(out, s.smaller);
            put_u32(out, s.project_larger);
            put_u32(out, s.project_smaller);
            put_opt_u64(out, s.budget_bytes);
            put_opt_u32(out, s.threads);
            match s.codes {
                Some(codes) => {
                    out.push(1);
                    out.push(match codes.first_side {
                        ProjectionCode::Unsorted => 0,
                        ProjectionCode::Sorted => 1,
                        ProjectionCode::PartialCluster => 2,
                    });
                    out.push(match codes.second_side {
                        SecondSideCode::Unsorted => 0,
                        SecondSideCode::Decluster => 1,
                    });
                }
                None => out.push(0),
            }
            put_opt_u64(out, s.deadline_ns);
            put_u32(out, s.priority);
        }
        Frame::Poll { ticket } | Frame::Cancel { ticket } | Frame::Submitted { ticket } => {
            put_u64(out, *ticket);
        }
        Frame::HelloOk { version, tenant } => {
            out.push(*version);
            put_opt_u32(out, *tenant);
        }
        Frame::Queued { ticket, position } => {
            put_u64(out, *ticket);
            put_u64(out, *position);
        }
        Frame::Chunk {
            ticket,
            chunks,
            rows,
        } => {
            put_u64(out, *ticket);
            put_u64(out, *chunks);
            put_u64(out, *rows);
        }
        Frame::Done { ticket, report } => {
            put_u64(out, *ticket);
            put_u64(out, report.rows);
            put_u64(out, report.chunks);
            out.push(u8::from(report.cache_hit));
            put_u64(out, report.share_bytes);
            put_u16(out, report.columns.len() as u16);
            for col in &report.columns {
                put_u32(out, col.len() as u32);
                for v in col {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        Frame::Rejected { ticket, error } => {
            put_u64(out, *ticket);
            put_error(out, error);
        }
        Frame::CancelResult { ticket, cancelled } => {
            put_u64(out, *ticket);
            out.push(u8::from(*cancelled));
        }
        Frame::ProtocolError { detail } => put_string(out, detail),
    }
    let payload_len = (out.len() - payload_start) as u32;
    out[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
}

// ---------------------------------------------------------------- reading

/// A bounds-checked little-endian cursor over one frame's payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::BadPayload {
            detail: "length overflow",
        })?;
        if end > self.buf.len() {
            return Err(WireError::BadPayload {
                detail: "truncated payload",
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadPayload {
                detail: "boolean byte not 0/1",
            }),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        Ok(if self.bool()? {
            Some(self.u32()?)
        } else {
            None
        })
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadPayload {
            detail: "string not UTF-8",
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload {
                detail: "trailing bytes after payload",
            })
        }
    }
}

fn read_error(r: &mut Reader<'_>) -> Result<RdxError, WireError> {
    let bad = |detail| WireError::BadPayload { detail };
    Ok(match r.u8()? {
        0 => RdxError::Budget(match r.u8()? {
            0 => BudgetError::ZeroBytes,
            1 => BudgetError::BelowOneRow {
                budget_bytes: r.u64()? as usize,
                bytes_per_row: r.u64()? as usize,
            },
            _ => return Err(bad("unknown budget error tag")),
        }),
        1 => RdxError::UnknownRelation { id: r.u32()? },
        2 => RdxError::TooManyColumns {
            side: match r.u8()? {
                0 => Side::Larger,
                1 => Side::Smaller,
                _ => return Err(bad("unknown side tag")),
            },
            requested: r.u64()? as usize,
            available: r.u64()? as usize,
        },
        3 => RdxError::SelectionMismatch {
            selection_base: r.u64()? as usize,
            base_cardinality: r.u64()? as usize,
        },
        4 => RdxError::UnknownTicket { ticket: r.u64()? },
        5 => RdxError::Deadline(match r.u8()? {
            0 => DeadlineError::Infeasible {
                predicted_ns: r.u64()?,
                deadline_ns: r.u64()?,
            },
            1 => DeadlineError::Exceeded {
                consumed_ns: r.u64()?,
                deadline_ns: r.u64()?,
            },
            _ => return Err(bad("unknown deadline error tag")),
        }),
        6 => RdxError::Cancelled,
        7 => RdxError::WorkerPanicked {
            worker: r.u64()? as usize,
        },
        8 => RdxError::TenantQuota {
            tenant: r.u32()?,
            kind: match r.u8()? {
                0 => TenantQuotaKind::InFlight {
                    in_flight: r.u64()? as usize,
                    limit: r.u64()? as usize,
                },
                1 => TenantQuotaKind::ResidentBytes {
                    needed: r.u64()? as usize,
                    in_use: r.u64()? as usize,
                    limit: r.u64()? as usize,
                },
                _ => return Err(bad("unknown tenant quota tag")),
            },
        },
        _ => return Err(bad("unknown error tag")),
    })
}

/// Decodes the first complete frame in `buf`.
///
/// Returns `Ok(Some((frame, consumed)))` when a whole frame was present
/// (`consumed` bytes should be drained from the buffer), `Ok(None)` when
/// more bytes are needed, and a typed [`WireError`] when the bytes can
/// never become a valid frame (the caller should tear the connection
/// down — resynchronising inside a corrupt byte stream is guesswork).
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0..2] != MAGIC {
        return Err(WireError::BadMagic {
            found: [buf[0], buf[1]],
        });
    }
    if buf[2] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: buf[2] });
    }
    let frame_type = buf[3];
    let payload_len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if payload_len > max_payload {
        return Err(WireError::Oversized {
            len: payload_len,
            max: max_payload,
        });
    }
    let total = HEADER_LEN + payload_len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let mut r = Reader::new(&buf[HEADER_LEN..total]);
    let frame = match frame_type {
        0x01 => Frame::Hello {
            tenant: if r.bool()? { Some(r.string()?) } else { None },
        },
        0x02 => Frame::Submit(SubmitSpec {
            larger: r.u32()?,
            smaller: r.u32()?,
            project_larger: r.u32()?,
            project_smaller: r.u32()?,
            budget_bytes: r.opt_u64()?,
            threads: r.opt_u32()?,
            codes: if r.bool()? {
                let first_side = match r.u8()? {
                    0 => ProjectionCode::Unsorted,
                    1 => ProjectionCode::Sorted,
                    2 => ProjectionCode::PartialCluster,
                    _ => {
                        return Err(WireError::BadPayload {
                            detail: "unknown first-side code",
                        })
                    }
                };
                let second_side = match r.u8()? {
                    0 => SecondSideCode::Unsorted,
                    1 => SecondSideCode::Decluster,
                    _ => {
                        return Err(WireError::BadPayload {
                            detail: "unknown second-side code",
                        })
                    }
                };
                Some(DsmPostProjection::with_codes(first_side, second_side))
            } else {
                None
            },
            deadline_ns: r.opt_u64()?,
            priority: r.u32()?,
        }),
        0x03 => Frame::Poll { ticket: r.u64()? },
        0x04 => Frame::Cancel { ticket: r.u64()? },
        0x81 => Frame::HelloOk {
            version: r.u8()?,
            tenant: r.opt_u32()?,
        },
        0x82 => Frame::Submitted { ticket: r.u64()? },
        0x83 => Frame::Queued {
            ticket: r.u64()?,
            position: r.u64()?,
        },
        0x84 => Frame::Chunk {
            ticket: r.u64()?,
            chunks: r.u64()?,
            rows: r.u64()?,
        },
        0x85 => {
            let ticket = r.u64()?;
            let rows = r.u64()?;
            let chunks = r.u64()?;
            let cache_hit = r.bool()?;
            let share_bytes = r.u64()?;
            let ncols = r.u16()? as usize;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let len = r.u32()? as usize;
                let bytes = r.take(len.checked_mul(4).ok_or(WireError::BadPayload {
                    detail: "column length overflow",
                })?)?;
                columns.push(
                    bytes
                        .chunks_exact(4)
                        .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                        .collect(),
                );
            }
            Frame::Done {
                ticket,
                report: WireReport {
                    rows,
                    chunks,
                    cache_hit,
                    share_bytes,
                    columns,
                },
            }
        }
        0x86 => Frame::Rejected {
            ticket: r.u64()?,
            error: read_error(&mut r)?,
        },
        0x87 => Frame::CancelResult {
            ticket: r.u64()?,
            cancelled: r.bool()?,
        },
        0x88 => Frame::ProtocolError {
            detail: r.string()?,
        },
        found => return Err(WireError::UnknownFrameType { found }),
    };
    r.finish()?;
    Ok(Some((frame, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let (decoded, consumed) = decode_frame(&buf, DEFAULT_MAX_PAYLOAD)
            .expect("valid frame")
            .expect("complete frame");
        assert_eq!(consumed, buf.len(), "consumes exactly one frame");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn every_frame_round_trips() {
        round_trip(Frame::Hello { tenant: None });
        round_trip(Frame::Hello {
            tenant: Some("acme".into()),
        });
        round_trip(Frame::Submit(SubmitSpec {
            larger: 3,
            smaller: 4,
            project_larger: 2,
            project_smaller: 1,
            budget_bytes: Some(4096),
            threads: Some(2),
            codes: Some(DsmPostProjection::with_codes(
                ProjectionCode::PartialCluster,
                SecondSideCode::Decluster,
            )),
            deadline_ns: Some(1_000_000),
            priority: 3,
        }));
        round_trip(Frame::Submit(SubmitSpec {
            larger: 0,
            smaller: 1,
            project_larger: 1,
            project_smaller: 1,
            budget_bytes: None,
            threads: None,
            codes: None,
            deadline_ns: None,
            priority: 1,
        }));
        round_trip(Frame::Poll { ticket: 77 });
        round_trip(Frame::Cancel { ticket: u64::MAX });
        round_trip(Frame::HelloOk {
            version: WIRE_VERSION,
            tenant: Some(9),
        });
        round_trip(Frame::Submitted { ticket: 12 });
        round_trip(Frame::Queued {
            ticket: 12,
            position: 4,
        });
        round_trip(Frame::Chunk {
            ticket: 12,
            chunks: 8,
            rows: 640,
        });
        round_trip(Frame::Done {
            ticket: 12,
            report: WireReport {
                rows: 3,
                chunks: 2,
                cache_hit: true,
                share_bytes: 512,
                columns: vec![vec![1, -2, 3], vec![i32::MIN, 0, i32::MAX]],
            },
        });
        round_trip(Frame::CancelResult {
            ticket: 12,
            cancelled: false,
        });
        round_trip(Frame::ProtocolError {
            detail: "bad frame magic".into(),
        });
    }

    #[test]
    fn every_error_variant_round_trips() {
        let errors = [
            RdxError::Budget(BudgetError::ZeroBytes),
            RdxError::Budget(BudgetError::BelowOneRow {
                budget_bytes: 7,
                bytes_per_row: 16,
            }),
            RdxError::UnknownRelation { id: 42 },
            RdxError::TooManyColumns {
                side: Side::Smaller,
                requested: 9,
                available: 2,
            },
            RdxError::SelectionMismatch {
                selection_base: 100,
                base_cardinality: 50,
            },
            RdxError::UnknownTicket { ticket: 5 },
            RdxError::Deadline(DeadlineError::Infeasible {
                predicted_ns: 10,
                deadline_ns: 5,
            }),
            RdxError::Deadline(DeadlineError::Exceeded {
                consumed_ns: 11,
                deadline_ns: 10,
            }),
            RdxError::Cancelled,
            RdxError::WorkerPanicked { worker: 3 },
            RdxError::TenantQuota {
                tenant: 2,
                kind: TenantQuotaKind::InFlight {
                    in_flight: 3,
                    limit: 3,
                },
            },
            RdxError::TenantQuota {
                tenant: 2,
                kind: TenantQuotaKind::ResidentBytes {
                    needed: 16,
                    in_use: 120,
                    limit: 128,
                },
            },
        ];
        for error in errors {
            round_trip(Frame::Rejected { ticket: 1, error });
        }
    }

    #[test]
    fn incomplete_buffers_ask_for_more_bytes() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Poll { ticket: 9 }, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut], DEFAULT_MAX_PAYLOAD),
                Ok(None),
                "prefix of {cut} bytes must be incomplete, not malformed"
            );
        }
    }

    #[test]
    fn two_frames_in_one_buffer_decode_in_order() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Poll { ticket: 1 }, &mut buf);
        encode_frame(&Frame::Cancel { ticket: 2 }, &mut buf);
        let (first, used) = decode_frame(&buf, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(first, Frame::Poll { ticket: 1 });
        let (second, used2) = decode_frame(&buf[used..], DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(second, Frame::Cancel { ticket: 2 });
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn malformed_frames_fail_with_typed_errors() {
        // Wrong magic.
        let bad_magic = [b'X', b'Y', WIRE_VERSION, 0x03, 8, 0, 0, 0];
        assert!(matches!(
            decode_frame(&bad_magic, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadMagic {
                found: [b'X', b'Y']
            })
        ));
        // Future version.
        let future = [MAGIC[0], MAGIC[1], 99, 0x03, 8, 0, 0, 0];
        assert!(matches!(
            decode_frame(&future, DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnsupportedVersion { found: 99 })
        ));
        // Unknown type byte (with its declared payload present).
        let mut unknown = vec![MAGIC[0], MAGIC[1], WIRE_VERSION, 0x7E, 1, 0, 0, 0];
        unknown.push(0);
        assert!(matches!(
            decode_frame(&unknown, DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnknownFrameType { found: 0x7E })
        ));
        // Oversized payload is refused from the header alone.
        let oversized = [MAGIC[0], MAGIC[1], WIRE_VERSION, 0x03, 255, 255, 255, 255];
        assert!(matches!(
            decode_frame(&oversized, 1024),
            Err(WireError::Oversized { max: 1024, .. })
        ));
        // Truncated-inside-payload: declared length is shorter than the
        // fields the type needs.
        let mut short = Vec::new();
        encode_frame(&Frame::Poll { ticket: 3 }, &mut short);
        short[4] = 4; // lie: 4-byte payload for an 8-byte field
        short.truncate(HEADER_LEN + 4);
        assert!(matches!(
            decode_frame(&short, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadPayload { .. })
        ));
        // Trailing garbage after a valid payload.
        let mut trailing = Vec::new();
        encode_frame(&Frame::Poll { ticket: 3 }, &mut trailing);
        let len = (trailing.len() - HEADER_LEN + 1) as u32;
        trailing[4..8].copy_from_slice(&len.to_le_bytes());
        trailing.push(0xAB);
        assert!(matches!(
            decode_frame(&trailing, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadPayload {
                detail: "trailing bytes after payload"
            })
        ));
        // Display stays human-readable (the teardown notice quotes it).
        let e = WireError::Oversized { len: 9, max: 4 };
        assert_eq!(e.to_string(), "frame payload of 9 B exceeds the 4 B cap");
    }
}
