//! `rdx-net`: a std-only socket front-end for the `rdx-serve` query
//! engine — no async runtime, no external dependencies.
//!
//! Three layers, separately testable:
//!
//! - [`wire`] — the pure codec: a versioned, length-prefixed binary frame
//!   format ([`Frame`], [`encode_frame`], [`decode_frame`]) whose server
//!   frames mirror the engine's `TicketStatus` exactly, and whose
//!   `Rejected` frame carries the workspace-wide
//!   [`rdx_core::error::RdxError`] losslessly.  Byte-in/byte-out total
//!   functions: incomplete input asks for more, malformed input fails
//!   with a typed [`WireError`], nothing panics on untrusted bytes.
//! - [`server`] — [`NetServer`]: one thread multiplexing a non-blocking
//!   listener (TCP or unix-domain via [`NetListener`]), every
//!   connection's buffers, and [`rdx_serve::QueryEngine::step`].
//!   Per-connection bounded outbound queues give backpressure that never
//!   blocks the engine; protocol violations tear down one connection,
//!   never the server.
//! - [`client`] — [`NetClient`]: a small blocking client for tests,
//!   examples, and other processes.
//!
//! The result columns ride the wire in full, so a networked query is
//! byte-identical to the same query run in-process — the conformance
//! suite (`tests/net_conformance.rs` at the workspace root) holds the
//! two paths equal over the full parameter grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientError, NetClient};
pub use server::{NetConfig, NetListener, NetServer, NetStats, NetStream, NO_TICKET};
pub use wire::{
    decode_frame, encode_frame, Frame, SubmitSpec, WireError, WireReport, DEFAULT_MAX_PAYLOAD,
    HEADER_LEN, MAGIC, WIRE_VERSION,
};
