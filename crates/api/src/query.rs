//! The fluent [`Query`] builder and its three execution modes.

use crate::ticket::Ticket;
use crate::Session;
use rdx_core::budget::MemoryBudget;
use rdx_core::error::RdxError;
use rdx_core::fault::RetryPolicy;
use rdx_core::strategy::{
    AdaptivePolicy, DsmPostProjection, MaterializeSink, QuerySpec, RowChunkSink,
};
use rdx_serve::{QueryResult, QueryStats, RelationId, ServerRequest, TenantId};

/// A projection query under construction:
/// `session.query(larger, smaller).project(spec).budget(b).threads(t)`
/// followed by exactly one execution mode.
///
/// All modes resolve through **one planner entry**
/// ([`rdx_serve::QueryEngine::resolve`]): validation, cost-based code
/// planning at the session's shared cache share, clustered-prefix cache
/// lookup and scratch warm-up are identical whichever mode finishes the
/// sentence — which is what makes their outputs byte-identical by
/// construction.
///
/// * [`Query::run`] — execute now, materialise the whole result.
/// * [`Query::stream`] — execute now, emit budget-sized chunks into a
///   caller-provided [`RowChunkSink`].
/// * [`Query::submit`] — enqueue into the serve scheduler and return a
///   non-blocking [`Ticket`] immediately.
#[must_use = "a query does nothing until run(), stream(..) or submit()"]
pub struct Query<'s> {
    session: &'s mut Session,
    request: ServerRequest,
}

impl<'s> Query<'s> {
    pub(crate) fn new(session: &'s mut Session, larger: RelationId, smaller: RelationId) -> Self {
        Query {
            session,
            request: ServerRequest::new(larger, smaller, QuerySpec::symmetric(1)),
        }
    }

    /// Sets how many columns to project from each side (defaults to one
    /// from each).
    pub fn project(mut self, spec: QuerySpec) -> Self {
        self.request.spec = spec;
        self
    }

    /// Caps this query's resident working set at `budget`.  For `run` /
    /// `stream` this is the execution budget (default: the global budget's
    /// *uncommitted residual*, so a direct run can never over-commit past
    /// the grants of tickets still in flight); for `submit` it tightens the
    /// admission grant (a hint can only shrink the share, never grow it).
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.request = self.request.with_budget_hint(budget);
        self
    }

    /// Runs this query's chunks on `threads` morsel workers (0 =
    /// auto-detect; default: the session's `threads_per_query`).  Threads
    /// change only scheduling, never bytes.
    pub fn threads(mut self, threads: usize) -> Self {
        self.request = self.request.with_threads(threads);
        self
    }

    /// Pins the projection codes instead of cost-based planning — how the
    /// conformance grid drives every `u/s/c × u/d` cell through the one
    /// planner entry.
    pub fn codes(mut self, codes: DsmPostProjection) -> Self {
        self.request = self.request.with_codes(codes);
        self
    }

    /// Arms **runtime-adaptive chunk re-tuning** under `policy` (default
    /// off): after every emitted chunk the pipeline compares observed
    /// wall-clock against the cost model's per-chunk prediction and, when
    /// the EWMA leaves the policy's hysteresis band, re-plans the remaining
    /// rows — tighter chunks when slower than predicted, back toward the
    /// full share when faster.  Adaptation moves only chunk boundaries,
    /// never bytes, so results are unaffected; re-plans show up in
    /// [`QueryStats::adaptive_replans`] and as `Replan` trace events.
    pub fn adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.request = self.request.with_adaptive(policy);
        self
    }

    /// Arms **cache-truth profiling** (default off): every emitted chunk's
    /// memory-access pattern is replayed through the session's simulated
    /// cache hierarchy, recording per-phase spans, per-chunk miss counts
    /// (`profile.*` metrics) and `ChunkProfile` trace events — deterministic
    /// numbers that survive any container, unlike wall-clock.  Combined with
    /// [`Query::adaptive`], the controller is fed simulated stall time
    /// instead of wall-clock.  Output stays byte-identical by construction;
    /// requires the session's observability to be on to take effect.
    pub fn profiled(mut self) -> Self {
        self.request = self.request.with_profiled();
        self
    }

    /// Gives this query a **deadline**: at most `deadline_ns` nanoseconds
    /// of service time from admission.  Two enforcement points, both
    /// deterministic in what they decide (only *when* wall-clock trips the
    /// second varies):
    ///
    /// 1. **Admission** — the Appendix-A cost model predicts the streaming
    ///    cost at this query's cache share; an infeasible deadline is
    ///    rejected with [`rdx_core::error::DeadlineError::Infeasible`]
    ///    *before a single chunk runs*, so a doomed query never holds a
    ///    grant.
    /// 2. **Chunk boundaries** — consumed service time (chunk wall-clock
    ///    plus any injected slowdowns) is checked between chunk steps; an
    ///    overrun tears the run down with
    ///    [`rdx_core::error::DeadlineError::Exceeded`] and reclaims its
    ///    grant.
    ///
    /// Admitted deadline queries also run *sooner*: remaining slack scales
    /// the stride-scheduler weight (EDF-flavored), so tight deadlines win
    /// more dispatches without starving the rest.  Deadline failures are
    /// never retried — the clock that rejected them keeps running.
    pub fn deadline(mut self, deadline_ns: u64) -> Self {
        self.request = self.request.with_deadline(deadline_ns);
        self
    }

    /// Sets scheduling **priority** (default 1; 0 is treated as 1).
    /// Priority divides the stride weight: priority 4 is dispatched four
    /// times as often as priority 1, on top of any deadline urgency.
    pub fn priority(mut self, priority: u32) -> Self {
        self.request = self.request.with_priority(priority);
        self
    }

    /// Bills this query to a tenant (interned via [`Session::tenant_id`]):
    /// submission is admitted against that tenant's
    /// [`rdx_serve::TenantQuota`] — in-flight cap and resident-byte cap —
    /// *before* the global budget, and its admissions/rejections show up
    /// in the tenant's `engine.tenant.*` metrics.  Tags change admission
    /// and accounting only, never result bytes.
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.request = self.request.with_tenant(tenant);
        self
    }

    /// Arms a capped **retry policy** for submitted queries: a
    /// budget-rejected or worker-panicked attempt is re-queued after a
    /// deterministic backoff measured in [`Session::drive`] steps (doubling
    /// per attempt), up to [`RetryPolicy::max_retries`] times.  Deadline
    /// failures and below-floor budget hints are permanent and never
    /// retried.  Only [`Query::submit`] consults the policy — `run` /
    /// `stream` surface their first error.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.request = self.request.with_retry(policy);
        self
    }

    /// **One-shot materialise**: resolves, streams every chunk into a
    /// [`MaterializeSink`] and returns the full result with its
    /// statistics — the front-door replacement for
    /// `DsmPostProjection::execute` and `par_dsm_post_projection`.
    pub fn run(self) -> Result<QueryResult, RdxError> {
        let engine = self.session.engine();
        let mut resolved = engine.resolve_direct(&self.request)?;
        let mut sink = MaterializeSink::new();
        resolved.run_to_completion(&mut sink);
        let stats = engine.retire(resolved);
        Ok(QueryResult {
            result: sink.into_result(),
            stats,
        })
    }

    /// **Chunked execution**: resolves and emits the result through `sink`
    /// in budget-sized chunks, returning the statistics — the front-door
    /// replacement for `ProjectionPipeline::execute`.  The sink sees the
    /// exact `begin`/`emit`/`finish` protocol of
    /// [`rdx_core::strategy::RowChunkSink`].
    pub fn stream(self, sink: &mut dyn RowChunkSink) -> Result<QueryStats, RdxError> {
        let engine = self.session.engine();
        let mut resolved = engine.resolve_direct(&self.request)?;
        resolved.run_to_completion(sink);
        Ok(engine.retire(resolved))
    }

    /// **Non-blocking submission**: enqueues into the serve scheduler and
    /// returns a [`Ticket`] immediately — never runs a chunk, so it is safe
    /// between chunk steps of in-flight queries.  Validation and admission
    /// failures surface through [`Ticket::poll`] as
    /// [`crate::QueryPoll::Rejected`]; progress requires
    /// [`Session::drive`].
    pub fn submit(self) -> Ticket {
        Ticket::new(self.session.engine().submit(self.request))
    }
}
