//! # rdx-api — one front door
//!
//! Four PRs of growth left the workspace with four disjoint entry points —
//! `DsmPostProjection::plan/execute` in `rdx-core`, the parallel executors
//! in `rdx-exec`, the streaming `ProjectionPipeline`/`PipelineRun`, and
//! `RdxServer::run_batch` in `rdx-serve` — each with its own config plumbing
//! and its own error conventions.  This crate is the single public surface
//! that replaces all of them:
//!
//! * a [`Session`] owns the catalog, the shared [`CacheParams`], the global
//!   [`MemoryBudget`], the clustered-join-index cache and the scratch pools;
//! * a fluent [`Query`] builder
//!   (`session.query(larger, smaller).project(spec).budget(b).threads(t)`)
//!   resolves through **one planner entry**
//!   ([`rdx_serve::QueryEngine::resolve`]) to any execution mode:
//!   [`Query::run`] (one-shot materialise), [`Query::stream`] (chunked into
//!   a caller sink), or [`Query::submit`] (enqueue into the serve
//!   scheduler);
//! * [`Query::submit`] returns a **non-blocking [`Ticket`]** whose
//!   [`Ticket::poll`] reports [`QueryPoll::Queued`],
//!   [`QueryPoll::Chunk`]`(progress)`, [`QueryPoll::Done`]`(report)` or
//!   [`QueryPoll::Rejected`]`(RdxError)`, and [`Session::drive`] pumps the
//!   stride scheduler a bounded number of chunk-steps per call.
//!
//! Every fallible path reports the workspace-wide [`RdxError`].
//!
//! ## The `Ticket` state machine
//!
//! ```text
//!              ┌─────────────────────────── Rejected(RdxError) ◄─┐
//!              ▼                                                 │ (validation /
//! submit() ─► Queued ──admit──► Chunk{..} ──last chunk──► Done(report)
//!              FIFO              progress                  taken exactly once
//! ```
//!
//! A ticket moves strictly left to right; polls never block and never run
//! chunks.  `Queued` tickets wait in FIFO admission order under the global
//! memory budget; `Chunk` carries live progress (chunks/rows emitted so
//! far); the terminal states are delivered **exactly once** — the first
//! poll that observes completion takes the parked report (or error) with
//! it, and any later poll of the same ticket reports
//! [`RdxError::UnknownTicket`].  Work only happens inside
//! [`Session::drive`] (or the blocking [`Query::run`]/[`Query::stream`]
//! modes): `submit` and `poll` are safe to call between chunk steps of any
//! in-flight query, which is exactly the surface an async network front
//! needs — accept and observe queries while a batch is in flight, without
//! touching the executors.
//!
//! ## Quickstart
//!
//! ```
//! use rdx_api::{QueryPoll, Session};
//! use rdx_core::strategy::QuerySpec;
//! use rdx_workload::JoinWorkloadBuilder;
//!
//! let mut session = Session::default();
//! let w = JoinWorkloadBuilder::equal(2_000, 2).seed(1).build();
//! let larger = session.register(w.larger.clone());
//! let smaller = session.register(w.smaller.clone());
//!
//! // One-shot: plan, execute, materialise.
//! let report = session
//!     .query(larger, smaller)
//!     .project(QuerySpec::symmetric(2))
//!     .run()
//!     .unwrap();
//! assert_eq!(report.result.cardinality(), w.expected_matches);
//!
//! // Non-blocking: submit, drive, poll.
//! let ticket = session
//!     .query(larger, smaller)
//!     .project(QuerySpec::symmetric(1))
//!     .submit();
//! while session.drive(8) > 0 {}
//! match ticket.poll(&mut session) {
//!     QueryPoll::Done(report) => assert_eq!(report.stats.rows, w.expected_matches),
//!     other => panic!("expected Done, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod query;
mod session;
mod ticket;

pub use query::Query;
pub use session::Session;
pub use ticket::{ChunkProgress, QueryPoll, Ticket};

// The session vocabulary, re-exported so `rdx_api` alone is a complete
// front door.
pub use rdx_cache::CacheParams;
pub use rdx_core::budget::{BudgetError, MemoryBudget};
pub use rdx_core::error::{DeadlineError, RdxError, Side};
pub use rdx_core::fault::{FaultAction, FaultInjector, FaultPlan, RetryPolicy};
pub use rdx_core::strategy::{PhaseTimings, QuerySpec, RowChunkSink};
pub use rdx_obs::{
    EventKind, HistogramSnapshot, MetricValue, MetricsSnapshot, QueryId, TraceEvent, TraceSnapshot,
};
pub use rdx_serve::{
    CacheStats, Catalog, FairnessPolicy, QueryResult, QueryStats, RelationId, ServeConfig, TicketId,
};

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_core::strategy::{
        CountingSink, DsmPostProjection, MaterializeSink, ProjectionCode, SecondSideCode,
    };
    use rdx_dsm::ResultRelation;
    use rdx_workload::JoinWorkloadBuilder;

    fn columns(result: &ResultRelation) -> Vec<Vec<i32>> {
        result
            .columns()
            .iter()
            .map(|c| c.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn run_matches_the_legacy_executor_at_the_same_params() {
        let w = JoinWorkloadBuilder::equal(1_500, 2).seed(41).build();
        let params = CacheParams::tiny_for_tests();
        let mut session = Session::with_params(params.clone());
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(2);
        let report = session
            .query(larger, smaller)
            .project(spec)
            .run()
            .expect("runs");
        // plan_shares = 1: the session planned at exactly `params`, so the
        // legacy executor with the session's chosen codes is byte-identical.
        let legacy = report
            .stats
            .plan
            .execute(&w.larger, &w.smaller, &spec, &params);
        assert_eq!(columns(&report.result), columns(&legacy.result));
        assert_eq!(report.stats.rows, w.expected_matches);
    }

    #[test]
    fn stream_honours_the_budget_and_the_sink_protocol() {
        let w = JoinWorkloadBuilder::equal(2_000, 1).seed(43).build();
        let mut session = Session::with_params(CacheParams::tiny_for_tests());
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        let budget = MemoryBudget::bytes(512);
        let mut sink = CountingSink::new(MaterializeSink::new());
        let stats = session
            .query(larger, smaller)
            .project(QuerySpec::symmetric(1))
            .budget(budget)
            .threads(2)
            .stream(&mut sink)
            .expect("streams");
        assert_eq!(stats.rows, w.expected_matches);
        assert!(stats.chunks > 1, "512 B must chunk 2000 rows");
        assert_eq!(sink.chunks, stats.chunks);
        assert!(stats.peak_chunk_bytes <= 512);
        assert_eq!(stats.share_bytes, 512);
    }

    #[test]
    fn ticket_lifecycle_queued_chunk_done_then_unknown() {
        let w = JoinWorkloadBuilder::equal(1_200, 1).seed(47).build();
        let mut session = Session::new(ServeConfig {
            params: CacheParams::tiny_for_tests(),
            global_budget: MemoryBudget::bytes(256),
            plan_shares: Some(1),
            ..ServeConfig::default()
        });
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        let ticket = session.query(larger, smaller).submit();
        assert!(matches!(ticket.poll(&mut session), QueryPoll::Queued));
        assert_eq!(session.drive(1), 1);
        match ticket.poll(&mut session) {
            QueryPoll::Chunk(p) => {
                assert_eq!(p.chunks, 1);
                assert!(p.rows > 0);
            }
            other => panic!("expected Chunk, got {other:?}"),
        }
        while session.drive(16) > 0 {}
        assert!(session.is_idle());
        match ticket.poll(&mut session) {
            QueryPoll::Done(report) => assert_eq!(report.stats.rows, w.expected_matches),
            other => panic!("expected Done, got {other:?}"),
        }
        // The outcome was taken: the ticket is now unknown.
        match ticket.poll(&mut session) {
            QueryPoll::Rejected(RdxError::UnknownTicket { ticket: id }) => {
                assert_eq!(id, ticket.id().raw())
            }
            other => panic!("expected UnknownTicket, got {other:?}"),
        }
    }

    #[test]
    fn submission_between_drive_steps_joins_the_mix() {
        let w = JoinWorkloadBuilder::equal(2_500, 1).seed(53).build();
        let mut session = Session::new(ServeConfig {
            params: CacheParams::tiny_for_tests(),
            global_budget: MemoryBudget::bytes(8 * 1024),
            plan_shares: Some(1),
            ..ServeConfig::default()
        });
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        let a = session.query(larger, smaller).submit();
        session.drive(3);
        assert!(matches!(a.poll(&mut session), QueryPoll::Chunk(_)));
        // The async-front enabler: a new submission lands while A is
        // mid-flight, and both finish correctly.
        let b = session.query(larger, smaller).submit();
        while session.drive(32) > 0 {}
        let (ra, rb) = match (a.poll(&mut session), b.poll(&mut session)) {
            (QueryPoll::Done(ra), QueryPoll::Done(rb)) => (ra, rb),
            other => panic!("expected two Done, got {other:?}"),
        };
        assert_eq!(columns(&ra.result), columns(&rb.result));
        assert_eq!(ra.stats.rows, w.expected_matches);
    }

    #[test]
    fn invalid_queries_reject_with_typed_errors() {
        let w = JoinWorkloadBuilder::equal(400, 1).seed(59).build();
        let mut session = Session::with_params(CacheParams::tiny_for_tests());
        let smaller = session.register(w.smaller.clone());
        // An id minted by a *different* session: unknown to this catalog.
        let foreign = {
            let mut other = Session::with_params(CacheParams::tiny_for_tests());
            other.register(w.smaller.clone());
            other.register(w.larger.clone())
        };
        let ghost = session.query(foreign, smaller).submit();
        match ghost.poll(&mut session) {
            QueryPoll::Rejected(RdxError::UnknownRelation { id }) => {
                assert_eq!(id, foreign.raw())
            }
            other => panic!("expected UnknownRelation, got {other:?}"),
        }
        let larger = session.register(w.larger.clone());
        let err = session
            .query(larger, smaller)
            .project(QuerySpec::symmetric(9))
            .run()
            .unwrap_err();
        assert!(matches!(err, RdxError::TooManyColumns { .. }));
        let err = session
            .query(larger, smaller)
            .budget(MemoryBudget::bytes(2))
            .run()
            .unwrap_err();
        assert!(matches!(err, RdxError::Budget(_)));
    }

    #[test]
    fn a_ticket_polled_against_the_wrong_session_is_unknown_not_aliased() {
        let w = JoinWorkloadBuilder::equal(500, 1).seed(67).build();
        let mut a = Session::with_params(CacheParams::tiny_for_tests());
        let mut b = Session::with_params(CacheParams::tiny_for_tests());
        let (al, asm) = (a.register(w.larger.clone()), a.register(w.smaller.clone()));
        let (bl, bsm) = (b.register(w.larger.clone()), b.register(w.smaller.clone()));
        let ticket_a = a.query(al, asm).submit();
        let ticket_b = b.query(bl, bsm).submit();
        while a.drive(16) > 0 {}
        while b.drive(16) > 0 {}
        // Ticket ids are process-unique: A's ticket polled against B can
        // never take (and so consume) B's outcome.
        match ticket_a.poll(&mut b) {
            QueryPoll::Rejected(RdxError::UnknownTicket { ticket }) => {
                assert_eq!(ticket, ticket_a.id().raw())
            }
            other => panic!("expected UnknownTicket, got {other:?}"),
        }
        // B's rightful owner still gets its result.
        match ticket_b.poll(&mut b) {
            QueryPoll::Done(report) => assert_eq!(report.stats.rows, w.expected_matches),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn phase_timings_and_wall_clock_surface_through_the_front_door() {
        let w = JoinWorkloadBuilder::equal(1_500, 2).seed(71).build();
        let mut session = Session::with_params(CacheParams::tiny_for_tests());
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());

        // Direct run: the phase breakdown of the work it actually did.
        let report = session
            .query(larger, smaller)
            .project(QuerySpec::symmetric(2))
            .run()
            .expect("runs");
        let t = report.stats.timings;
        assert!(t.join.as_nanos() > 0, "cold run paid the join");
        assert!(t.total() > std::time::Duration::ZERO);
        assert!(report.stats.service > std::time::Duration::ZERO);
        assert_eq!(
            report.stats.total_wall(),
            report.stats.wait + report.stats.service
        );

        // Ticket: queue wait + service + phase breakdown in the Done report.
        let ticket = session
            .query(larger, smaller)
            .project(QuerySpec::symmetric(2))
            .submit();
        while session.drive(16) > 0 {}
        match ticket.poll(&mut session) {
            QueryPoll::Done(done) => {
                assert!(done.stats.cache_hit, "prefix warmed by the direct run");
                // A cache hit never paid the join prefix…
                assert_eq!(done.stats.timings.join, std::time::Duration::ZERO);
                // …but the chunk-loop phases are still accounted.
                assert!(done.stats.timings.total() > std::time::Duration::ZERO);
                assert!(done.stats.total_wall() >= done.stats.service);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn observability_accessors_are_none_when_disabled_and_live_when_enabled() {
        let w = JoinWorkloadBuilder::equal(900, 1).seed(73).build();

        // Default session: no registry, no trace, no query events.
        let off = Session::with_params(CacheParams::tiny_for_tests());
        assert!(!off.observability());
        assert!(off.metrics().is_none());
        assert!(off.trace_snapshot().is_none());

        // Observability on: one ticket's full lifecycle is replayable.
        let mut session = Session::new(ServeConfig {
            params: CacheParams::tiny_for_tests(),
            global_budget: MemoryBudget::bytes(1024),
            plan_shares: Some(1),
            observability: true,
            ..ServeConfig::default()
        });
        assert!(session.observability());
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        let ticket = session.query(larger, smaller).submit();
        while session.drive(16) > 0 {}
        let report = match ticket.poll(&mut session) {
            QueryPoll::Done(report) => report,
            other => panic!("expected Done, got {other:?}"),
        };

        let trace = session.trace_snapshot().expect("enabled");
        let life = trace.events_for(QueryId(report.stats.query_id));
        let labels: Vec<_> = life.iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels[0], "submit");
        assert_eq!(labels[1], "admit");
        assert_eq!(labels[2], "cache_lookup");
        assert_eq!(labels.last(), Some(&"done"));
        let chunk_events = labels.iter().filter(|l| **l == "chunk_step").count();
        assert_eq!(chunk_events, report.stats.chunks);

        let metrics = session.metrics().expect("enabled");
        assert_eq!(metrics.counter("engine.admissions"), Some(1));
        assert_eq!(metrics.counter("engine.cache_misses"), Some(1));
        assert_eq!(
            metrics.counter("engine.chunks_dispatched"),
            // step() returns Some for each chunk plus a final None step.
            Some(report.stats.chunks as u64)
        );
        let h = metrics.histogram("pipeline.chunk_ns").expect("recorded");
        assert_eq!(h.count, report.stats.chunks as u64);
    }

    #[test]
    fn pinned_codes_flow_through_every_mode() {
        let w = JoinWorkloadBuilder::equal(800, 1).seed(61).build();
        let params = CacheParams::tiny_for_tests();
        let mut session = Session::with_params(params.clone());
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        let plan = DsmPostProjection::with_codes(ProjectionCode::Sorted, SecondSideCode::Unsorted);
        let run = session
            .query(larger, smaller)
            .codes(plan)
            .run()
            .expect("runs");
        assert_eq!(run.stats.plan, plan);
        let ticket = session.query(larger, smaller).codes(plan).submit();
        while session.drive(16) > 0 {}
        match ticket.poll(&mut session) {
            QueryPoll::Done(report) => {
                assert_eq!(report.stats.plan, plan);
                assert_eq!(columns(&report.result), columns(&run.result));
                // Same codes + same cluster spec: the second mode hit the
                // prefix cache the first one warmed.
                assert!(report.stats.cache_hit);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }
}
