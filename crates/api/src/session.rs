//! The [`Session`]: owner of everything a stream of queries shares.

use crate::ticket::{ChunkProgress, QueryPoll, Ticket};
use crate::Query;
use rdx_cache::CacheParams;
use rdx_core::error::RdxError;
use rdx_dsm::DsmRelation;
use rdx_net::{NetConfig, NetListener, NetServer, NetStats};
use rdx_obs::{MetricsSnapshot, TraceSnapshot};
use rdx_serve::{
    CacheStats, Catalog, EngineStep, QueryEngine, RelationId, ServeConfig, TenantId, TenantStats,
    TicketStatus,
};
use std::sync::Arc;

/// One front door to the whole workspace: a `Session` owns the relation
/// [`Catalog`], the shared [`CacheParams`] every plan is priced against,
/// the global [`rdx_core::budget::MemoryBudget`] admission splits, the
/// clustered-join-index cache, and the warmed scratch pools — the state the
/// four legacy entry points each plumbed separately.
///
/// Queries start at [`Session::query`] (a fluent builder) and resolve
/// through one planner entry to any execution mode; submitted queries are
/// pumped by [`Session::drive`] and observed with [`Ticket::poll`].
pub struct Session {
    engine: QueryEngine,
}

impl Default for Session {
    /// A session over [`ServeConfig::default`]: the paper's Pentium 4
    /// hierarchy, an unbounded global budget, four admission slots.
    fn default() -> Self {
        Session::new(ServeConfig::default())
    }
}

impl Session {
    /// A session running under `config` (the same knobs as the serving
    /// layer: hierarchy params, global budget, concurrency, fairness,
    /// cache bytes, plan shares).
    ///
    /// # Panics
    /// Panics if `config.max_concurrent == 0`.
    pub fn new(config: ServeConfig) -> Self {
        Session {
            engine: QueryEngine::new(config),
        }
    }

    /// A session over the given hierarchy with every other knob at its
    /// default — and plans priced against the *whole* cache
    /// (`plan_shares = 1`), so single-query sessions plan exactly as the
    /// legacy `DsmPostProjection::plan`-style entry points did at the same
    /// `params`.
    pub fn with_params(params: CacheParams) -> Self {
        Session::new(ServeConfig {
            params,
            plan_shares: Some(1),
            ..ServeConfig::default()
        })
    }

    /// Registers a relation for querying.
    pub fn register(&mut self, relation: DsmRelation) -> RelationId {
        self.engine.register(relation)
    }

    /// Registers an already-shared relation without copying it.
    pub fn register_arc(&mut self, relation: Arc<DsmRelation>) -> RelationId {
        self.engine.register_arc(relation)
    }

    /// Starts a fluent query over the registered pair `(larger, smaller)`,
    /// projecting one column from each side until [`Query::project`] says
    /// otherwise.
    pub fn query(&mut self, larger: RelationId, smaller: RelationId) -> Query<'_> {
        Query::new(self, larger, smaller)
    }

    /// Pumps the stride scheduler for at most `steps` chunk-steps and
    /// returns how many actually ran (0 = the session is drained).  Each
    /// step admits from the FIFO queue while budget and concurrency slots
    /// allow, then runs **one chunk of one query** under the fairness
    /// policy — so a caller alternating `drive` with [`Query::submit`] /
    /// [`Ticket::poll`] gets exactly the bounded-latency loop an async
    /// front needs.
    pub fn drive(&mut self, steps: usize) -> usize {
        let mut ran = 0;
        for _ in 0..steps {
            if self.engine.step() == EngineStep::Idle {
                break;
            }
            ran += 1;
        }
        ran
    }

    /// Where `ticket` is in its state machine (see the crate docs).  The
    /// first poll that observes completion takes the parked outcome with
    /// it; later polls report [`RdxError::UnknownTicket`].
    pub fn poll(&mut self, ticket: &Ticket) -> QueryPoll {
        match self.engine.status(ticket.id()) {
            None => QueryPoll::Rejected(RdxError::UnknownTicket {
                ticket: ticket.id().raw(),
            }),
            Some(TicketStatus::Queued { .. }) => QueryPoll::Queued,
            Some(TicketStatus::Running { chunks, rows }) => {
                QueryPoll::Chunk(ChunkProgress { chunks, rows })
            }
            Some(TicketStatus::Finished) => {
                // Finished status and a parked outcome are written together,
                // so the take always succeeds; report the typed unknown-
                // ticket error rather than trusting that with a panic.
                let Some(outcome) = self.engine.take_outcome(ticket.id()) else {
                    return QueryPoll::Rejected(RdxError::UnknownTicket {
                        ticket: ticket.id().raw(),
                    });
                };
                match outcome.outcome {
                    Ok(report) => QueryPoll::Done(report),
                    Err(e) => QueryPoll::Rejected(e),
                }
            }
        }
    }

    /// Cancels a submitted query wherever it is — queued, parked for
    /// retry, or mid-flight (torn down at the next chunk boundary, its
    /// grant reclaimed immediately).  Returns `true` if the ticket was
    /// live; the cancelled ticket's next poll observes
    /// [`QueryPoll::Rejected`] with [`RdxError::Cancelled`], exactly once.
    /// Already-finished or unknown tickets return `false` untouched.
    pub fn cancel(&mut self, ticket: &Ticket) -> bool {
        self.engine.cancel(ticket.id())
    }

    /// Replaces the session's **fault-injection script** (see
    /// [`rdx_core::fault::FaultPlan`]): scripted worker panics, slowdowns,
    /// grant denials and cache evictions fire at exact `(query ordinal,
    /// chunk step)` points, making every degradation path a pure function
    /// of the plan.  Queries are addressed by 0-based submission ordinal.
    /// The default plan is empty — production sessions never consult it
    /// beyond a per-probe bounds check.
    pub fn inject_faults(&mut self, plan: rdx_core::fault::FaultPlan) {
        self.engine.inject_faults(plan);
    }

    /// Queries waiting for admission.
    pub fn queued(&self) -> usize {
        self.engine.queued()
    }

    /// Queries currently in flight.
    pub fn in_flight(&self) -> usize {
        self.engine.in_flight()
    }

    /// `true` when nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        self.engine.is_idle()
    }

    /// The catalog of registered relations.
    pub fn catalog(&self) -> &Catalog {
        self.engine.catalog()
    }

    /// The per-query cache share plans are priced against.
    pub fn params(&self) -> &CacheParams {
        self.engine.shared_params()
    }

    /// The configuration this session runs under.
    pub fn config(&self) -> &ServeConfig {
        self.engine.config()
    }

    /// Clustered-join-index cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Whether this session records metrics and trace events
    /// ([`ServeConfig::observability`]).
    pub fn observability(&self) -> bool {
        self.engine.obs().is_enabled()
    }

    /// A point-in-time copy of the session's metrics registry — engine
    /// counters and gauges, queue-wait / service-latency histograms, and
    /// the pipeline's `chunk_ns` / `predicted_vs_observed_permille`
    /// distributions.  `None` unless the session was built with
    /// [`ServeConfig::observability`] set.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.engine.obs().metrics_snapshot()
    }

    /// A point-in-time copy of the session's event trace: every query's
    /// lifecycle (submit → admit → cache lookup → chunk steps → done),
    /// keyed by the `query_id` its [`rdx_serve::QueryStats`] reports.
    /// `None` unless the session was built with
    /// [`ServeConfig::observability`] set.
    pub fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        self.engine.obs().trace_snapshot()
    }

    /// Pumps [`Session::drive`] until the session is fully drained
    /// (nothing queued, running, or parked for retry) and returns how many
    /// chunk-steps ran — the blocking tail for a caller that has finished
    /// submitting and just wants every ticket finished.
    pub fn drive_until_idle(&mut self) -> usize {
        let mut ran = 0;
        while self.engine.step() != EngineStep::Idle {
            ran += 1;
        }
        ran
    }

    /// Interns `name` as a [`TenantId`] for tagging submissions with
    /// [`Query::tenant`].  Idempotent: the same name always yields the
    /// same id, and first sight resolves the tenant's quota from
    /// [`ServeConfig::tenant_quotas`].
    pub fn tenant_id(&mut self, name: &str) -> TenantId {
        self.engine.tenant_id(name)
    }

    /// A point-in-time snapshot of one tenant's quota accounting
    /// (in-flight queries, committed bytes, admissions, rejections).
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.engine.tenant_stats(tenant)
    }

    /// Turns this session into a socket server on `listener` and runs it
    /// until every connected client has disconnected and the engine is
    /// drained — the front door to `rdx-net` (see `examples/net_server.rs`).
    /// Register relations *before* calling; the returned [`NetStats`]
    /// summarise the connection lifecycle.
    pub fn serve(self, listener: NetListener) -> NetStats {
        self.serve_with(listener, NetConfig::default())
    }

    /// [`Session::serve`] with explicit poll-loop tuning.
    pub fn serve_with(self, listener: NetListener, config: NetConfig) -> NetStats {
        NetServer::new(listener, self.engine, config).serve()
    }

    /// Turns this session into a [`NetServer`] without running it — for
    /// callers that drive [`NetServer::poll_cycle`] themselves or need the
    /// engine back after serving.
    pub fn into_server(self, listener: NetListener, config: NetConfig) -> NetServer {
        NetServer::new(listener, self.engine, config)
    }

    /// The ticket-granular engine underneath, for callers that need the
    /// serve-layer surface directly.
    pub fn engine_mut(&mut self) -> &mut QueryEngine {
        &mut self.engine
    }

    pub(crate) fn engine(&mut self) -> &mut QueryEngine {
        &mut self.engine
    }
}
