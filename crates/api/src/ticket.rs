//! Non-blocking submission tickets and their poll states.

use crate::Session;
use rdx_core::error::RdxError;
use rdx_serve::{QueryResult, TicketId};

/// A submitted query's handle: cheap, copyable, and inert — polling never
/// blocks and never runs chunks (that is [`Session::drive`]'s job).
///
/// See the crate docs for the state machine; the terminal
/// [`QueryPoll::Done`] / [`QueryPoll::Rejected`] outcome is delivered to
/// exactly one poll, after which the ticket is forgotten and further polls
/// report [`RdxError::UnknownTicket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    id: TicketId,
}

impl Ticket {
    pub(crate) fn new(id: TicketId) -> Self {
        Ticket { id }
    }

    /// The engine-level ticket id.
    pub fn id(&self) -> TicketId {
        self.id
    }

    /// Where this query is right now — sugar for [`Session::poll`].
    pub fn poll(&self, session: &mut Session) -> QueryPoll {
        session.poll(self)
    }

    /// Cancels this query — sugar for [`Session::cancel`].  Queued queries
    /// never run; running queries are torn down at the next chunk boundary
    /// and their grant reclaimed.  The next poll observes
    /// [`RdxError::Cancelled`], exactly once.
    pub fn cancel(&self, session: &mut Session) -> bool {
        session.cancel(self)
    }
}

/// Live progress of an admitted, still-running query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkProgress {
    /// Chunks emitted so far.
    pub chunks: usize,
    /// Result rows emitted so far.
    pub rows: usize,
}

/// What a [`Ticket::poll`] observed.
#[derive(Debug)]
pub enum QueryPoll {
    /// Waiting for admission (FIFO under the global memory budget).
    Queued,
    /// Admitted and progressing chunk by chunk.
    Chunk(ChunkProgress),
    /// Complete: the materialised result and its statistics.  Delivered to
    /// exactly one poll.
    Done(QueryResult),
    /// The query failed (validation, admission, budget) — or the ticket is
    /// unknown / already consumed ([`RdxError::UnknownTicket`]).  Failure
    /// outcomes are likewise delivered once.
    Rejected(RdxError),
}
