//! The **deterministic fault-injection harness**: scripted degradation for
//! the serving stack, in the spirit of
//! [`crate::strategy::adapt::ScriptedFeedback`].
//!
//! Robustness paths — worker panics, deadline misses, admission denials,
//! cache evictions — are the hardest code in a serving system to test,
//! because the events that trigger them are timing- and load-dependent.
//! This module makes every one of them a *pure function of a script*: a
//! [`FaultPlan`] lists actions pinned to exact points (a query's submission
//! ordinal, a chunk-step index), and a [`FaultInjector`] replays the plan as
//! the engine probes it.  Each action fires **exactly once**, at its pinned
//! point, so two runs under the same plan degrade identically — the
//! conformance suite's determinism check is `assert_eq!` over traces, not a
//! flaky sleep.
//!
//! Addressing: `query` is the 0-based **submission ordinal** — the order in
//! which queries entered the engine (ticket submissions and direct resolves
//! both count, and a retried query keeps its ordinal).  `step` is the
//! 0-based index of the chunk *about to run* when the engine probes.
//!
//! [`RetryPolicy`] rides along here because it is the other half of the
//! robustness substrate: a capped retry-with-backoff for budget-rejected
//! and panicked queries, measured in **engine drive steps** — never
//! wall-clock — so recovery is as deterministic as the faults.

/// Capped retry-with-backoff for budget-rejected and worker-panicked
/// queries, measured in engine `drive` steps (deterministic — no clocks).
///
/// After the `k`-th failure (1-based), the query is parked for
/// `backoff_steps << (k - 1)` drive steps (exponential, saturating) and
/// then re-enters the admission queue with its ticket, query id and
/// submission ordinal unchanged.  Once `max_retries` attempts have been
/// consumed, the next failure is final and surfaces through the ticket.
/// Deadline failures are never retried: an infeasible or expired deadline
/// cannot be cured by waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Maximum number of *re*-attempts after the first failure.
    pub max_retries: u32,
    /// Backoff before the first retry, in engine drive steps; doubles per
    /// subsequent retry (saturating).
    pub backoff_steps: u64,
}

impl RetryPolicy {
    /// Retry up to `max_retries` times with a one-step initial backoff.
    pub fn with_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            backoff_steps: 1,
        }
    }

    /// Overrides the initial backoff (in drive steps).
    pub fn backoff(mut self, steps: u64) -> Self {
        self.backoff_steps = steps;
        self
    }

    /// Drive steps to park before retry attempt `attempt` (1-based):
    /// `backoff_steps << (attempt - 1)`, saturating.
    pub fn delay_before(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.backoff_steps.saturating_mul(1u64 << shift)
    }
}

/// One scripted fault, pinned to an exact injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic (as morsel worker `worker` would) instead of running chunk
    /// `step` of query `query` — exercising the engine's unwind-catching
    /// teardown exactly as a real worker panic does.
    WorkerPanic {
        /// Submission ordinal of the target query.
        query: usize,
        /// Chunk-step index at which to panic.
        step: usize,
        /// Worker index the panic is attributed to.
        worker: usize,
    },
    /// Add `add_ns` artificial nanoseconds to the query's deadline clock
    /// after chunk `step` runs — how a test makes a deadline expire at an
    /// exact chunk boundary without sleeping.
    Slowdown {
        /// Submission ordinal of the target query.
        query: usize,
        /// Chunk-step index after which the slowdown is charged.
        step: usize,
        /// Artificial service time, nanoseconds.
        add_ns: u64,
    },
    /// Deny the query's next admission grant (surfaces as the budget
    /// rejection path, so it also exercises [`RetryPolicy`]).
    DenyGrant {
        /// Submission ordinal of the target query.
        query: usize,
    },
    /// Evict the whole clustered-index cache just before the query
    /// resolves, forcing it to rebuild its prepared prefix (a cache miss
    /// at an exact point).
    EvictCache {
        /// Submission ordinal of the target query.
        query: usize,
    },
}

impl FaultAction {
    /// The submission ordinal this action targets.
    pub fn query(&self) -> usize {
        match *self {
            FaultAction::WorkerPanic { query, .. }
            | FaultAction::Slowdown { query, .. }
            | FaultAction::DenyGrant { query }
            | FaultAction::EvictCache { query } => query,
        }
    }
}

/// A script of [`FaultAction`]s — built once, armed on an engine, replayed
/// deterministically by its [`FaultInjector`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends an arbitrary action.
    pub fn with(mut self, action: FaultAction) -> Self {
        self.actions.push(action);
        self
    }

    /// Scripts a worker panic at chunk `step` of query `query`.
    pub fn panic_at(self, query: usize, step: usize, worker: usize) -> Self {
        self.with(FaultAction::WorkerPanic {
            query,
            step,
            worker,
        })
    }

    /// Scripts `add_ns` artificial nanoseconds after chunk `step` of query
    /// `query`.
    pub fn slow_at(self, query: usize, step: usize, add_ns: u64) -> Self {
        self.with(FaultAction::Slowdown {
            query,
            step,
            add_ns,
        })
    }

    /// Scripts one admission denial for query `query` (repeat the action
    /// to deny consecutive retry attempts).
    pub fn deny_grant(self, query: usize) -> Self {
        self.with(FaultAction::DenyGrant { query })
    }

    /// Scripts a full cache eviction right before query `query` resolves.
    pub fn evict_cache(self, query: usize) -> Self {
        self.with(FaultAction::EvictCache { query })
    }

    /// The scripted actions, in script order.
    pub fn actions(&self) -> &[FaultAction] {
        &self.actions
    }

    /// Number of scripted actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Replays a [`FaultPlan`] as the engine probes its injection points.
///
/// Each probe scans the script for the first *unfired* action matching the
/// probe point, marks it fired, and reports it — so every action fires at
/// most once and the injector's behaviour is a pure function of the
/// `(plan, probe sequence)` pair.  Probes never allocate (the fired map is
/// pre-sized at construction), keeping the engine's steady-state chunk loop
/// allocation-free.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired: Vec<bool>,
}

impl FaultInjector {
    /// An injector replaying `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = vec![false; plan.len()];
        FaultInjector { plan, fired }
    }

    /// The script being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Actions fired so far.
    pub fn fired(&self) -> usize {
        self.fired.iter().filter(|&&f| f).count()
    }

    /// `true` once every scripted action has fired.
    pub fn is_exhausted(&self) -> bool {
        self.fired.iter().all(|&f| f)
    }

    fn fire_first(&mut self, matches: impl Fn(&FaultAction) -> bool) -> Option<FaultAction> {
        for (i, action) in self.plan.actions.iter().enumerate() {
            if !self.fired[i] && matches(action) {
                self.fired[i] = true;
                return Some(*action);
            }
        }
        None
    }

    /// Probe at admission: should query `query`'s next grant be denied?
    pub fn deny_grant(&mut self, query: usize) -> bool {
        self.fire_first(|a| matches!(a, FaultAction::DenyGrant { query: q } if *q == query))
            .is_some()
    }

    /// Probe at resolve: should the cluster cache be evicted before query
    /// `query` resolves?
    pub fn evict_cache(&mut self, query: usize) -> bool {
        self.fire_first(|a| matches!(a, FaultAction::EvictCache { query: q } if *q == query))
            .is_some()
    }

    /// Probe before running chunk `step` of query `query`: the worker index
    /// to panic as, if a panic is scripted here.
    pub fn panic_at(&mut self, query: usize, step: usize) -> Option<usize> {
        match self.fire_first(|a| {
            matches!(a, FaultAction::WorkerPanic { query: q, step: s, .. }
                     if *q == query && *s == step)
        }) {
            Some(FaultAction::WorkerPanic { worker, .. }) => Some(worker),
            _ => None,
        }
    }

    /// Probe after running chunk `step` of query `query`: artificial
    /// nanoseconds to charge the deadline clock (0 when nothing is
    /// scripted; consecutive matching actions sum).
    pub fn slowdown_ns(&mut self, query: usize, step: usize) -> u64 {
        let mut total = 0u64;
        while let Some(FaultAction::Slowdown { add_ns, .. }) = self.fire_first(|a| {
            matches!(a, FaultAction::Slowdown { query: q, step: s, .. }
                     if *q == query && *s == step)
        }) {
            total = total.saturating_add(add_ns);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_action_fires_exactly_once_at_its_point() {
        let plan = FaultPlan::new()
            .panic_at(0, 2, 3)
            .slow_at(1, 0, 500)
            .deny_grant(2)
            .evict_cache(0);
        let mut inj = FaultInjector::new(plan.clone());
        assert_eq!(inj.plan(), &plan);
        // Wrong points: nothing fires.
        assert_eq!(inj.panic_at(0, 0), None);
        assert_eq!(inj.panic_at(1, 2), None);
        assert_eq!(inj.slowdown_ns(1, 1), 0);
        assert!(!inj.deny_grant(0));
        assert_eq!(inj.fired(), 0);
        // Exact points fire once…
        assert_eq!(inj.panic_at(0, 2), Some(3));
        assert_eq!(inj.slowdown_ns(1, 0), 500);
        assert!(inj.deny_grant(2));
        assert!(inj.evict_cache(0));
        assert!(inj.is_exhausted());
        // …and never again.
        assert_eq!(inj.panic_at(0, 2), None);
        assert_eq!(inj.slowdown_ns(1, 0), 0);
        assert!(!inj.deny_grant(2));
        assert!(!inj.evict_cache(0));
    }

    #[test]
    fn repeated_actions_fire_one_per_probe_and_slowdowns_sum() {
        let plan = FaultPlan::new()
            .deny_grant(5)
            .deny_grant(5)
            .slow_at(5, 1, 300)
            .slow_at(5, 1, 700);
        let mut inj = FaultInjector::new(plan);
        // Two denials cover two admission attempts, then the query passes.
        assert!(inj.deny_grant(5));
        assert!(inj.deny_grant(5));
        assert!(!inj.deny_grant(5));
        // Two slowdowns at the same point sum into one probe.
        assert_eq!(inj.slowdown_ns(5, 1), 1_000);
        assert_eq!(inj.slowdown_ns(5, 1), 0);
    }

    #[test]
    fn replaying_the_same_plan_is_deterministic() {
        let plan = FaultPlan::new()
            .panic_at(1, 0, 2)
            .deny_grant(0)
            .slow_at(1, 3, 9);
        let drive = |mut inj: FaultInjector| {
            let mut log = Vec::new();
            log.push(format!("deny0={}", inj.deny_grant(0)));
            log.push(format!("panic={:?}", inj.panic_at(1, 0)));
            log.push(format!("slow={}", inj.slowdown_ns(1, 3)));
            log.push(format!("fired={}", inj.fired()));
            log
        };
        assert_eq!(
            drive(FaultInjector::new(plan.clone())),
            drive(FaultInjector::new(plan))
        );
    }

    #[test]
    fn retry_backoff_doubles_and_saturates() {
        let p = RetryPolicy::with_retries(3).backoff(4);
        assert_eq!(p.delay_before(1), 4);
        assert_eq!(p.delay_before(2), 8);
        assert_eq!(p.delay_before(3), 16);
        // Saturates instead of overflowing for absurd attempt counts.
        assert_eq!(
            RetryPolicy::with_retries(99)
                .backoff(u64::MAX)
                .delay_before(7),
            u64::MAX
        );
        assert_eq!(
            RetryPolicy::with_retries(1).backoff(1).delay_before(200),
            1u64 << 63
        );
        // Action accessors cover every variant.
        for (a, q) in [
            (
                FaultAction::WorkerPanic {
                    query: 1,
                    step: 0,
                    worker: 0,
                },
                1,
            ),
            (
                FaultAction::Slowdown {
                    query: 2,
                    step: 0,
                    add_ns: 1,
                },
                2,
            ),
            (FaultAction::DenyGrant { query: 3 }, 3),
            (FaultAction::EvictCache { query: 4 }, 4),
        ] {
            assert_eq!(a.query(), q);
        }
        // An empty plan is inert.
        let empty = FaultInjector::new(FaultPlan::new());
        assert!(empty.plan().is_empty());
        assert_eq!(empty.plan().len(), 0);
        assert!(empty.is_exhausted());
    }
}
