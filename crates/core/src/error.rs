//! The unified error hierarchy of the workspace: every fallible path — from
//! kernel-level budget checks to catalog lookups in the serving layer —
//! reports one [`RdxError`], so callers of the `Session`/`Query` front door
//! (`rdx-api`) match on a single type instead of per-crate error zoos.
//!
//! Layering: this type lives at the bottom of the workspace (everything
//! depends on `rdx-core`), so upper layers attach their failures to it
//! instead of defining their own.  [`BudgetError`] — the PR 2/3 budget
//! diagnosis — is absorbed as the [`RdxError::Budget`] variant; the serving
//! layer's catalog failures are [`RdxError::UnknownRelation`] (raw relation
//! id, since the `RelationId` newtype lives upstream); the strategy
//! executors' former `assert!`/`panic!` validation sites are
//! [`RdxError::TooManyColumns`] and [`RdxError::SelectionMismatch`]; the
//! ticket front reports a consumed or never-issued ticket as
//! [`RdxError::UnknownTicket`].

use crate::budget::BudgetError;

/// Why a query's deadline could not be met.
///
/// Both variants carry the two numbers an operator needs to tell
/// *infeasibility* (the model said no before a single chunk ran) from a
/// *miss* (the engine tore the query down at a chunk boundary after its
/// clock ran out).  All fields are nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeadlineError {
    /// Rejected at admission: the Appendix-A streaming prediction at the
    /// query's granted cache share already exceeds the deadline, so running
    /// it would only waste the grant.  The query never ran a chunk.
    Infeasible {
        /// Predicted total streaming cost at the granted share.
        predicted_ns: u64,
        /// The deadline the request carried.
        deadline_ns: u64,
    },
    /// Torn down mid-flight: the query's consumed service time passed its
    /// deadline, and the engine cancelled it at the next chunk boundary
    /// (reclaiming its budget grant).
    Exceeded {
        /// Service time consumed when the engine enforced the deadline.
        consumed_ns: u64,
        /// The deadline the request carried.
        deadline_ns: u64,
    },
}

impl std::fmt::Display for DeadlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeadlineError::Infeasible {
                predicted_ns,
                deadline_ns,
            } => write!(
                f,
                "infeasible: predicted {predicted_ns}ns exceeds the {deadline_ns}ns deadline"
            ),
            DeadlineError::Exceeded {
                consumed_ns,
                deadline_ns,
            } => write!(
                f,
                "exceeded: consumed {consumed_ns}ns against a {deadline_ns}ns deadline"
            ),
        }
    }
}

impl std::error::Error for DeadlineError {}

/// Which per-tenant quota a query ran into.
///
/// Tenants are named by the interned numeric id the serving layer assigns
/// (the newtype lives upstream, like `RelationId`); both variants carry the
/// numbers an operator needs to size the quota that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantQuotaKind {
    /// The tenant is already running its maximum number of concurrent
    /// queries; admitting one more would exceed the cap.
    InFlight {
        /// Queries the tenant had in flight when this one was refused.
        in_flight: usize,
        /// The tenant's concurrent-query cap.
        limit: usize,
    },
    /// The tenant's resident-byte quota cannot hold even one more result
    /// row on top of what its in-flight queries already have granted.
    ResidentBytes {
        /// Bytes one resident row of this query needs (the admission
        /// floor).
        needed: usize,
        /// Bytes already granted to the tenant's in-flight queries.
        in_use: usize,
        /// The tenant's resident-byte cap.
        limit: usize,
    },
}

impl std::fmt::Display for TenantQuotaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantQuotaKind::InFlight { in_flight, limit } => write!(
                f,
                "in-flight cap: {in_flight} of {limit} concurrent queries already running"
            ),
            TenantQuotaKind::ResidentBytes {
                needed,
                in_use,
                limit,
            } => write!(
                f,
                "resident-byte cap: {needed} more bytes needed with {in_use} of {limit} granted"
            ),
        }
    }
}

impl std::error::Error for TenantQuotaKind {}

/// Which join input an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The larger (probing, first projection) relation.
    Larger,
    /// The smaller (build, second projection) relation.
    Smaller,
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Larger => write!(f, "larger"),
            Side::Smaller => write!(f, "smaller"),
        }
    }
}

/// Every way a projection query can fail, across all layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdxError {
    /// A memory budget is degenerate: zero bytes, or below the one-row
    /// floor of the streaming plan it was meant to bound.
    Budget(BudgetError),
    /// A query named a relation id the catalog has never issued.
    UnknownRelation {
        /// The raw id (`RelationId`'s inner value).
        id: u32,
    },
    /// The query projects more columns than a relation has.
    TooManyColumns {
        /// Which join input is too narrow.
        side: Side,
        /// Columns the spec asked for.
        requested: usize,
        /// Projectable columns the relation actually has (for NSM
        /// relations the join-key attribute is excluded).
        available: usize,
    },
    /// A sparse projection's selection vector does not belong to the base
    /// table it was paired with.
    SelectionMismatch {
        /// Base-table cardinality the selection was built over.
        selection_base: usize,
        /// Cardinality of the base table actually supplied.
        base_cardinality: usize,
    },
    /// A ticket was polled that this session never issued — or whose
    /// outcome was already taken by an earlier poll.
    UnknownTicket {
        /// The raw ticket number.
        ticket: u64,
    },
    /// The query's deadline could not (or can no longer) be met: rejected
    /// at admission as infeasible, or torn down at a chunk boundary after
    /// its service clock ran out.
    Deadline(DeadlineError),
    /// The query was cancelled by its caller; its budget grant was
    /// reclaimed at the next chunk boundary.
    Cancelled,
    /// A morsel-pool worker panicked while running one of this query's
    /// chunks.  Only the owning run is poisoned — concurrent queries
    /// complete unaffected — and the grant is reclaimed.
    WorkerPanicked {
        /// Zero-based index of the worker whose unwind was caught (0 when
        /// the panic could not be attributed to a specific worker).
        worker: usize,
    },
    /// The query was refused at admission because its tenant's quota —
    /// max in-flight queries or max resident grant bytes — could not
    /// accommodate it.  Checked *before* the global budget's
    /// `per_query_share`, so one tenant's burst is shed at its own cap and
    /// never dips into the shared pool.
    TenantQuota {
        /// The interned numeric tenant id (the serving layer's `TenantId`
        /// newtype lives upstream, like `RelationId`).
        tenant: u32,
        /// Which quota fired, with its numbers.
        kind: TenantQuotaKind,
    },
}

impl std::fmt::Display for RdxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdxError::Budget(e) => write!(f, "inadmissible budget: {e}"),
            RdxError::UnknownRelation { id } => write!(f, "unknown relation rel#{id}"),
            RdxError::TooManyColumns {
                side,
                requested,
                available,
            } => write!(
                f,
                "{side} relation has {available} projectable columns, {requested} requested"
            ),
            RdxError::SelectionMismatch {
                selection_base,
                base_cardinality,
            } => write!(
                f,
                "selection over a {selection_base}-row base does not belong to \
                 this {base_cardinality}-row base table"
            ),
            RdxError::UnknownTicket { ticket } => write!(
                f,
                "ticket#{ticket} was never issued by this session (or its \
                 outcome was already taken)"
            ),
            RdxError::Deadline(e) => write!(f, "deadline {e}"),
            RdxError::Cancelled => write!(f, "query cancelled by its caller"),
            RdxError::WorkerPanicked { worker } => {
                write!(f, "worker {worker} panicked while running a chunk")
            }
            RdxError::TenantQuota { tenant, kind } => {
                write!(f, "tenant#{tenant} over quota ({kind})")
            }
        }
    }
}

impl std::error::Error for RdxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RdxError::Budget(e) => Some(e),
            RdxError::Deadline(e) => Some(e),
            RdxError::TenantQuota { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

impl From<BudgetError> for RdxError {
    fn from(e: BudgetError) -> Self {
        RdxError::Budget(e)
    }
}

impl From<DeadlineError> for RdxError {
    fn from(e: DeadlineError) -> Self {
        RdxError::Deadline(e)
    }
}

/// Validates a projection spec against the projectable column counts of the
/// two inputs — the shared guard every strategy executor's `try_` entry
/// runs before touching data (the former `assert!` sites).
pub fn check_projection_widths(
    project_larger: usize,
    larger_available: usize,
    project_smaller: usize,
    smaller_available: usize,
) -> Result<(), RdxError> {
    if project_larger > larger_available {
        return Err(RdxError::TooManyColumns {
            side: Side::Larger,
            requested: project_larger,
            available: larger_available,
        });
    }
    if project_smaller > smaller_available {
        return Err(RdxError::TooManyColumns {
            side: Side::Smaller,
            requested: project_smaller,
            available: smaller_available,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_check_reports_the_offending_side() {
        assert_eq!(check_projection_widths(2, 2, 1, 1), Ok(()));
        assert_eq!(
            check_projection_widths(3, 2, 1, 1),
            Err(RdxError::TooManyColumns {
                side: Side::Larger,
                requested: 3,
                available: 2
            })
        );
        assert_eq!(
            check_projection_widths(0, 0, 9, 4),
            Err(RdxError::TooManyColumns {
                side: Side::Smaller,
                requested: 9,
                available: 4
            })
        );
    }

    #[test]
    fn display_is_readable_and_budget_source_chains() {
        let e = RdxError::from(BudgetError::ZeroBytes);
        assert!(e.to_string().contains("budget"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(RdxError::UnknownRelation { id: 7 }
            .to_string()
            .contains("rel#7"));
        assert!(RdxError::UnknownTicket { ticket: 3 }
            .to_string()
            .contains("ticket#3"));
        let mismatch = RdxError::SelectionMismatch {
            selection_base: 10,
            base_cardinality: 20,
        };
        assert!(mismatch.to_string().contains("10"));
        assert!(std::error::Error::source(&mismatch).is_none());
        assert_eq!(Side::Larger.to_string(), "larger");
        assert_eq!(Side::Smaller.to_string(), "smaller");
    }

    #[test]
    fn robustness_variants_display_and_chain() {
        let infeasible = RdxError::from(DeadlineError::Infeasible {
            predicted_ns: 5_000,
            deadline_ns: 1_000,
        });
        assert!(infeasible.to_string().contains("infeasible"));
        assert!(infeasible.to_string().contains("5000"));
        assert!(std::error::Error::source(&infeasible).is_some());
        let exceeded = RdxError::Deadline(DeadlineError::Exceeded {
            consumed_ns: 9_000,
            deadline_ns: 1_000,
        });
        assert!(exceeded.to_string().contains("exceeded"));
        assert!(RdxError::Cancelled.to_string().contains("cancelled"));
        let panicked = RdxError::WorkerPanicked { worker: 3 };
        assert!(panicked.to_string().contains("worker 3"));
        assert!(std::error::Error::source(&panicked).is_none());
    }

    #[test]
    fn tenant_quota_variants_display_and_chain() {
        let capped = RdxError::TenantQuota {
            tenant: 2,
            kind: TenantQuotaKind::InFlight {
                in_flight: 3,
                limit: 3,
            },
        };
        assert!(capped.to_string().contains("tenant#2"));
        assert!(capped.to_string().contains("3 of 3"));
        assert!(std::error::Error::source(&capped).is_some());
        let starved = RdxError::TenantQuota {
            tenant: 0,
            kind: TenantQuotaKind::ResidentBytes {
                needed: 16,
                in_use: 120,
                limit: 128,
            },
        };
        assert!(starved.to_string().contains("tenant#0"));
        assert!(starved.to_string().contains("120 of 128"));
        assert!(starved.to_string().contains("16 more bytes"));
        // The variant stays Copy + Eq like the rest of the hierarchy.
        let copy = starved;
        assert_eq!(copy, starved);
        assert_ne!(capped, starved);
    }
}
