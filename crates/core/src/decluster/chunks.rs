//! Chunk iteration over a clustered join index — the core of the streaming
//! (memory-budgeted) projection pipeline.
//!
//! Radix-Decluster's input obeys the two §3.2 properties: result positions
//! are a permutation of `0..N` and ascend *within* every cluster.  A direct
//! consequence is that any prefix `[0, end)` of the result is produced by a
//! *prefix of every cluster* — so the result can be emitted in contiguous
//! chunks by keeping one cursor per cluster and advancing each cursor past
//! the tuples whose destination falls inside the current chunk.  Each chunk
//! is then a self-contained miniature Radix-Decluster problem: its per-cluster
//! runs concatenate into a chunk-local clustered input whose rebased result
//! positions are again a permutation (of `0..chunk_len`) that ascends within
//! each run.  The standard kernels ([`super::radix_decluster`],
//! `rdx_exec::par_radix_decluster`) therefore apply unchanged per chunk,
//! and the peak working set shrinks from `O(N)` values to `O(chunk)` values.

use rdx_dsm::Oid;
use std::ops::Range;

/// The per-cluster runs making up one contiguous chunk of the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRuns {
    /// The result rows this chunk covers.
    pub result_range: Range<usize>,
    /// Non-empty ranges of clustered-tuple indices contributing to this
    /// chunk, in cluster order.  Their total length equals
    /// `result_range.len()`.
    pub runs: Vec<Range<usize>>,
}

impl Default for ChunkRuns {
    fn default() -> Self {
        Self::empty()
    }
}

impl ChunkRuns {
    /// An empty chunk, for use as the reusable target of
    /// [`ChunkCursorState::next_chunk_into`].
    pub fn empty() -> Self {
        ChunkRuns {
            result_range: 0..0,
            runs: Vec::new(),
        }
    }

    /// Number of result rows (= clustered tuples) in this chunk.
    pub fn len(&self) -> usize {
        self.result_range.len()
    }

    /// `true` if the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.result_range.is_empty()
    }

    /// Chunk-local cluster borders: prefix sums of the run lengths
    /// (`runs.len() + 1` offsets), in the shape [`super::radix_decluster`]
    /// expects for `bounds`.
    pub fn local_bounds(&self) -> Vec<usize> {
        let mut bounds = Vec::new();
        self.local_bounds_into(&mut bounds);
        bounds
    }

    /// [`ChunkRuns::local_bounds`] into a reused buffer (cleared first):
    /// allocation-free once the buffer has grown to the run count.
    pub fn local_bounds_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(self.runs.len() + 1);
        let mut acc = 0;
        out.push(0);
        for r in &self.runs {
            acc += r.len();
            out.push(acc);
        }
    }

    /// The chunk-local result positions: `positions` restricted to the runs
    /// and rebased by `result_range.start`, a permutation of
    /// `0..self.len()` ascending within every run.
    pub fn rebased_positions(&self, positions: &[Oid]) -> Vec<Oid> {
        let mut out = Vec::new();
        self.rebased_positions_into(positions, &mut out);
        out
    }

    /// [`ChunkRuns::rebased_positions`] into a reused buffer (cleared
    /// first): allocation-free once the buffer has grown to the chunk size.
    pub fn rebased_positions_into(&self, positions: &[Oid], out: &mut Vec<Oid>) {
        let base = self.result_range.start as Oid;
        out.clear();
        out.reserve(self.len());
        for r in &self.runs {
            out.extend(positions[r.clone()].iter().map(|&p| p - base));
        }
    }

    /// Gathers `src` over the runs into a chunk-local contiguous vector
    /// (e.g. the clustered smaller-side oids feeding a positional join).
    pub fn gather<T: Copy>(&self, src: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.gather_into(src, &mut out);
        out
    }

    /// [`ChunkRuns::gather`] into a reused buffer (cleared first):
    /// allocation-free once the buffer has grown to the chunk size.
    pub fn gather_into<T: Copy>(&self, src: &[T], out: &mut Vec<T>) {
        out.clear();
        out.reserve(self.len());
        for r in &self.runs {
            out.extend_from_slice(&src[r.clone()]);
        }
    }

    /// Calls `f(clustered_index)` for every clustered tuple of the chunk, in
    /// run order — the on-demand fetch loop of the streaming pipeline.
    pub fn for_each_index(&self, mut f: impl FnMut(usize)) {
        for r in &self.runs {
            for i in r.clone() {
                f(i);
            }
        }
    }
}

/// The *owned* cursor state of a chunked sweep: per-cluster `(cursor, end)`
/// pairs plus the consumed-row count, with the `positions` slice supplied at
/// every call instead of being borrowed at construction.
///
/// This is what a **resumable** pipeline stores between chunks: because the
/// state does not borrow the clustered index, a paused query (the serving
/// layer parks many of these while other queries run their chunk) is a plain
/// struct with no self-referential lifetime — the positions live in a shared
/// [`crate::cluster::Clustered`] (possibly behind an `Arc` in a cross-query
/// cache) and are passed back in on resume.
#[derive(Debug, Clone)]
pub struct ChunkCursorState {
    /// `(cursor, end)` per original cluster; drained clusters keep
    /// `cursor == end` (order is preserved so chunk-local staging is
    /// deterministic).
    cursors: Vec<(usize, usize)>,
    consumed: usize,
}

impl ChunkCursorState {
    /// Fresh cursors for a clustered index with the given cluster `bounds`
    /// (`H + 1` offsets, as produced by
    /// [`crate::cluster::Clustered::bounds`]).
    pub fn new(bounds: &[usize]) -> Self {
        let cursors = bounds.windows(2).map(|w| (w[0], w[1])).collect();
        ChunkCursorState {
            cursors,
            consumed: 0,
        }
    }

    /// Number of result rows already handed out.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// `true` once all `total` tuples have been handed out.
    pub fn is_done(&self, total: usize) -> bool {
        self.consumed == total
    }

    /// Advances every cluster past the tuples destined for result rows
    /// `< result_end` of `positions` and returns their runs as one chunk.
    /// `result_end` is clamped to `N`; calls must use non-decreasing
    /// `result_end` and the same `positions` slice throughout the sweep.
    pub fn next_chunk(&mut self, positions: &[Oid], result_end: usize) -> ChunkRuns {
        let mut chunk = ChunkRuns::empty();
        self.next_chunk_into(positions, result_end, &mut chunk);
        chunk
    }

    /// [`ChunkCursorState::next_chunk`] into a reused [`ChunkRuns`] (its run
    /// list is cleared first): allocation-free once the run list has grown
    /// to the live-cluster count — what the streaming pipeline's
    /// zero-allocation steady state uses.
    pub fn next_chunk_into(&mut self, positions: &[Oid], result_end: usize, chunk: &mut ChunkRuns) {
        let result_end = result_end.min(positions.len());
        let start = self.consumed;
        let runs = &mut chunk.runs;
        runs.clear();
        for c in &mut self.cursors {
            let (cursor, end) = *c;
            if cursor >= end {
                continue;
            }
            let advance = positions[cursor..end].partition_point(|&p| (p as usize) < result_end);
            if advance > 0 {
                runs.push(cursor..cursor + advance);
                c.0 = cursor + advance;
            }
        }
        let produced: usize = runs.iter().map(|r| r.len()).sum();
        self.consumed += produced;
        debug_assert_eq!(self.consumed, result_end.max(start));
        chunk.result_range = start..self.consumed;
    }
}

/// Per-cluster cursors over a clustered `(…, result_position)` index,
/// yielding [`ChunkRuns`] for successive contiguous chunks of the result —
/// the borrowing convenience wrapper around [`ChunkCursorState`].
///
/// Construction is `O(H)`; each [`ChunkCursors::next_chunk`] advances every
/// live cluster's cursor by binary search (positions ascend within a
/// cluster), so a full sweep costs `O(N + chunks · H · log N)` — the
/// `chunks · H` term is the streaming overhead the cost model prices.
#[derive(Debug)]
pub struct ChunkCursors<'a> {
    positions: &'a [Oid],
    state: ChunkCursorState,
}

impl<'a> ChunkCursors<'a> {
    /// Cursors over a clustered index with the given result `positions` and
    /// cluster `bounds` (`H + 1` offsets, as produced by
    /// [`crate::cluster::Clustered::bounds`]).
    ///
    /// # Panics
    /// Panics if the bounds do not cover `positions`.
    pub fn new(positions: &'a [Oid], bounds: &[usize]) -> Self {
        assert_eq!(
            *bounds.last().unwrap_or(&0),
            positions.len(),
            "cluster borders do not cover the positions"
        );
        ChunkCursors {
            positions,
            state: ChunkCursorState::new(bounds),
        }
    }

    /// Number of result rows already handed out.
    pub fn consumed(&self) -> usize {
        self.state.consumed()
    }

    /// `true` once every tuple has been handed out.
    pub fn is_done(&self) -> bool {
        self.state.is_done(self.positions.len())
    }

    /// Advances every cluster past the tuples destined for result rows
    /// `< result_end` and returns their runs as one chunk.  `result_end` is
    /// clamped to `N`; calls must use non-decreasing `result_end`.
    pub fn next_chunk(&mut self, result_end: usize) -> ChunkRuns {
        self.state.next_chunk(self.positions, result_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{radix_cluster_oids, RadixClusterSpec};
    use crate::decluster::{radix_decluster, validate_inputs};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn clustered_input(n: usize, bits: u32, seed: u64) -> (Vec<i64>, Vec<Oid>, Vec<usize>) {
        let mut smaller: Vec<Oid> = (0..n as Oid).collect();
        smaller.shuffle(&mut StdRng::seed_from_u64(seed));
        let result_positions: Vec<Oid> = (0..n as Oid).collect();
        let clustered = radix_cluster_oids(
            &smaller,
            &result_positions,
            RadixClusterSpec::single_pass(bits),
        );
        let values: Vec<i64> = clustered.keys().iter().map(|&o| o as i64 * 7).collect();
        (
            values,
            clustered.payloads().to_vec(),
            clustered.bounds().to_vec(),
        )
    }

    #[test]
    fn chunks_partition_the_clustered_index() {
        let (_, positions, bounds) = clustered_input(1_000, 4, 1);
        let mut cursors = ChunkCursors::new(&positions, &bounds);
        let mut covered = vec![false; 1_000];
        let mut end = 0;
        while !cursors.is_done() {
            end += 170;
            let chunk = cursors.next_chunk(end);
            for r in &chunk.runs {
                for i in r.clone() {
                    assert!(!covered[i], "clustered tuple {i} in two chunks");
                    covered[i] = true;
                    let p = positions[i] as usize;
                    assert!(chunk.result_range.contains(&p));
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn chunk_local_input_is_a_valid_decluster_problem() {
        let (_, positions, bounds) = clustered_input(2_048, 5, 2);
        let mut cursors = ChunkCursors::new(&positions, &bounds);
        while !cursors.is_done() {
            let chunk = cursors.next_chunk(cursors.consumed() + 300);
            let local = chunk.rebased_positions(&positions);
            assert!(validate_inputs(&local, &chunk.local_bounds()));
        }
    }

    #[test]
    fn chunked_decluster_equals_monolithic() {
        for &(n, bits, chunk_rows) in &[(1usize, 0u32, 1usize), (37, 2, 5), (2_000, 4, 333)] {
            let (values, positions, bounds) = clustered_input(n, bits, n as u64);
            let expected = radix_decluster(&values, &positions, &bounds, 64);
            let mut cursors = ChunkCursors::new(&positions, &bounds);
            let mut out = Vec::with_capacity(n);
            while !cursors.is_done() {
                let chunk = cursors.next_chunk(cursors.consumed() + chunk_rows);
                let local_values = chunk.gather(&values);
                let local_positions = chunk.rebased_positions(&positions);
                out.extend(radix_decluster(
                    &local_values,
                    &local_positions,
                    &chunk.local_bounds(),
                    64,
                ));
            }
            assert_eq!(out, expected, "n={n} bits={bits} chunk={chunk_rows}");
        }
    }

    #[test]
    fn oversized_chunk_is_the_whole_input() {
        let (_, positions, bounds) = clustered_input(100, 3, 9);
        let mut cursors = ChunkCursors::new(&positions, &bounds);
        let chunk = cursors.next_chunk(usize::MAX);
        assert_eq!(chunk.result_range, 0..100);
        assert_eq!(chunk.len(), 100);
        assert!(cursors.is_done());
    }

    #[test]
    fn empty_input_yields_empty_chunks() {
        let positions: Vec<Oid> = vec![];
        let bounds = vec![0];
        let mut cursors = ChunkCursors::new(&positions, &bounds);
        assert!(cursors.is_done());
        let chunk = cursors.next_chunk(10);
        assert!(chunk.is_empty());
        assert!(chunk.runs.is_empty());
    }

    #[test]
    fn owned_cursor_state_matches_borrowing_wrapper() {
        let (_, positions, bounds) = clustered_input(1_024, 4, 17);
        let mut wrapper = ChunkCursors::new(&positions, &bounds);
        let mut state = ChunkCursorState::new(&bounds);
        let mut end = 0;
        while !state.is_done(positions.len()) {
            end += 111;
            // The owned state can be parked and resumed (cloned here to model
            // a pause) and still produces the wrapper's exact chunks.
            let parked = state.clone();
            drop(state);
            state = parked;
            assert_eq!(state.next_chunk(&positions, end), wrapper.next_chunk(end));
            assert_eq!(state.consumed(), wrapper.consumed());
        }
        assert!(wrapper.is_done());
    }

    #[test]
    fn into_variants_match_allocating_ones_across_reuse() {
        let (values, positions, bounds) = clustered_input(2_048, 5, 23);
        let mut state = ChunkCursorState::new(&bounds);
        let mut reused = ChunkRuns::empty();
        let mut reused_state = ChunkCursorState::new(&bounds);
        let (mut oids_buf, mut pos_buf, mut bounds_buf) = (Vec::new(), Vec::new(), Vec::new());
        let mut end = 0;
        while !state.is_done(positions.len()) {
            end += 300;
            let fresh = state.next_chunk(&positions, end);
            reused_state.next_chunk_into(&positions, end, &mut reused);
            assert_eq!(reused, fresh);
            fresh.gather_into(&values, &mut oids_buf);
            assert_eq!(oids_buf, fresh.gather(&values));
            fresh.rebased_positions_into(&positions, &mut pos_buf);
            assert_eq!(pos_buf, fresh.rebased_positions(&positions));
            fresh.local_bounds_into(&mut bounds_buf);
            assert_eq!(bounds_buf, fresh.local_bounds());
        }
        assert!(ChunkRuns::empty().is_empty());
    }

    #[test]
    fn for_each_index_visits_runs_in_order() {
        let chunk = ChunkRuns {
            result_range: 0..5,
            runs: vec![2..4, 7..10],
        };
        let mut seen = Vec::new();
        chunk.for_each_index(|i| seen.push(i));
        assert_eq!(seen, vec![2, 3, 7, 8, 9]);
    }
}
