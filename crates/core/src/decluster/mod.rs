//! Radix-Decluster (paper §3.2, Figs. 5 and 6) — the paper's contribution.
//!
//! Input: projected values in *clustered* order (`CLUST_VALUES`), the final
//! result position of each of them (`CLUST_RESULT`), and the cluster borders
//! (`CLUST_BORDERS`, from `radix_count`).  Output: the values in final result
//! order.
//!
//! The algorithm restricts its random writes to an *insertion window* of
//! `‖W‖` bytes: per window it advances a cursor in every cluster, draining the
//! tuples whose destination falls inside the window, then shifts the window.
//! Sequential bandwidth is used on `CLUST_VALUES`/`CLUST_RESULT`, random
//! access is confined to a cache-resident window — the best of merging
//! (`O(N log H)` CPU) and direct scattering (uncacheable random writes).

pub mod chunks;
pub mod paged;
pub mod traced;
pub mod varsize;

use rdx_cache::CacheParams;
use rdx_dsm::Oid;

/// Picks an insertion-window size: half the (outermost) cache by default,
/// shrunk never below one cache line and never above the cache capacity, and
/// large enough that on average at least [`MIN_TUPLES_PER_CLUSTER_PER_WINDOW`]
/// tuples of every cluster fall into one window (the `w ≥ 32` rule of §4.1).
pub fn choose_window_bytes(value_width: usize, num_clusters: usize, params: &CacheParams) -> usize {
    let cache = params.cache_capacity();
    let line = params.last_level().line_size;
    let preferred = cache / 2;
    let min_for_bandwidth = MIN_TUPLES_PER_CLUSTER_PER_WINDOW * num_clusters * value_width;
    preferred.max(min_for_bandwidth).clamp(line, cache)
}

/// The `w = 32` of §4.1: the average number of tuples that should be drained
/// from each cluster per window to amortise the per-cluster start-up misses.
pub const MIN_TUPLES_PER_CLUSTER_PER_WINDOW: usize = 32;

/// The scalability bound of §4.1/§6: the largest relation (in tuples) that
/// Radix-Decluster can handle while keeping both `w ≥ 32` and `‖W‖ ≤ C`:
/// `|R| ≤ C² / (32 · W̄²)`.
pub fn scalability_limit(value_width: usize, params: &CacheParams) -> usize {
    let c = params.cache_capacity();
    c * c / (MIN_TUPLES_PER_CLUSTER_PER_WINDOW * value_width * value_width)
}

/// Radix-Decluster (Fig. 6): reorders `values` into final result order.
///
/// * `values[i]` — the projected value of clustered tuple `i` (`CLUST_VALUES`);
/// * `result_positions[i]` — where that value belongs in the output
///   (`CLUST_RESULT`); must be a permutation of `0..N` that is ascending
///   within each cluster (the two properties §3.2 proves Radix-Cluster
///   guarantees);
/// * `bounds` — cluster borders, `H + 1` offsets (from clustering or
///   [`crate::cluster::radix_count`]);
/// * `window_bytes` — insertion-window size `‖W‖`.
///
/// # Panics
/// Panics if the slices disagree in length or the borders do not cover the
/// input.  Violations of the two ordering properties are caught by debug
/// assertions (they indicate a bug in the caller's clustering, not bad data).
pub fn radix_decluster<T: Copy + Default>(
    values: &[T],
    result_positions: &[Oid],
    bounds: &[usize],
    window_bytes: usize,
) -> Vec<T> {
    debug_assert!(validate_inputs(result_positions, bounds));
    let mut result = vec![T::default(); values.len()];
    radix_decluster_into(
        values,
        result_positions,
        bounds,
        window_bytes,
        &mut DeclusterScratch::new(),
        &mut result,
    );
    result
}

/// The reusable working memory of a Radix-Decluster sweep: the live-cluster
/// cursor array.  One scratch serves any number of
/// [`radix_decluster_into`] / [`radix_decluster_windows_with_scratch`] calls
/// of any size, so a caller declustering per chunk or per query allocates
/// nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct DeclusterScratch {
    clusters: Vec<(usize, usize)>,
}

impl DeclusterScratch {
    /// An empty scratch; the cursor array grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Radix-Decluster into a caller-provided output slice: no allocation, no
/// zero-fill.  `out` must hold exactly `values.len()` elements; every slot
/// is overwritten (the result positions are a permutation), so its prior
/// contents are irrelevant — which is exactly why the per-call
/// `vec![T::default(); n]` of [`radix_decluster`] is pure waste for callers
/// that hold a reusable buffer.
///
/// Unlike the allocating wrapper, this hot-path entry point does **not**
/// re-validate the two §3.2 ordering properties per call (beyond the length
/// assertions); they are established by the clustering that produced the
/// input and checked by the allocating wrappers' debug assertions.
///
/// # Panics
/// Panics if the slices disagree in length, `out` has the wrong length, or
/// the borders do not cover the input.
pub fn radix_decluster_into<T: Copy>(
    values: &[T],
    result_positions: &[Oid],
    bounds: &[usize],
    window_bytes: usize,
    scratch: &mut DeclusterScratch,
    out: &mut [T],
) {
    let n = values.len();
    assert_eq!(
        result_positions.len(),
        n,
        "values/positions length mismatch"
    );
    assert_eq!(out.len(), n, "output length mismatch");
    assert_eq!(
        *bounds.last().unwrap_or(&0),
        n,
        "cluster borders do not cover the input"
    );
    if n == 0 {
        return;
    }
    let elems = window_elems(window_bytes, std::mem::size_of::<T>());
    let windows = n.div_ceil(elems);
    radix_decluster_windows_with_scratch(
        values,
        result_positions,
        bounds,
        elems,
        0..windows,
        scratch,
        out,
    );
}

/// Number of tuples one insertion window of `window_bytes` holds for values of
/// `value_width` bytes (never zero, even for degenerate window sizes).
#[inline]
pub fn window_elems(window_bytes: usize, value_width: usize) -> usize {
    (window_bytes / value_width.max(1)).max(1)
}

/// The windowed Radix-Decluster kernel: processes only the insertion windows
/// in `window_range` (window `w` covers result positions
/// `[w · window_elems, (w + 1) · window_elems)`), writing into the disjoint
/// output slice `out`, whose first element corresponds to result position
/// `window_range.start · window_elems`.
///
/// Because every write of window `w` lands inside that window's result range,
/// distinct window ranges touch disjoint output regions — this is the entry
/// point the parallel executor (`rdx-exec`) hands one `&mut` output shard per
/// worker.  Calling it with the full `0..ceil(N / window_elems)` range is
/// exactly the sequential [`radix_decluster`].
///
/// # Panics
/// Panics (possibly via slice indexing) if `out` is shorter than the result
/// positions covered by `window_range`, or if the inputs violate the
/// [`radix_decluster`] contract.
#[inline]
pub fn radix_decluster_windows<T: Copy>(
    values: &[T],
    result_positions: &[Oid],
    bounds: &[usize],
    window_elems: usize,
    window_range: std::ops::Range<usize>,
    out: &mut [T],
) {
    radix_decluster_windows_with_scratch(
        values,
        result_positions,
        bounds,
        window_elems,
        window_range,
        &mut DeclusterScratch::new(),
        out,
    );
}

/// [`radix_decluster_windows`] with a caller-provided [`DeclusterScratch`]
/// holding the live-cluster cursor array, so repeated sweeps (per chunk, per
/// query) allocate nothing.  Same contract and byte-identical output.
#[inline]
pub fn radix_decluster_windows_with_scratch<T: Copy>(
    values: &[T],
    result_positions: &[Oid],
    bounds: &[usize],
    window_elems: usize,
    window_range: std::ops::Range<usize>,
    scratch: &mut DeclusterScratch,
    out: &mut [T],
) {
    let base = window_range.start * window_elems;

    // Live clusters as (cursor, end) pairs: cursors pre-advanced (binary
    // search — positions are ascending within a cluster) past every tuple
    // that belongs to an earlier window range; drained clusters are dropped.
    let clusters = &mut scratch.clusters;
    clusters.clear();
    clusters.extend(bounds.windows(2).filter_map(|w| {
        let (s, e) = (w[0], w[1]);
        if s >= e {
            return None;
        }
        let skip = result_positions[s..e].partition_point(|&p| (p as usize) < base);
        if s + skip >= e {
            None
        } else {
            Some((s + skip, e))
        }
    }));
    let mut nclusters = clusters.len();

    let mut window_limit = base + window_elems;
    for _ in window_range {
        if nclusters == 0 {
            break;
        }
        let mut i = 0;
        while i < nclusters {
            loop {
                let (cursor, end) = clusters[i];
                let pos = result_positions[cursor] as usize;
                if pos >= window_limit {
                    i += 1;
                    break;
                }
                out[pos - base] = values[cursor];
                let next = cursor + 1;
                if next >= end {
                    // Delete the drained cluster by swapping in the last live one;
                    // the swapped-in cluster is processed next without advancing `i`.
                    nclusters -= 1;
                    clusters[i] = clusters[nclusters];
                    if i >= nclusters {
                        i += 1;
                    }
                    break;
                }
                clusters[i].0 = next;
            }
        }
        window_limit += window_elems;
    }
}

/// Checks the two §3.2 properties Radix-Decluster relies on:
/// (1) `result_positions` is a permutation of `0..N`;
/// (2) positions are ascending within every cluster.
///
/// Malformed `bounds` (non-ascending, or not covering the positions) are
/// reported as `false` rather than panicking, so callers can use this in
/// assertions that fire with their own message.
pub fn validate_inputs(result_positions: &[Oid], bounds: &[usize]) -> bool {
    let n = result_positions.len();
    let mut seen = vec![false; n];
    for &p in result_positions {
        let p = p as usize;
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    for w in bounds.windows(2) {
        if w[0] > w[1] || w[1] > n {
            return false;
        }
        let cluster = &result_positions[w[0]..w[1]];
        if !cluster.windows(2).all(|x| x[0] < x[1]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{radix_cluster_oids, RadixClusterSpec};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Builds a (values, positions, bounds) triple the way the §3.2 pipeline
    /// does: take a join-result permutation, radix-cluster it, and attach a
    /// value to each clustered tuple.
    fn clustered_input(n: usize, bits: u32, seed: u64) -> (Vec<i64>, Vec<Oid>, Vec<usize>) {
        // `smaller_oids[r]` = which smaller-relation tuple result row r uses.
        let mut smaller_oids: Vec<Oid> = (0..n as Oid).collect();
        smaller_oids.shuffle(&mut StdRng::seed_from_u64(seed));
        // Cluster (smaller_oid, result_position) on the smaller oid — this is
        // the CLUST_SMALLER / CLUST_RESULT construction of Fig. 4.
        let result_positions: Vec<Oid> = (0..n as Oid).collect();
        let clustered = radix_cluster_oids(
            &smaller_oids,
            &result_positions,
            RadixClusterSpec::single_pass(bits),
        );
        // The projected value of a clustered tuple derives from its smaller oid.
        let values: Vec<i64> = clustered.keys().iter().map(|&o| o as i64 * 7).collect();
        let positions = clustered.payloads().to_vec();
        let bounds = clustered.bounds().to_vec();
        (values, positions, bounds)
    }

    #[test]
    fn paper_figure_5_example() {
        // CLUST_RESULT = [3,5,1,4,6,2,0? ] — Fig. 5 uses 6 tuples with result
        // positions [3,5,1,4,6,2] minus… we reproduce the shown 6-tuple case:
        // positions {0..5}, two clusters, ascending within each.
        let values = ['e', 'f', 'g', 'f', 'h', 'e'];
        let positions: Vec<Oid> = vec![1, 2, 3, 0, 4, 5];
        let bounds = vec![0, 3, 6];
        // window of 2 elements
        let out = radix_decluster(
            &values,
            &positions,
            &bounds,
            2 * std::mem::size_of::<char>(),
        );
        assert_eq!(out, vec!['f', 'e', 'f', 'g', 'h', 'e']);
    }

    #[test]
    fn decluster_inverts_clustering_for_any_window() {
        for &n in &[1usize, 2, 17, 1000, 4096] {
            let (values, positions, bounds) = clustered_input(n, 4, n as u64);
            let expected: Vec<i64> = {
                let mut out = vec![0i64; n];
                for (i, &p) in positions.iter().enumerate() {
                    out[p as usize] = values[i];
                }
                out
            };
            for window_bytes in [8usize, 64, 1024, 1 << 20] {
                let got = radix_decluster(&values, &positions, &bounds, window_bytes);
                assert_eq!(got, expected, "n={n} window={window_bytes}");
            }
        }
    }

    #[test]
    fn single_cluster_degenerates_to_scatter() {
        let values = vec![10, 20, 30, 40];
        let positions = vec![2, 0, 3, 1];
        let bounds = vec![0, 4];
        // Positions ascending within the single cluster? They are not — so
        // cluster on 2 bits first like the pipeline would.  Here we instead
        // use a genuinely sorted-within-cluster input.
        let positions_sorted = vec![0, 1, 2, 3];
        let out = radix_decluster(&values, &positions_sorted, &bounds, 4);
        assert_eq!(out, values);
        let _ = positions;
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = radix_decluster(&[], &[], &[0], 1024);
        assert!(out.is_empty());
    }

    #[test]
    fn validate_inputs_detects_violations() {
        // Not a permutation.
        assert!(!validate_inputs(&[0, 0, 2], &[0, 3]));
        // Out of range.
        assert!(!validate_inputs(&[0, 5], &[0, 2]));
        // Not ascending within a cluster.
        assert!(!validate_inputs(&[1, 0, 2, 3], &[0, 2, 4]));
        // A valid clustered permutation.
        assert!(validate_inputs(&[1, 3, 0, 2], &[0, 2, 4]));
        // Malformed borders are reported, not panicked on.
        assert!(!validate_inputs(&[0, 1], &[0, 5]));
        assert!(!validate_inputs(&[0, 1], &[2, 1, 2]));
    }

    #[test]
    fn window_choice_respects_cache_and_bandwidth_bounds() {
        let params = CacheParams::paper_pentium4();
        let w = choose_window_bytes(4, 256, &params);
        assert!(w <= params.cache_capacity());
        assert!(w >= 256 * MIN_TUPLES_PER_CLUSTER_PER_WINDOW * 4 || w == params.cache_capacity());
        assert_eq!(
            choose_window_bytes(4, 8, &params),
            params.cache_capacity() / 2
        );
    }

    #[test]
    fn scalability_limit_matches_paper_examples() {
        let params = CacheParams::paper_pentium4();
        // "the 512KB cache of a Pentium4 Xeon allows to project relations of
        // up to half a billion tuples" (§6), for 4-byte values.
        let limit = scalability_limit(4, &params);
        assert!(limit > 400_000_000 && limit < 600_000_000, "limit {limit}");
    }

    #[test]
    fn decluster_into_reuses_scratch_and_needs_no_default() {
        // A Copy type without Default: `_into` never zero-fills, so the
        // bound is genuinely weaker than the allocating wrapper's.
        #[derive(Debug, Clone, Copy, PartialEq)]
        struct NoDefault(i64);

        let mut scratch = DeclusterScratch::new();
        for &n in &[1usize, 17, 1_000, 4096] {
            let (values, positions, bounds) = clustered_input(n, 4, n as u64);
            let wrapped: Vec<NoDefault> = values.iter().map(|&v| NoDefault(v)).collect();
            let expected = radix_decluster(&values, &positions, &bounds, 256);
            // Deliberately garbage-initialised output: every slot must be
            // overwritten.
            let mut out = vec![NoDefault(i64::MIN); n];
            radix_decluster_into(&wrapped, &positions, &bounds, 256, &mut scratch, &mut out);
            let got: Vec<i64> = out.iter().map(|v| v.0).collect();
            assert_eq!(got, expected, "n={n}");
        }
        // Empty input is a no-op.
        let mut out: [i32; 0] = [];
        radix_decluster_into(&[], &[], &[0], 64, &mut scratch, &mut out);
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn decluster_into_rejects_wrong_output_length() {
        let mut out = vec![0i32; 3];
        radix_decluster_into(
            &[1, 2],
            &[0, 1],
            &[0, 2],
            64,
            &mut DeclusterScratch::new(),
            &mut out,
        );
    }

    #[test]
    fn works_with_wide_value_types() {
        let (values, positions, bounds) = clustered_input(500, 3, 9);
        let wide: Vec<[i64; 4]> = values.iter().map(|&v| [v, v + 1, v + 2, v + 3]).collect();
        let out = radix_decluster(&wide, &positions, &bounds, 1024);
        for (i, &p) in positions.iter().enumerate() {
            assert_eq!(out[p as usize], wide[i]);
        }
    }
}
