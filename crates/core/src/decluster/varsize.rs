//! Radix-Decluster for variable-size values into a contiguous string heap.
//!
//! The §5 / Fig. 12 discussion introduces the three-phase trick (lengths →
//! prefix sums → copy) for declustering variable-size values when the output
//! cannot be addressed "by position".  [`super::paged`] targets buffer-manager
//! pages; this module targets the in-memory case — the output is an ordinary
//! DSM [`VarColumn`] (offset array + byte heap), which is what a MonetDB-style
//! column-at-a-time engine wants as the materialised result column.

use crate::decluster::radix_decluster;
use rdx_dsm::{Oid, VarColumn};

/// Radix-Declusters variable-size values into final result order, producing a
/// [`VarColumn`].
///
/// * `values` — the projected variable-size values in clustered order
///   (`CLUST_VALUES`);
/// * `result_positions` / `bounds` / `window_bytes` — as for
///   [`radix_decluster`].
///
/// Phase 1 reuses the fixed-width Radix-Decluster to bring the value *lengths*
/// into result order; phase 2 turns them into byte offsets with one sequential
/// prefix-sum pass; phase 3 re-runs the decluster traversal copying each
/// value's bytes to its pre-computed offset.  All random access stays within
/// the insertion window, exactly as in the fixed-width case.
pub fn radix_decluster_varsize(
    values: &VarColumn,
    result_positions: &[Oid],
    bounds: &[usize],
    window_bytes: usize,
) -> VarColumn {
    let n = values.len();
    assert_eq!(
        result_positions.len(),
        n,
        "values/positions length mismatch"
    );
    assert_eq!(
        *bounds.last().unwrap_or(&0),
        n,
        "cluster borders do not cover the input"
    );

    // Phase 1: lengths into result order.
    let clustered_lengths: Vec<u32> = (0..n).map(|i| values.value_len(i) as u32).collect();
    let lengths = radix_decluster(&clustered_lengths, result_positions, bounds, window_bytes);

    // Phase 2: prefix sums -> byte offsets of every result value.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    offsets.push(0u32);
    for &len in &lengths {
        acc += len;
        offsets.push(acc);
    }
    let total_bytes = acc as usize;

    // Phase 3: decluster traversal copying bytes to their offsets.
    let mut heap = vec![0u8; total_bytes];
    let mut clusters: Vec<(usize, usize)> = bounds
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|(s, e)| s < e)
        .collect();
    let mut nclusters = clusters.len();
    let window_elems = (window_bytes / 4).max(1);
    let mut window_limit = window_elems;
    while nclusters > 0 {
        let mut i = 0;
        while i < nclusters {
            loop {
                let (cursor, end) = clusters[i];
                let dest = result_positions[cursor] as usize;
                if dest >= window_limit {
                    i += 1;
                    break;
                }
                let start = offsets[dest] as usize;
                let bytes = values.get_bytes(cursor);
                heap[start..start + bytes.len()].copy_from_slice(bytes);
                let next = cursor + 1;
                if next >= end {
                    nclusters -= 1;
                    clusters[i] = clusters[nclusters];
                    if i >= nclusters {
                        i += 1;
                    }
                    break;
                }
                clusters[i].0 = next;
            }
        }
        window_limit += window_elems;
    }

    let mut out = VarColumn::with_capacity(n, total_bytes.checked_div(n).unwrap_or(0));
    for r in 0..n {
        out.push_bytes(&heap[offsets[r] as usize..offsets[r + 1] as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{radix_cluster_oids, RadixClusterSpec};

    fn make_inputs(n: usize, bits: u32) -> (VarColumn, Vec<Oid>, Vec<usize>, Vec<String>) {
        let strings: Vec<String> = (0..n)
            .map(|i| format!("s{i}:{}", "z".repeat(i % 11)))
            .collect();
        let smaller_oids: Vec<Oid> = (0..n as Oid).map(|r| (r * 17 + 5) % n as Oid).collect();
        let result_positions: Vec<Oid> = (0..n as Oid).collect();
        let clustered = radix_cluster_oids(
            &smaller_oids,
            &result_positions,
            RadixClusterSpec::single_pass(bits),
        );
        let mut values = VarColumn::new();
        for &o in clustered.keys() {
            values.push_str(&strings[o as usize]);
        }
        let expected: Vec<String> = smaller_oids
            .iter()
            .map(|&o| strings[o as usize].clone())
            .collect();
        (
            values,
            clustered.payloads().to_vec(),
            clustered.bounds().to_vec(),
            expected,
        )
    }

    #[test]
    fn varsize_decluster_restores_result_order() {
        for &(n, bits, window) in &[(1usize, 0u32, 64usize), (200, 3, 128), (2000, 6, 4096)] {
            let (values, positions, bounds, expected) = make_inputs(n, bits);
            let out = radix_decluster_varsize(&values, &positions, &bounds, window);
            assert_eq!(out.len(), n);
            for (r, exp) in expected.iter().enumerate() {
                assert_eq!(out.get_str(r), exp, "n={n} bits={bits} row {r}");
            }
        }
    }

    #[test]
    fn agrees_with_paged_variant() {
        use crate::decluster::paged::radix_decluster_paged;
        use rdx_nsm::BufferManager;
        let (values, positions, bounds, expected) = make_inputs(500, 4);
        let in_memory = radix_decluster_varsize(&values, &positions, &bounds, 1024);
        let mut bm = BufferManager::new(1024);
        let paged = radix_decluster_paged(&values, &positions, &bounds, 1024, &mut bm);
        for (r, want) in expected.iter().enumerate() {
            assert_eq!(in_memory.get_str(r), want);
            assert_eq!(paged.read(&bm, r, want.len()), want.as_bytes());
        }
    }

    #[test]
    fn empty_input() {
        let out = radix_decluster_varsize(&VarColumn::new(), &[], &[0], 64);
        assert!(out.is_empty());
    }

    #[test]
    fn handles_empty_strings_mixed_with_long_ones() {
        let strings = ["", "aaaa", "", "bb", "cccccccccc", ""];
        let n = strings.len();
        let smaller: Vec<Oid> = vec![5, 3, 1, 0, 4, 2];
        let positions: Vec<Oid> = (0..n as Oid).collect();
        let clustered = radix_cluster_oids(&smaller, &positions, RadixClusterSpec::single_pass(1));
        let mut values = VarColumn::new();
        for &o in clustered.keys() {
            values.push_str(strings[o as usize]);
        }
        let out = radix_decluster_varsize(&values, clustered.payloads(), clustered.bounds(), 8);
        for r in 0..n {
            assert_eq!(out.get_str(r), strings[smaller[r] as usize]);
        }
    }
}
