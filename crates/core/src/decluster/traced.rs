//! Traced Radix-Decluster: replays the algorithm's exact memory access
//! pattern through the `rdx-cache` simulator.
//!
//! This is the substitute for the hardware performance counters the paper uses
//! in Fig. 7a: the same code path as [`super::radix_decluster`], but every
//! array reference is also issued to a [`MemorySystem`], so we obtain L1, L2
//! and TLB miss counts for any insertion-window size and cluster count.

use rdx_cache::{AddressSpace, EventCounts, MemorySystem};
use rdx_dsm::Oid;

/// Runs Radix-Decluster over `values`/`result_positions`/`bounds` while
/// simulating its memory accesses, returning the reordered values and the
/// simulator's event counts.
///
/// `value_width` is the byte width of one projected value (4 for the paper's
/// integer columns); the value array, position array, result array and
/// cluster-border array are laid out in a fresh simulated address space.
pub fn radix_decluster_traced<T: Copy + Default>(
    values: &[T],
    result_positions: &[Oid],
    bounds: &[usize],
    window_bytes: usize,
    mem: &mut MemorySystem,
) -> (Vec<T>, EventCounts) {
    let n = values.len();
    assert_eq!(result_positions.len(), n);
    assert_eq!(*bounds.last().unwrap_or(&0), n);

    let value_width = std::mem::size_of::<T>().max(1);
    let mut space = AddressSpace::new();
    let values_region = space.alloc(n.max(1), value_width);
    let positions_region = space.alloc(n.max(1), 4);
    let result_region = space.alloc(n.max(1), value_width);
    let borders_region = space.alloc(bounds.len().max(1), 8);

    let mut result = vec![T::default(); n];
    if n == 0 {
        return (result, mem.counts());
    }

    let mut clusters: Vec<(usize, usize)> = bounds
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|(s, e)| s < e)
        .collect();
    let mut nclusters = clusters.len();

    let window_elems = (window_bytes / value_width).max(1);
    let mut window_limit = window_elems;

    let before = mem.counts();
    while nclusters > 0 {
        let mut i = 0;
        while i < nclusters {
            // Reading this cluster's border entry (the repeated sequential
            // scan over the start/end array of Fig. 5).
            mem.read(borders_region.addr(i.min(borders_region.elems() - 1)), 8);
            loop {
                let (cursor, end) = clusters[i];
                // Read the destination oid for the tuple under the cursor.
                mem.read(positions_region.addr(cursor), 4);
                let dest = result_positions[cursor] as usize;
                if dest >= window_limit {
                    i += 1;
                    break;
                }
                // Read the value and write it to its final position.
                mem.read(values_region.addr(cursor), value_width);
                mem.write(result_region.addr(dest), value_width);
                result[dest] = values[cursor];
                let next = cursor + 1;
                if next >= end {
                    nclusters -= 1;
                    clusters[i] = clusters[nclusters];
                    if i >= nclusters {
                        i += 1;
                    }
                    break;
                }
                clusters[i].0 = next;
            }
        }
        window_limit += window_elems;
    }

    let after = mem.counts();
    let delta = EventCounts {
        accesses: after.accesses - before.accesses,
        l1_misses: after.l1_misses - before.l1_misses,
        l2_misses: after.l2_misses - before.l2_misses,
        tlb_misses: after.tlb_misses - before.tlb_misses,
    };
    (result, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{radix_cluster_oids, RadixClusterSpec};
    use crate::decluster::radix_decluster;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rdx_cache::CacheParams;

    fn clustered_input(n: usize, bits: u32) -> (Vec<i32>, Vec<Oid>, Vec<usize>) {
        let mut smaller: Vec<Oid> = (0..n as Oid).collect();
        smaller.shuffle(&mut StdRng::seed_from_u64(n as u64));
        let result_pos: Vec<Oid> = (0..n as Oid).collect();
        let c = radix_cluster_oids(&smaller, &result_pos, RadixClusterSpec::single_pass(bits));
        let values: Vec<i32> = c.keys().iter().map(|&o| o as i32).collect();
        (values, c.payloads().to_vec(), c.bounds().to_vec())
    }

    #[test]
    fn traced_result_matches_untraced() {
        let (values, positions, bounds) = clustered_input(5_000, 5);
        let plain = radix_decluster(&values, &positions, &bounds, 4096);
        let mut mem = MemorySystem::new(&CacheParams::paper_pentium4());
        let (traced, counts) = radix_decluster_traced(&values, &positions, &bounds, 4096, &mut mem);
        assert_eq!(plain, traced);
        assert!(counts.accesses > 0);
        assert!(counts.l1_misses > 0);
    }

    #[test]
    fn oversized_window_causes_more_l2_misses_fig7a() {
        // The Fig. 7a knee: once ‖W‖ exceeds the L2 capacity the random writes
        // into the window stop being cache-resident and L2 misses jump.
        let params = CacheParams::tiny_for_tests(); // 8 KB "L2"
        let n = 16_384; // 64 KB of i32 output
        let (values, positions, bounds) = clustered_input(n, 4);

        let mut mem_small = MemorySystem::new(&params);
        let (_, small) =
            radix_decluster_traced(&values, &positions, &bounds, 4 * 1024, &mut mem_small);
        let mut mem_big = MemorySystem::new(&params);
        let (_, big) =
            radix_decluster_traced(&values, &positions, &bounds, 64 * 1024, &mut mem_big);

        assert!(
            big.l2_misses > small.l2_misses * 2,
            "window > cache should thrash L2: {} vs {}",
            big.l2_misses,
            small.l2_misses
        );
    }

    #[test]
    fn tiny_windows_cost_more_tlb_misses_than_tuned_ones() {
        // The other Fig. 7a effect: very small windows re-start every cluster
        // per window, paying per-cluster TLB/line misses over and over.
        let params = CacheParams::tiny_for_tests();
        let n = 16_384;
        let (values, positions, bounds) = clustered_input(n, 6); // 64 clusters > 8 TLB entries

        let mut mem_tiny = MemorySystem::new(&params);
        let (_, tiny) = radix_decluster_traced(&values, &positions, &bounds, 256, &mut mem_tiny);
        let mut mem_good = MemorySystem::new(&params);
        let (_, good) =
            radix_decluster_traced(&values, &positions, &bounds, 4 * 1024, &mut mem_good);

        assert!(
            tiny.tlb_misses > good.tlb_misses,
            "tiny windows should pay more TLB misses: {} vs {}",
            tiny.tlb_misses,
            good.tlb_misses
        );
    }
}
