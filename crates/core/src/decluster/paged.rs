//! The §5 / Fig. 12 variant: Radix-Decluster into buffer-manager pages with
//! variable-size values.
//!
//! A DSM post-projection inside an NSM RDBMS cannot insert "by position" into
//! one contiguous array: the output lives in slotted pages, and values may be
//! variable-size (strings).  Fig. 12 solves this in three phases:
//!
//! 1. run Radix-Decluster, but only record each value's *length* at its result
//!    position (an integer array, addressable by position);
//! 2. one sequential pass turns the lengths into page/offset placements
//!    (prefix sums, `page# = B / P`, `offset = B % P`);
//! 3. re-run Radix-Decluster, copying each value to its computed page and
//!    offset.

use crate::decluster::radix_decluster;
use rdx_dsm::{Oid, VarColumn};
use rdx_nsm::{assign_positions, BufferManager, PageId, Placement};

/// Result of a paged decluster: where each result tuple landed.
#[derive(Debug, Clone)]
pub struct PagedDecluster {
    /// Id of the first page used in the buffer manager.
    pub first_page: PageId,
    /// Placement of result tuple `i` (page relative to `first_page`).
    pub placements: Vec<Placement>,
}

impl PagedDecluster {
    /// Reads back result tuple `i` from the buffer manager.
    pub fn read<'a>(&self, bm: &'a BufferManager, i: usize, len: usize) -> &'a [u8] {
        let p = self.placements[i];
        bm.page(self.first_page + p.page).read(p.slot, len)
    }
}

/// Three-phase Radix-Decluster of variable-size values into buffer pages.
///
/// * `values` — the projected variable-size values in clustered order
///   (`CLUST_VALUES` of Fig. 4, fetched by a sparse/clustered positional join
///   from a [`VarColumn`]);
/// * `result_positions`, `bounds`, `window_bytes` — as for
///   [`radix_decluster`];
/// * `bm` — the buffer manager receiving the output pages.
///
/// Returns the per-result-tuple placements; tuple `i`'s bytes can be read back
/// with [`PagedDecluster::read`] using `lengths[i]` (also recoverable from the
/// placements and `values`).
pub fn radix_decluster_paged(
    values: &VarColumn,
    result_positions: &[Oid],
    bounds: &[usize],
    window_bytes: usize,
    bm: &mut BufferManager,
) -> PagedDecluster {
    let n = values.len();
    assert_eq!(
        result_positions.len(),
        n,
        "values/positions length mismatch"
    );

    // Phase 1: decluster only the value lengths into result order.
    let clustered_lengths: Vec<u32> = (0..n).map(|i| values.value_len(i) as u32).collect();
    let lengths_in_result_order: Vec<u32> =
        radix_decluster(&clustered_lengths, result_positions, bounds, window_bytes);

    // Phase 2: sequential pass over the lengths, computing placements.
    let lengths_usize: Vec<usize> = lengths_in_result_order
        .iter()
        .map(|&l| l as usize)
        .collect();
    let placements = assign_positions(&lengths_usize, bm.page_size());
    let first_page = rdx_nsm::paged::allocate_for(bm, &placements);

    // Phase 3: re-run the decluster traversal, copying bytes to page/offset.
    // (Same control flow as radix_decluster, but the "write" goes to a page.)
    let mut clusters: Vec<(usize, usize)> = bounds
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|(s, e)| s < e)
        .collect();
    let mut nclusters = clusters.len();
    let window_elems = (window_bytes / 4).max(1);
    let mut window_limit = window_elems;
    while nclusters > 0 {
        let mut i = 0;
        while i < nclusters {
            loop {
                let (cursor, end) = clusters[i];
                let dest = result_positions[cursor] as usize;
                if dest >= window_limit {
                    i += 1;
                    break;
                }
                let p = placements[dest];
                bm.page_mut(first_page + p.page).write_at(
                    p.slot,
                    p.offset,
                    values.get_bytes(cursor),
                );
                let next = cursor + 1;
                if next >= end {
                    nclusters -= 1;
                    clusters[i] = clusters[nclusters];
                    if i >= nclusters {
                        i += 1;
                    }
                    break;
                }
                clusters[i].0 = next;
            }
        }
        window_limit += window_elems;
    }

    PagedDecluster {
        first_page,
        placements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{radix_cluster_oids, RadixClusterSpec};

    /// Builds the Fig. 4-style inputs for `n` string values.
    fn make_inputs(n: usize, bits: u32) -> (VarColumn, Vec<Oid>, Vec<usize>, Vec<String>) {
        // Result tuple r projects the string of smaller-relation tuple
        // smaller_oids[r]; strings have varying lengths.
        let strings: Vec<String> = (0..n)
            .map(|i| format!("value-{i}-{}", "x".repeat(i % 13)))
            .collect();
        let smaller_oids: Vec<Oid> = (0..n as Oid).map(|r| (r * 7 + 3) % n as Oid).collect();
        let result_positions: Vec<Oid> = (0..n as Oid).collect();
        let clustered = radix_cluster_oids(
            &smaller_oids,
            &result_positions,
            RadixClusterSpec::single_pass(bits),
        );
        // Clustered positional join: fetch the string of each clustered oid.
        let mut clust_values = VarColumn::new();
        for &o in clustered.keys() {
            clust_values.push_str(&strings[o as usize]);
        }
        // The expected final result, for verification.
        let expected: Vec<String> = smaller_oids
            .iter()
            .map(|&o| strings[o as usize].clone())
            .collect();
        (
            clust_values,
            clustered.payloads().to_vec(),
            clustered.bounds().to_vec(),
            expected,
        )
    }

    #[test]
    fn paged_decluster_places_every_value_correctly() {
        let (values, positions, bounds, expected) = make_inputs(500, 4);
        let mut bm = BufferManager::new(512);
        let out = radix_decluster_paged(&values, &positions, &bounds, 1024, &mut bm);
        assert_eq!(out.placements.len(), 500);
        for (i, exp) in expected.iter().enumerate() {
            let bytes = out.read(&bm, i, exp.len());
            assert_eq!(bytes, exp.as_bytes(), "result tuple {i}");
        }
        assert!(bm.num_pages() > 1, "multi-page output expected");
    }

    #[test]
    fn fixed_size_values_pack_pages_densely() {
        let n = 200;
        let strings: Vec<String> = (0..n).map(|i| format!("{i:08}")).collect();
        let mut values = VarColumn::new();
        for s in &strings {
            values.push_str(s);
        }
        let positions: Vec<Oid> = (0..n as Oid).collect();
        let bounds = vec![0, n];
        let mut bm = BufferManager::new(128);
        let out = radix_decluster_paged(&values, &positions, &bounds, 256, &mut bm);
        // 8-byte values + 2-byte slots into 120-byte payload budget -> 12 per page.
        assert_eq!(out.placements[0].page, 0);
        assert_eq!(out.placements[12].page, 1);
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(out.read(&bm, i, 8), s.as_bytes());
        }
    }

    #[test]
    fn empty_input_allocates_nothing() {
        let values = VarColumn::new();
        let mut bm = BufferManager::new(256);
        let out = radix_decluster_paged(&values, &[], &[0], 64, &mut bm);
        assert!(out.placements.is_empty());
        assert_eq!(bm.num_pages(), 0);
    }
}
