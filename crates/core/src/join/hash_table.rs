//! A bucket-chained hash table over a key column (MonetDB style).
//!
//! The build side is stored as two parallel arrays: `buckets[h]` holds the
//! head of the chain for hash bucket `h` and `next[i]` links entries with the
//! same bucket.  Probing therefore touches the bucket array randomly and the
//! chain entries (which are positions into the build relation) — this is the
//! random access pattern that Partitioned Hash-Join keeps inside the cache by
//! making each build partition small (§2.1).

use crate::hash::hash_key;
use rdx_dsm::Oid;

/// Sentinel meaning "end of chain".
const NONE: u32 = u32::MAX;

/// A chained hash table mapping key values to the positions they occupy in the
/// build-side key column.
#[derive(Debug, Clone)]
pub struct HashTable {
    mask: u64,
    buckets: Vec<u32>,
    next: Vec<u32>,
}

impl HashTable {
    /// Builds a table over `keys`, with roughly one bucket per key (rounded up
    /// to a power of two).
    pub fn build(keys: &[u64]) -> Self {
        let nbuckets = keys.len().next_power_of_two().max(1);
        let mut table = HashTable {
            mask: (nbuckets - 1) as u64,
            buckets: vec![NONE; nbuckets],
            next: vec![NONE; keys.len()],
        };
        for (i, &k) in keys.iter().enumerate() {
            let b = (hash_key(k) & table.mask) as usize;
            table.next[i] = table.buckets[b];
            table.buckets[b] = i as u32;
        }
        table
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// Iterates over the *positions* of all build-side entries whose key
    /// equals `key` (the caller re-checks equality against its key column, so
    /// hash collisions across different keys are filtered there).
    #[inline]
    pub fn probe(&self, key: u64) -> ChainIter<'_> {
        let b = (hash_key(key) & self.mask) as usize;
        ChainIter {
            next: &self.next,
            cursor: self.buckets[b],
        }
    }

    /// Convenience: probe and filter by actual key equality against the build
    /// key column, yielding matching build positions.
    #[inline]
    pub fn probe_matches<'a>(
        &'a self,
        key: u64,
        build_keys: &'a [u64],
    ) -> impl Iterator<Item = Oid> + 'a {
        self.probe(key)
            .filter(move |&pos| build_keys[pos as usize] == key)
    }
}

/// Iterator over one hash chain.
pub struct ChainIter<'a> {
    next: &'a [u32],
    cursor: u32,
}

impl Iterator for ChainIter<'_> {
    type Item = Oid;

    #[inline]
    fn next(&mut self) -> Option<Oid> {
        if self.cursor == NONE {
            None
        } else {
            let pos = self.cursor;
            self.cursor = self.next[pos as usize];
            Some(pos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_finds_all_duplicates() {
        let keys = vec![7u64, 3, 7, 9, 7];
        let ht = HashTable::build(&keys);
        let mut hits: Vec<Oid> = ht.probe_matches(7, &keys).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2, 4]);
        assert_eq!(ht.probe_matches(3, &keys).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn probe_of_absent_key_is_empty() {
        let keys = vec![1u64, 2, 3];
        let ht = HashTable::build(&keys);
        assert_eq!(ht.probe_matches(99, &keys).count(), 0);
    }

    #[test]
    fn empty_table() {
        let ht = HashTable::build(&[]);
        assert!(ht.is_empty());
        assert_eq!(ht.probe(5).count(), 0);
    }

    #[test]
    fn all_positions_reachable() {
        let keys: Vec<u64> = (0..1000).map(|i| i % 100).collect();
        let ht = HashTable::build(&keys);
        assert_eq!(ht.len(), 1000);
        let mut found = vec![false; 1000];
        for k in 0..100u64 {
            for pos in ht.probe_matches(k, &keys) {
                found[pos as usize] = true;
            }
        }
        assert!(found.iter().all(|&f| f));
    }
}
