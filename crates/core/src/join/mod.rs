//! Hash-Join and cache-conscious Partitioned Hash-Join (paper §2).

mod hash_table;

pub use hash_table::HashTable;

use crate::cluster::{radix_cluster, RadixClusterSpec};
use rdx_dsm::{JoinIndex, Oid};

/// Naive (non-partitioned) Hash-Join between two key columns.
///
/// Builds a hash table over the *smaller* (inner) key column and probes it
/// with the *larger* (outer) one, emitting a [`JoinIndex`] of matching
/// `(larger_oid, smaller_oid)` pairs.  Because the probes are random over a
/// hash table that may far exceed the CPU cache, this is the baseline the
/// cache-conscious variant improves on ("NSM-pre-hash" in Fig. 10a).
pub fn hash_join(larger_keys: &[u64], smaller_keys: &[u64]) -> JoinIndex {
    let table = HashTable::build(smaller_keys);
    let mut out = JoinIndex::with_capacity(larger_keys.len());
    for (l_oid, &key) in larger_keys.iter().enumerate() {
        for s_oid in table.probe_matches(key, smaller_keys) {
            out.push(l_oid as Oid, s_oid);
        }
    }
    out
}

/// Partitioned Hash-Join (§2.1): both inputs are Radix-Clustered on `B` bits
/// of the hashed key, then a simple Hash-Join is run per pair of matching
/// partitions, keeping every build partition (plus its hash table) inside the
/// CPU cache.
///
/// The produced [`JoinIndex`] refers to the *original* oids of both inputs;
/// as §3.1 notes, neither side comes out in ascending order, which is exactly
/// why the post-projection machinery of this paper exists.
pub fn partitioned_hash_join(
    larger_keys: &[u64],
    smaller_keys: &[u64],
    spec: RadixClusterSpec,
) -> JoinIndex {
    if spec.bits == 0 {
        return hash_join(larger_keys, smaller_keys);
    }
    let larger_oids: Vec<Oid> = (0..larger_keys.len() as Oid).collect();
    let smaller_oids: Vec<Oid> = (0..smaller_keys.len() as Oid).collect();
    let larger = radix_cluster(larger_keys, &larger_oids, spec);
    let smaller = radix_cluster(smaller_keys, &smaller_oids, spec);

    let mut out = JoinIndex::with_capacity(larger_keys.len());
    for p in 0..spec.num_clusters() {
        let l_keys = larger.cluster_keys(p);
        let l_oids = larger.cluster_payloads(p);
        let s_keys = smaller.cluster_keys(p);
        let s_oids = smaller.cluster_payloads(p);
        if l_keys.is_empty() || s_keys.is_empty() {
            continue;
        }
        let table = HashTable::build(s_keys);
        for (i, &key) in l_keys.iter().enumerate() {
            for pos in table.probe_matches(key, s_keys) {
                out.push(l_oids[i], s_oids[pos as usize]);
            }
        }
    }
    out
}

/// Chooses the number of radix bits for Partitioned Hash-Join so that one
/// build partition (keys plus hash table, ≈ 12 bytes per tuple) fits the
/// cache, and caps single-pass fanout by using two passes beyond 2^11
/// clusters — the §2 recipe.
pub fn join_cluster_spec(smaller_tuples: usize, cache_bytes: usize) -> RadixClusterSpec {
    const BYTES_PER_BUILD_TUPLE: usize = 12;
    let build_bytes = smaller_tuples.saturating_mul(BYTES_PER_BUILD_TUPLE);
    let mut bits = 0u32;
    while (build_bytes >> bits) > cache_bytes && bits < 24 {
        bits += 1;
    }
    let passes = if bits > 11 { 2 } else { 1 };
    RadixClusterSpec::new(bits, passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Reference nested-loop join for verification.
    fn reference(larger: &[u64], smaller: &[u64]) -> HashSet<(Oid, Oid)> {
        let mut set = HashSet::new();
        for (l, &lk) in larger.iter().enumerate() {
            for (s, &sk) in smaller.iter().enumerate() {
                if lk == sk {
                    set.insert((l as Oid, s as Oid));
                }
            }
        }
        set
    }

    fn keys(n: usize, domain: u64, seed: u64) -> Vec<u64> {
        // Simple deterministic pseudo-random keys.
        (0..n as u64)
            .map(|i| {
                let x = i
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    .rotate_left(17);
                x % domain
            })
            .collect()
    }

    #[test]
    fn hash_join_matches_reference() {
        let larger = keys(500, 300, 1);
        let smaller = keys(400, 300, 2);
        let ji = hash_join(&larger, &smaller);
        let expected = reference(&larger, &smaller);
        let got: HashSet<_> = ji.iter().collect();
        assert_eq!(got, expected);
        assert_eq!(ji.len(), expected.len());
    }

    #[test]
    fn partitioned_join_matches_hash_join() {
        let larger = keys(2000, 1500, 3);
        let smaller = keys(1500, 1500, 4);
        let naive = hash_join(&larger, &smaller);
        for bits in [1, 3, 6, 9] {
            for passes in [1, 2] {
                let part =
                    partitioned_hash_join(&larger, &smaller, RadixClusterSpec::new(bits, passes));
                assert_eq!(
                    part.canonical_pairs(),
                    naive.canonical_pairs(),
                    "bits={bits} passes={passes}"
                );
            }
        }
    }

    #[test]
    fn zero_bits_falls_back_to_hash_join() {
        let larger = keys(100, 50, 5);
        let smaller = keys(80, 50, 6);
        let a = partitioned_hash_join(&larger, &smaller, RadixClusterSpec::single_pass(0));
        let b = hash_join(&larger, &smaller);
        assert_eq!(a.canonical_pairs(), b.canonical_pairs());
    }

    #[test]
    fn no_matches_yields_empty_index() {
        let larger = vec![1u64, 2, 3];
        let smaller = vec![10u64, 20];
        assert!(hash_join(&larger, &smaller).is_empty());
        assert!(
            partitioned_hash_join(&larger, &smaller, RadixClusterSpec::single_pass(2)).is_empty()
        );
    }

    #[test]
    fn duplicate_keys_produce_cross_products() {
        let larger = vec![5u64, 5];
        let smaller = vec![5u64, 5, 5];
        let ji = partitioned_hash_join(&larger, &smaller, RadixClusterSpec::single_pass(2));
        assert_eq!(ji.len(), 6);
    }

    #[test]
    fn join_cluster_spec_keeps_partitions_cache_sized() {
        let spec = join_cluster_spec(8_000_000, 512 * 1024);
        assert!(8_000_000 * 12 / spec.num_clusters() <= 512 * 1024);
        assert!(spec.bits >= 8);
        let tiny = join_cluster_spec(10_000, 512 * 1024);
        assert_eq!(tiny.bits, 0);
    }

    #[test]
    fn join_index_is_valid_for_inputs() {
        let larger = keys(300, 100, 7);
        let smaller = keys(200, 100, 8);
        let ji = partitioned_hash_join(&larger, &smaller, RadixClusterSpec::single_pass(3));
        assert!(ji.is_valid_for(300, 200));
    }
}
