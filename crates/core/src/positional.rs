//! Positional-Joins: projecting column values through an oid list (paper §3).
//!
//! A Positional-Join is "array lookup" — fetching `column[oid]` for every oid
//! of the join index.  All variants below compute exactly the same values;
//! they differ only in the order (and therefore the memory access pattern) in
//! which the oids arrive:
//!
//! * **unsorted** — oids in join-output order: random access over the column;
//! * **sorted** — oids ascending (after Radix-Sort): sequential access;
//! * **clustered** — oids partially clustered (§3.1): each cluster touches
//!   only a cache-sized slice of the column;
//! * **sparse** — oids refer to a base table through a [`Selection`], so only
//!   a fraction of each loaded cache line is useful (§4.1, Fig. 11).

use rdx_dsm::{Column, Oid, Selection};

/// Positional-Join: `out[i] = column[oids[i]]`.
///
/// This single implementation serves the unsorted, sorted and clustered
/// strategies — the access pattern is dictated entirely by the order of
/// `oids`, which is what the different clustering strategies manipulate.
pub fn positional_join<T: Copy>(oids: &[Oid], column: &Column<T>) -> Column<T> {
    column.gather(oids)
}

/// Positional-Join appending into an existing buffer (used by operators that
/// project several columns back-to-back without reallocating).
pub fn positional_join_into<T: Copy>(oids: &[Oid], column: &Column<T>, out: &mut Vec<T>) {
    out.reserve(oids.len());
    for &oid in oids {
        out.push(column.value(oid as usize));
    }
}

/// Clustered Positional-Join: processes the oid list cluster by cluster.
///
/// Functionally identical to [`positional_join`]; it exists so that the
/// benchmark harness can measure the per-cluster loop the paper describes
/// (Fig. 9c) rather than one flat gather, and so the traced variants can
/// attribute accesses to clusters.
pub fn clustered_positional_join<T: Copy>(
    oids: &[Oid],
    bounds: &[usize],
    column: &Column<T>,
) -> Column<T> {
    debug_assert_eq!(*bounds.last().unwrap_or(&0), oids.len());
    let mut out = Vec::with_capacity(oids.len());
    for cluster in bounds.windows(2) {
        for &oid in &oids[cluster[0]..cluster[1]] {
            out.push(column.value(oid as usize));
        }
    }
    Column::from_vec(out)
}

/// Sparse Positional-Join: the oids address positions *within a selection*;
/// they are first rebased to base-table oids and then fetched from the base
/// column.  The lower the selectivity, the fewer values per loaded cache line
/// are useful — the effect Fig. 11 quantifies.
pub fn sparse_positional_join<T: Copy>(
    selection_oids: &[Oid],
    selection: &Selection,
    base_column: &Column<T>,
) -> Column<T> {
    let base_oids = selection.rebase(selection_oids);
    base_column.gather(&base_oids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column() -> Column<i32> {
        Column::from_vec((0..100).map(|i| i * 10).collect())
    }

    #[test]
    fn unsorted_and_clustered_agree() {
        let col = column();
        let oids = vec![17, 3, 99, 3, 42, 0];
        let bounds = vec![0, 2, 5, 6];
        let flat = positional_join(&oids, &col);
        let clustered = clustered_positional_join(&oids, &bounds, &col);
        assert_eq!(flat, clustered);
        assert_eq!(flat.as_slice(), &[170, 30, 990, 30, 420, 0]);
    }

    #[test]
    fn join_into_appends() {
        let col = column();
        let mut out = vec![-1];
        positional_join_into(&[1, 2], &col, &mut out);
        assert_eq!(out, vec![-1, 10, 20]);
    }

    #[test]
    fn sparse_join_rebases_through_selection() {
        let base = Column::from_vec((0..1000).collect());
        let sel = Selection::new(vec![10, 200, 999], 1000);
        // selection positions 2,0 -> base oids 999,10
        let out = sparse_positional_join(&[2, 0], &sel, &base);
        assert_eq!(out.as_slice(), &[999, 10]);
    }

    #[test]
    fn empty_oid_list() {
        let col = column();
        assert!(positional_join(&[], &col).is_empty());
        assert!(clustered_positional_join(&[], &[0], &col).is_empty());
    }
}
