//! Shared building blocks of the post-projection strategies.
//!
//! DSM and NSM post-projection share the same structure — create a join index,
//! reorder it for the first side, project the first side, re-cluster for the
//! second side, project + decluster the second side — and differ only in how a
//! single projected value is fetched.  The helpers here are therefore generic
//! over a `fetch(oid, attr) -> i32` closure.

use crate::cluster::{
    plan_cluster_passes, plan_partial_cluster, radix_cluster_oids_with_scratch, ClusterScratch,
    RadixClusterSpec, OID_PAIR_BYTES,
};
use crate::decluster::{choose_window_bytes, radix_decluster};
use crate::hash::significant_bits;
use rdx_cache::CacheParams;
use rdx_dsm::{JoinIndex, Oid};

/// Projection code for the *first* (larger) side of a DSM/NSM post-projection,
/// the one-letter codes of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProjectionCode {
    /// `u` — process the join index as-is (random access into the column).
    Unsorted,
    /// `s` — Radix-Sort the join index on this side's oids first.
    Sorted,
    /// `c` — partial Radix-Cluster (§3.1): clusters sized to the cache.
    PartialCluster,
}

impl ProjectionCode {
    /// The one-letter code used in the paper's figures.
    pub fn letter(&self) -> char {
        match self {
            ProjectionCode::Unsorted => 'u',
            ProjectionCode::Sorted => 's',
            ProjectionCode::PartialCluster => 'c',
        }
    }
}

/// Projection code for the *second* (smaller) side: unsorted positional joins
/// or the full Radix-Decluster pipeline of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecondSideCode {
    /// `u` — unsorted positional joins straight from the (reordered) index.
    Unsorted,
    /// `d` — partial Radix-Cluster + clustered positional join +
    /// Radix-Decluster per projected column.
    Decluster,
}

impl SecondSideCode {
    /// The one-letter code used in the paper's figures.
    pub fn letter(&self) -> char {
        match self {
            SecondSideCode::Unsorted => 'u',
            SecondSideCode::Decluster => 'd',
        }
    }
}

/// Reorders the join index according to the first-side projection code and
/// returns `(first_side_oids, second_side_oids)` in the chosen final result
/// order (the two vectors stay aligned row-by-row).
pub fn order_join_index(
    join_index: &JoinIndex,
    code: ProjectionCode,
    first_cardinality: usize,
    value_width: usize,
    params: &CacheParams,
) -> (Vec<Oid>, Vec<Oid>) {
    match code {
        ProjectionCode::Unsorted => (join_index.larger().to_vec(), join_index.smaller().to_vec()),
        ProjectionCode::Sorted => {
            // Radix-Sort on all significant bits, with passes and scatter
            // mode from the same `plan_cluster_passes` rule the cost
            // planner prices — priced and executed pass structures match.
            let bits = significant_bits(first_cardinality);
            let (passes, mode) = plan_cluster_passes(bits, OID_PAIR_BYTES, params);
            let sorted = radix_cluster_oids_with_scratch(
                join_index.larger(),
                join_index.smaller(),
                RadixClusterSpec::partial(bits, passes, 0),
                mode,
                &mut ClusterScratch::new(),
            );
            (sorted.keys().to_vec(), sorted.payloads().to_vec())
        }
        ProjectionCode::PartialCluster => {
            let (spec, mode) =
                plan_partial_cluster(first_cardinality, value_width, OID_PAIR_BYTES, params);
            let clustered = radix_cluster_oids_with_scratch(
                join_index.larger(),
                join_index.smaller(),
                spec,
                mode,
                &mut ClusterScratch::new(),
            );
            (clustered.keys().to_vec(), clustered.payloads().to_vec())
        }
    }
}

/// Projects `n_attrs` columns of the first side: for every result row `r`,
/// fetch attribute `a` of `oids[r]`.  The access pattern is whatever the
/// ordering step made of `oids` — that is the whole point of the codes.
pub fn project_first_side(
    oids: &[Oid],
    n_attrs: usize,
    fetch: impl Fn(Oid, usize) -> i32,
) -> Vec<Vec<i32>> {
    (0..n_attrs)
        .map(|a| oids.iter().map(|&oid| fetch(oid, a)).collect())
        .collect()
}

/// Projects the second side with plain unsorted positional joins.
pub fn project_second_side_unsorted(
    oids: &[Oid],
    n_attrs: usize,
    fetch: impl Fn(Oid, usize) -> i32,
) -> Vec<Vec<i32>> {
    project_first_side(oids, n_attrs, fetch)
}

/// Projects the second side with the Radix-Decluster pipeline of Fig. 4:
///
/// 1. partially Radix-Cluster `(second_oid, result_position)` on the second
///    oid (`CLUST_SMALLER` / `CLUST_RESULT`);
/// 2. per projected column, a clustered positional join produces
///    `CLUST_VALUES`;
/// 3. Radix-Decluster puts the values into final result order.
///
/// Returns the projected columns plus the number of clusters used (for
/// instrumentation).
pub fn project_second_side_decluster(
    second_oids_in_result_order: &[Oid],
    n_attrs: usize,
    fetch: impl Fn(Oid, usize) -> i32,
    second_cardinality: usize,
    value_width: usize,
    params: &CacheParams,
) -> (Vec<Vec<i32>>, usize) {
    let n = second_oids_in_result_order.len();
    let (spec, mode) =
        plan_partial_cluster(second_cardinality, value_width, OID_PAIR_BYTES, params);
    let result_positions: Vec<Oid> = (0..n as Oid).collect();
    let clustered = radix_cluster_oids_with_scratch(
        second_oids_in_result_order,
        &result_positions,
        spec,
        mode,
        &mut ClusterScratch::new(),
    );
    let window = choose_window_bytes(value_width, clustered.num_clusters(), params);

    let columns = (0..n_attrs)
        .map(|a| {
            // CLUST_VALUES: clustered positional join into the source column.
            let clust_values: Vec<i32> =
                clustered.keys().iter().map(|&oid| fetch(oid, a)).collect();
            // Radix-Decluster into final result order.
            radix_decluster(
                &clust_values,
                clustered.payloads(),
                clustered.bounds(),
                window,
            )
        })
        .collect();
    (columns, clustered.num_clusters())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_dsm::Column;

    fn fetcher(cols: &[Column<i32>]) -> impl Fn(Oid, usize) -> i32 + '_ {
        move |oid, a| cols[a].value(oid as usize)
    }

    fn sample_index() -> JoinIndex {
        JoinIndex::from_pairs([(5, 1), (0, 3), (3, 3), (1, 0), (4, 2), (2, 1)])
    }

    #[test]
    fn order_unsorted_keeps_input_order() {
        let ji = sample_index();
        let params = CacheParams::paper_pentium4();
        let (l, s) = order_join_index(&ji, ProjectionCode::Unsorted, 6, 4, &params);
        assert_eq!(l, ji.larger());
        assert_eq!(s, ji.smaller());
    }

    #[test]
    fn order_sorted_sorts_first_side_and_keeps_pairs() {
        let ji = sample_index();
        let params = CacheParams::paper_pentium4();
        let (l, s) = order_join_index(&ji, ProjectionCode::Sorted, 6, 4, &params);
        assert!(l.windows(2).all(|w| w[0] <= w[1]));
        let mut pairs: Vec<_> = l.iter().zip(&s).map(|(&a, &b)| (a, b)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, ji.canonical_pairs());
    }

    #[test]
    fn order_partial_cluster_keeps_pairs() {
        let ji = sample_index();
        let params = CacheParams::paper_pentium4();
        let (l, s) = order_join_index(&ji, ProjectionCode::PartialCluster, 6, 4, &params);
        let mut pairs: Vec<_> = l.iter().zip(&s).map(|(&a, &b)| (a, b)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, ji.canonical_pairs());
    }

    #[test]
    fn second_side_decluster_matches_unsorted() {
        let cols: Vec<Column<i32>> = (0..2)
            .map(|a| Column::from_vec((0..1000).map(|i| i * 10 + a).collect()))
            .collect();
        // Second-side oids in some arbitrary result order, with duplicates.
        let oids: Vec<Oid> = (0..3000).map(|r| ((r * 37 + 11) % 1000) as Oid).collect();
        let params = CacheParams::tiny_for_tests();
        let unsorted = project_second_side_unsorted(&oids, 2, fetcher(&cols));
        let (declustered, clusters) =
            project_second_side_decluster(&oids, 2, fetcher(&cols), 1000, 4, &params);
        assert_eq!(unsorted, declustered);
        assert!(clusters >= 1);
    }

    #[test]
    fn projection_codes_have_paper_letters() {
        assert_eq!(ProjectionCode::Unsorted.letter(), 'u');
        assert_eq!(ProjectionCode::Sorted.letter(), 's');
        assert_eq!(ProjectionCode::PartialCluster.letter(), 'c');
        assert_eq!(SecondSideCode::Unsorted.letter(), 'u');
        assert_eq!(SecondSideCode::Decluster.letter(), 'd');
    }
}
