//! NSM post-projection (§4.2 "NSM Post-Projection Alternatives").
//!
//! Both variants first create the join index from the key attribute alone —
//! which already costs a full scan of the wide NSM records — and then go back
//! to the base tables to fetch the projected attributes:
//!
//! * `NSM-post-decluster` reuses the DSM post-projection machinery
//!   (partial cluster for the larger side, Radix-Decluster for the smaller
//!   side), but every fetch reads from a wide NSM record, so each cache line
//!   loaded carries mostly unneeded attributes — the `O(C²/T²)` scalability
//!   penalty the paper derives.
//! * `NSM-post-jive` uses Jive-Join \[LR99\] for the projection phase.

use crate::error::{check_projection_widths, RdxError};
use crate::jive::{jive_bits, jive_join_projection};
use crate::join::{join_cluster_spec, partitioned_hash_join};
use crate::strategy::common::{
    order_join_index, project_first_side, project_second_side_decluster, ProjectionCode,
};
use crate::strategy::{PhaseTimings, QuerySpec, StrategyOutcome};
use rdx_cache::CacheParams;
use rdx_dsm::{Column, ResultRelation};
use rdx_nsm::NsmRelation;
use std::time::Instant;

/// Scans the key attribute out of the NSM records (the unavoidable first step
/// of any NSM post-projection) and builds the join index with Partitioned
/// Hash-Join.
fn nsm_join_index(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    params: &CacheParams,
) -> rdx_dsm::JoinIndex {
    let larger_keys: Vec<u64> = (0..larger.cardinality()).map(|r| larger.key(r)).collect();
    let smaller_keys: Vec<u64> = (0..smaller.cardinality()).map(|r| smaller.key(r)).collect();
    let spec = join_cluster_spec(smaller.cardinality(), params.cache_capacity());
    partitioned_hash_join(&larger_keys, &smaller_keys, spec)
}

/// NSM post-projection using partial clustering + Radix-Decluster.
///
/// **Legacy surface**: thin panicking wrapper over
/// [`try_nsm_post_projection_decluster`].
pub fn nsm_post_projection_decluster(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> StrategyOutcome {
    try_nsm_post_projection_decluster(larger, smaller, spec, params)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`nsm_post_projection_decluster`] with validation failures reported as
/// typed [`RdxError`]s (the join-key attribute is not projectable, so an NSM
/// relation of width `ω` offers `ω − 1` columns).
pub fn try_nsm_post_projection_decluster(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> Result<StrategyOutcome, RdxError> {
    check_projection_widths(
        spec.project_larger,
        larger.width().saturating_sub(1),
        spec.project_smaller,
        smaller.width().saturating_sub(1),
    )?;
    let mut timings = PhaseTimings::default();

    let t = Instant::now();
    let join_index = nsm_join_index(larger, smaller, params);
    timings.join = t.elapsed();

    // First side: partial cluster on the larger oids, then fetch attributes
    // from the wide records.  The "effective" value width for the clustering
    // formula is the full record width — that is what a cache line fetch
    // actually drags in, and what limits NSM scalability (§4.2).
    let t = Instant::now();
    let (first_oids, second_oids) = order_join_index(
        &join_index,
        ProjectionCode::PartialCluster,
        larger.cardinality(),
        larger.tuple_bytes(),
        params,
    );
    timings.reorder = t.elapsed();

    let t = Instant::now();
    let first_columns = project_first_side(&first_oids, spec.project_larger, |oid, a| {
        larger.value(oid as usize, a + 1)
    });
    timings.project_larger = t.elapsed();

    let t = Instant::now();
    let (second_columns, _clusters) = project_second_side_decluster(
        &second_oids,
        spec.project_smaller,
        |oid, b| smaller.value(oid as usize, b + 1),
        smaller.cardinality(),
        smaller.tuple_bytes(),
        params,
    );
    timings.decluster = t.elapsed();

    let mut result = ResultRelation::new();
    for col in first_columns.into_iter().chain(second_columns) {
        result.push_column(Column::from_vec(col));
    }
    Ok(StrategyOutcome { result, timings })
}

/// NSM post-projection using Jive-Join for the projection phase.
///
/// **Legacy surface**: thin panicking wrapper over
/// [`try_nsm_post_projection_jive`].
pub fn nsm_post_projection_jive(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> StrategyOutcome {
    try_nsm_post_projection_jive(larger, smaller, spec, params).unwrap_or_else(|e| panic!("{e}"))
}

/// [`nsm_post_projection_jive`] with validation failures reported as typed
/// [`RdxError`]s.
pub fn try_nsm_post_projection_jive(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> Result<StrategyOutcome, RdxError> {
    check_projection_widths(
        spec.project_larger,
        larger.width().saturating_sub(1),
        spec.project_smaller,
        smaller.width().saturating_sub(1),
    )?;
    let mut timings = PhaseTimings::default();

    let t = Instant::now();
    let join_index = nsm_join_index(larger, smaller, params);
    timings.join = t.elapsed();

    let t = Instant::now();
    let bits = jive_bits(
        smaller.cardinality(),
        smaller.tuple_bytes(),
        params.cache_capacity(),
    );
    let jive = jive_join_projection(
        &join_index,
        spec.project_larger,
        |oid, a| larger.value(oid as usize, a + 1),
        spec.project_smaller,
        |oid, b| smaller.value(oid as usize, b + 1),
        smaller.cardinality(),
        bits,
    );
    timings.project_larger = t.elapsed();

    let mut result = ResultRelation::new();
    for col in jive.larger_columns.into_iter().chain(jive.smaller_columns) {
        result.push_column(Column::from_vec(col));
    }
    Ok(StrategyOutcome { result, timings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::reference::{reference_rows, result_rows};
    use rdx_workload::{HitRate, JoinWorkloadBuilder};

    #[test]
    fn decluster_variant_matches_reference() {
        let w = JoinWorkloadBuilder::equal(2_000, 3).seed(21).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let out = nsm_post_projection_decluster(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&w.larger, &w.smaller, &spec)
        );
    }

    #[test]
    fn jive_variant_matches_reference() {
        let w = JoinWorkloadBuilder::equal(2_000, 3).seed(22).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let out = nsm_post_projection_jive(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&w.larger, &w.smaller, &spec)
        );
    }

    #[test]
    fn both_variants_agree_under_low_hit_rate() {
        let w = JoinWorkloadBuilder::equal(1_200, 2)
            .hit_rate(HitRate(1.0 / 3.0))
            .seed(23)
            .build();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let a = nsm_post_projection_decluster(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
        let b = nsm_post_projection_jive(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
        assert_eq!(result_rows(&a.result), result_rows(&b.result));
        assert_eq!(a.result.cardinality(), w.expected_matches);
    }

    #[test]
    fn try_variants_report_the_key_exclusive_width_as_typed_errors() {
        use crate::error::{RdxError, Side};
        // ω = 2 record: one key + one projectable attribute.
        let w = JoinWorkloadBuilder::equal(300, 1).seed(24).build();
        let params = CacheParams::tiny_for_tests();
        let spec = QuerySpec {
            project_larger: 1,
            project_smaller: 2,
        };
        for err in [
            try_nsm_post_projection_decluster(&w.larger_nsm, &w.smaller_nsm, &spec, &params)
                .unwrap_err(),
            try_nsm_post_projection_jive(&w.larger_nsm, &w.smaller_nsm, &spec, &params)
                .unwrap_err(),
        ] {
            assert_eq!(
                err,
                RdxError::TooManyColumns {
                    side: Side::Smaller,
                    requested: 2,
                    available: 1
                }
            );
        }
    }
}
