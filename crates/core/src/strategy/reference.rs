//! A deliberately simple reference executor used to verify every strategy.
//!
//! It computes the projected join with a plain hash join and per-row value
//! fetches, and returns the result as a canonically sorted multiset of rows,
//! so that strategies with different (legitimate) result orders can be
//! compared for semantic equality.

use crate::strategy::QuerySpec;
use rdx_dsm::{DsmRelation, ResultRelation};
use std::collections::HashMap;

/// One result row: the projected larger-side values followed by the projected
/// smaller-side values.
pub type Row = Vec<i32>;

/// Computes the reference result as a sorted multiset of rows.
pub fn reference_rows(larger: &DsmRelation, smaller: &DsmRelation, spec: &QuerySpec) -> Vec<Row> {
    let mut by_key: HashMap<u64, Vec<usize>> = HashMap::new();
    for (s, &k) in smaller.key().as_slice().iter().enumerate() {
        by_key.entry(k).or_default().push(s);
    }
    let mut rows = Vec::new();
    for (l, &k) in larger.key().as_slice().iter().enumerate() {
        if let Some(matches) = by_key.get(&k) {
            for &s in matches {
                let mut row = Vec::with_capacity(spec.total());
                for a in 0..spec.project_larger {
                    row.push(larger.attr(a)[l]);
                }
                for b in 0..spec.project_smaller {
                    row.push(smaller.attr(b)[s]);
                }
                rows.push(row);
            }
        }
    }
    rows.sort_unstable();
    rows
}

/// Converts a strategy's [`ResultRelation`] into the same sorted-multiset-of-
/// rows representation for comparison against [`reference_rows`].
pub fn result_rows(result: &ResultRelation) -> Vec<Row> {
    let n = result.cardinality();
    let mut rows: Vec<Row> = (0..n)
        .map(|r| result.columns().iter().map(|c| c[r]).collect())
        .collect();
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_dsm::Column;

    fn rel(keys: Vec<u64>, attrs: Vec<Vec<i32>>) -> DsmRelation {
        DsmRelation::new(
            Column::from_vec(keys),
            attrs.into_iter().map(Column::from_vec).collect(),
        )
    }

    #[test]
    fn reference_computes_projected_equi_join() {
        let larger = rel(vec![1, 2, 2, 9], vec![vec![10, 20, 21, 90]]);
        let smaller = rel(vec![2, 1, 7], vec![vec![200, 100, 700]]);
        let rows = reference_rows(&larger, &smaller, &QuerySpec::symmetric(1));
        assert_eq!(rows, vec![vec![10, 100], vec![20, 200], vec![21, 200]]);
    }

    #[test]
    fn result_rows_round_trip() {
        let mut res = ResultRelation::new();
        res.push_column(Column::from_vec(vec![3, 1, 2]));
        res.push_column(Column::from_vec(vec![30, 10, 20]));
        assert_eq!(
            result_rows(&res),
            vec![vec![1, 10], vec![2, 20], vec![3, 30]]
        );
    }

    #[test]
    fn empty_projection_spec() {
        let larger = rel(vec![1], vec![vec![5]]);
        let smaller = rel(vec![1], vec![vec![6]]);
        let rows = reference_rows(
            &larger,
            &smaller,
            &QuerySpec {
                project_larger: 0,
                project_smaller: 1,
            },
        );
        assert_eq!(rows, vec![vec![6]]);
    }
}
