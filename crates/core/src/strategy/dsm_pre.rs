//! DSM pre-projection ("DSM-pre-phash" in Fig. 10).
//!
//! The projection columns are fetched by the scans *before* the join and
//! travel as "extra luggage" through every Radix-Cluster pass and through the
//! Partitioned Hash-Join itself.  Relative to post-projection this moves
//! `π · 4` extra bytes per tuple per pass — which is exactly the overhead the
//! paper's comparison quantifies.

use crate::error::{check_projection_widths, RdxError};
use crate::hash::hash_key;
use crate::join::{join_cluster_spec, HashTable};
use crate::strategy::{PhaseTimings, QuerySpec, StrategyOutcome};
use rdx_cache::CacheParams;
use rdx_dsm::{Column, DsmRelation, ResultRelation};
use std::time::Instant;

/// A relation materialised as "wide tuples": the key plus the projected
/// attribute values, stored row-major so that the whole tuple moves together
/// through clustering and joining (that is what pre-projection means).
struct WideBuffer {
    keys: Vec<u64>,
    /// Row-major projected values, `stride` per tuple.
    values: Vec<i32>,
    stride: usize,
}

impl WideBuffer {
    /// The pre-join scan: fetch the projected columns once, sequentially.
    fn scan(rel: &DsmRelation, projected: usize) -> Self {
        let n = rel.cardinality();
        let mut values = Vec::with_capacity(n * projected);
        for row in 0..n {
            for a in 0..projected {
                values.push(rel.attr(a)[row]);
            }
        }
        WideBuffer {
            keys: rel.key().as_slice().to_vec(),
            values,
            stride: projected,
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn row(&self, i: usize) -> &[i32] {
        &self.values[i * self.stride..(i + 1) * self.stride]
    }

    /// One counting-sort pass over the wide tuples: both the key and the whole
    /// projected payload are scattered to the output partitions.
    fn cluster_pass(
        &self,
        bits_this_pass: u32,
        shift: u32,
        segments: &[usize],
    ) -> (Self, Vec<usize>) {
        let hp = 1usize << bits_this_pass;
        let mask = (hp - 1) as u64;
        let mut out_keys = vec![0u64; self.keys.len()];
        let mut out_values = vec![0i32; self.values.len()];
        let mut new_segments = Vec::with_capacity((segments.len() - 1) * hp + 1);
        let mut counts = vec![0usize; hp];
        for seg in segments.windows(2) {
            let (s, e) = (seg[0], seg[1]);
            counts.iter_mut().for_each(|c| *c = 0);
            for &k in &self.keys[s..e] {
                counts[((hash_key(k) >> shift) & mask) as usize] += 1;
            }
            let mut offsets = vec![0usize; hp];
            let mut cursor = s;
            for b in 0..hp {
                offsets[b] = cursor;
                new_segments.push(cursor);
                cursor += counts[b];
            }
            for i in s..e {
                let b = ((hash_key(self.keys[i]) >> shift) & mask) as usize;
                let dst = offsets[b];
                offsets[b] += 1;
                out_keys[dst] = self.keys[i];
                out_values[dst * self.stride..(dst + 1) * self.stride].copy_from_slice(self.row(i));
            }
        }
        new_segments.push(self.keys.len());
        (
            WideBuffer {
                keys: out_keys,
                values: out_values,
                stride: self.stride,
            },
            new_segments,
        )
    }

    /// Full multi-pass Radix-Cluster of the wide tuples.
    fn radix_cluster(mut self, bits: u32, passes: u32) -> (Self, Vec<usize>) {
        let mut segments = vec![0, self.len()];
        if bits == 0 {
            return (self, segments);
        }
        let passes = passes.min(bits).max(1);
        let base = bits / passes;
        let extra = bits % passes;
        let mut remaining = bits;
        for p in 0..passes {
            let bp = if p < extra { base + 1 } else { base };
            remaining -= bp;
            let (next, next_segments) = self.cluster_pass(bp, remaining, &segments);
            self = next;
            segments = next_segments;
        }
        (self, segments)
    }
}

/// Executes the DSM pre-projection strategy with Partitioned Hash-Join.
///
/// **Legacy surface**: thin panicking wrapper over
/// [`try_dsm_pre_projection`].
pub fn dsm_pre_projection(
    larger: &DsmRelation,
    smaller: &DsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> StrategyOutcome {
    try_dsm_pre_projection(larger, smaller, spec, params).unwrap_or_else(|e| panic!("{e}"))
}

/// [`dsm_pre_projection`] with validation failures reported as typed
/// [`RdxError`]s instead of panics.
pub fn try_dsm_pre_projection(
    larger: &DsmRelation,
    smaller: &DsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> Result<StrategyOutcome, RdxError> {
    check_projection_widths(
        spec.project_larger,
        larger.width(),
        spec.project_smaller,
        smaller.width(),
    )?;
    let mut timings = PhaseTimings::default();
    let t = Instant::now();

    // Pre-projection scans: the wide tuples are built before the join.
    let larger_wide = WideBuffer::scan(larger, spec.project_larger);
    let smaller_wide = WideBuffer::scan(smaller, spec.project_smaller);

    // The wide tuples inflate the per-tuple footprint of the build side, so
    // the partition sizing must account for it (§4.2: "less tuples fit in the
    // clusters created by Radix-Cluster").
    let build_tuple_bytes = 12 + 4 * spec.project_smaller;
    let join_spec = join_cluster_spec(
        smaller.cardinality() * build_tuple_bytes / 12,
        params.cache_capacity(),
    );

    let (larger_clustered, larger_bounds) =
        larger_wide.radix_cluster(join_spec.bits, join_spec.passes);
    let (smaller_clustered, smaller_bounds) =
        smaller_wide.radix_cluster(join_spec.bits, join_spec.passes);

    // Per-partition hash join, emitting fully projected result rows directly.
    let mut result_cols: Vec<Vec<i32>> = vec![Vec::new(); spec.total()];
    for p in 0..larger_bounds.len() - 1 {
        let (ls, le) = (larger_bounds[p], larger_bounds[p + 1]);
        let (ss, se) = (smaller_bounds[p], smaller_bounds[p + 1]);
        if ls == le || ss == se {
            continue;
        }
        let build_keys = &smaller_clustered.keys[ss..se];
        let table = HashTable::build(build_keys);
        for l in ls..le {
            let key = larger_clustered.keys[l];
            for pos in table.probe_matches(key, build_keys) {
                let s = ss + pos as usize;
                let lrow = larger_clustered.row(l);
                let srow = smaller_clustered.row(s);
                for (a, &v) in lrow.iter().enumerate() {
                    result_cols[a].push(v);
                }
                for (b, &v) in srow.iter().enumerate() {
                    result_cols[spec.project_larger + b].push(v);
                }
            }
        }
    }
    timings.join = t.elapsed();

    let mut result = ResultRelation::new();
    for col in result_cols {
        result.push_column(Column::from_vec(col));
    }
    Ok(StrategyOutcome { result, timings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::reference::{reference_rows, result_rows};
    use rdx_workload::{HitRate, JoinWorkloadBuilder};

    #[test]
    fn matches_reference_result() {
        let w = JoinWorkloadBuilder::equal(2_500, 3).seed(2).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let out = dsm_pre_projection(&w.larger, &w.smaller, &spec, &params);
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&w.larger, &w.smaller, &spec)
        );
        assert_eq!(out.result.cardinality(), w.expected_matches);
    }

    #[test]
    fn handles_low_hit_rate() {
        let w = JoinWorkloadBuilder::equal(3_000, 1)
            .hit_rate(HitRate(1.0 / 3.0))
            .seed(4)
            .build();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let out = dsm_pre_projection(&w.larger, &w.smaller, &spec, &params);
        assert_eq!(out.result.cardinality(), w.expected_matches);
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&w.larger, &w.smaller, &spec)
        );
    }

    #[test]
    fn zero_projection_from_one_side() {
        let w = JoinWorkloadBuilder::equal(800, 2).seed(6).build();
        let spec = QuerySpec {
            project_larger: 0,
            project_smaller: 2,
        };
        let params = CacheParams::tiny_for_tests();
        let out = dsm_pre_projection(&w.larger, &w.smaller, &spec, &params);
        assert_eq!(out.result.num_columns(), 2);
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&w.larger, &w.smaller, &spec)
        );
    }

    #[test]
    fn try_variant_reports_over_projection_as_typed_error() {
        use crate::error::Side;
        let w = JoinWorkloadBuilder::equal(100, 1).build();
        let params = CacheParams::tiny_for_tests();
        let err = try_dsm_pre_projection(&w.larger, &w.smaller, &QuerySpec::symmetric(7), &params)
            .unwrap_err();
        assert_eq!(
            err,
            RdxError::TooManyColumns {
                side: Side::Larger,
                requested: 7,
                available: 1
            }
        );
    }
}
