//! Runtime-adaptive chunk re-tuning: the predict → observe → re-plan loop.
//!
//! Every streaming plan in the workspace is priced exactly once, from static
//! [`CacheParams`], before the first chunk runs.  A
//! Manegold-model misprediction — concurrent cache pressure, a mis-calibrated
//! hierarchy, a skewed tail — therefore compounds silently for the rest of a
//! long run.  The observability layer already *measures* the divergence live
//! (`pipeline.predicted_vs_observed_permille`); this module is the part that
//! *acts* on it, in the spirit of cache-conscious run-time decomposition
//! (Paulino & Delgado, arXiv:1511.05778).
//!
//! Three pieces, all deterministic and allocation-free after construction:
//!
//! * [`FeedbackSource`] — where the per-chunk observation comes from.  The
//!   production impl ([`WallClockFeedback`]) passes through the chunk
//!   wall-clock the pipeline measures; [`ScriptedFeedback`] replays an
//!   injected timing script for deterministic tests; any
//!   `FnMut(chunk, rows, measured_ns, predicted_ns) -> u64` closure also
//!   qualifies, which is how a harness can feed simulated miss counts from
//!   the traced kernels in `crate::trace` instead of wall-clock.
//! * [`AdaptivePolicy`] — the knobs: EWMA smoothing weight, the hysteresis
//!   band outside which a re-plan fires, a re-plan budget bounding how often
//!   adaptation itself may run, and a warm-up/cool-down observation count.
//! * [`AdaptiveController`] — the state machine.  Its decisions are a *pure
//!   function* of the observed `(observed_ns, predicted_ns)` sequence:
//!   integer arithmetic only, no clocks, no randomness — the property the
//!   conformance suite checks by replaying scripts.
//!
//! The executor (`rdx-exec`'s `PipelineRun`) consults the controller after
//! every emitted chunk; on [`AdaptiveDecision::Replan`] it re-prices only the
//! *remaining* rows (already-emitted chunks are untouched, so byte-identity
//! is preserved by construction) under the budget scaled by
//! [`resplit_budget`], and folds the learned correction into its per-chunk
//! prediction so an accurate-but-rescaled model settles instead of
//! re-triggering forever.
//!
//! ```
//! use rdx_core::strategy::adapt::{
//!     AdaptiveController, AdaptiveDecision, AdaptivePolicy, FeedbackSource, ScriptedFeedback,
//! };
//!
//! // Chunks observed 3x slower than predicted: the EWMA leaves the
//! // hysteresis band and a bounded number of re-plans fire.
//! let mut ctl = AdaptiveController::new(AdaptivePolicy::default());
//! let mut script = ScriptedFeedback::constant(3_000);
//! let mut replans = 0;
//! for chunk in 0..16 {
//!     let observed = script.observe_chunk(chunk, 100, 0, 1_000_000);
//!     if let AdaptiveDecision::Replan { reason, .. } = ctl.observe(observed, 1_000_000) {
//!         assert_eq!(reason, "slow");
//!         replans += 1;
//!     }
//! }
//! assert!(replans >= 1);
//! assert!(replans <= AdaptivePolicy::default().replan_budget as usize);
//!
//! // Accurate feedback: the EWMA stays inside the band, zero re-plans.
//! let mut ctl = AdaptiveController::new(AdaptivePolicy::default());
//! for _ in 0..16 {
//!     assert_eq!(ctl.observe(1_000_000, 1_000_000), AdaptiveDecision::Hold);
//! }
//! assert_eq!(ctl.replans(), 0);
//! ```

use crate::budget::MemoryBudget;
use rdx_cache::{CacheParams, EventCounts};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where per-chunk observations come from.
///
/// Called by the executor once after every emitted chunk; the return value
/// is the observed cost of that chunk in nanoseconds, which the
/// [`AdaptiveController`] compares against `predicted_ns`.  Implementations
/// must not allocate (the chunk loop's zero-allocation gate covers them).
pub trait FeedbackSource {
    /// Observes chunk `chunk` (`rows` result rows): `measured_ns` is the
    /// wall-clock the pipeline measured (0 when it measured nothing) and
    /// `predicted_ns` the current per-chunk prediction.  Returns the
    /// observed cost to feed the controller.
    fn observe_chunk(
        &mut self,
        chunk: usize,
        rows: usize,
        measured_ns: u64,
        predicted_ns: u64,
    ) -> u64;
}

/// The production feedback source: the chunk wall-clock, as measured by the
/// pipeline (the same measurement the `ChunkStep` trace events carry).
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClockFeedback;

impl FeedbackSource for WallClockFeedback {
    fn observe_chunk(
        &mut self,
        _chunk: usize,
        _rows: usize,
        measured_ns: u64,
        _predicted_ns: u64,
    ) -> u64 {
        measured_ns
    }
}

/// A deterministic feedback source replaying an injected timing script.
///
/// Entry `i` is the observed-vs-predicted ratio of chunk `i` in permille
/// (1000 = exactly as predicted, 3000 = three times slower); past the end of
/// the script the last entry repeats, so a constant pathological stream is
/// one entry long.  The returned observation is `predicted_ns * ratio /
/// 1000` — scripted runs are a pure function of the script, independent of
/// wall-clock, machine load or thread scheduling.
#[derive(Debug, Clone)]
pub struct ScriptedFeedback {
    ratios_permille: Vec<u64>,
    cursor: usize,
}

impl ScriptedFeedback {
    /// A script from explicit per-chunk ratios (empty scripts read as
    /// perfectly accurate: every chunk observes exactly its prediction).
    pub fn from_ratios(ratios_permille: &[u64]) -> Self {
        ScriptedFeedback {
            ratios_permille: ratios_permille.to_vec(),
            cursor: 0,
        }
    }

    /// The constant script: every chunk observes `ratio_permille`.
    pub fn constant(ratio_permille: u64) -> Self {
        Self::from_ratios(&[ratio_permille])
    }
}

impl FeedbackSource for ScriptedFeedback {
    fn observe_chunk(
        &mut self,
        _chunk: usize,
        _rows: usize,
        _measured_ns: u64,
        predicted_ns: u64,
    ) -> u64 {
        let ratio = match self.ratios_permille.get(self.cursor) {
            Some(&r) => {
                self.cursor += 1;
                r
            }
            None => *self.ratios_permille.last().unwrap_or(&1000),
        };
        predicted_ns.saturating_mul(ratio) / 1000
    }
}

/// A lock-free mailbox carrying the latest chunk's **simulated miss
/// counts** from a profiled pipeline run to a [`MissCountFeedback`].
///
/// The profiled executor replays each chunk's access pattern through the
/// traced kernels (`crate::trace`, `crate::decluster::traced`) right after
/// emitting it, converts the resulting [`EventCounts`] to modeled stall
/// nanoseconds under the profiling [`CacheParams`], and publishes them
/// here; the feedback source attached to the same run reads them on the
/// very next `observe_chunk` call.  Clones share one mailbox (publisher
/// and reader sides), stores and loads are relaxed atomics — no locks, no
/// allocation after construction.
#[derive(Debug, Clone, Default)]
pub struct SharedMissCounts {
    inner: Arc<MissCountMailbox>,
}

#[derive(Debug, Default)]
struct MissCountMailbox {
    accesses: AtomicU64,
    l1_misses: AtomicU64,
    l2_misses: AtomicU64,
    tlb_misses: AtomicU64,
    stall_ns: AtomicU64,
}

impl SharedMissCounts {
    /// An empty mailbox (reads as zero until the first publish).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes one chunk's simulated counts, converting the implied
    /// stall cycles to modeled nanoseconds under `params`.
    pub fn publish(&self, counts: &EventCounts, params: &CacheParams) {
        let stall_ns = (counts.stall_millis(params) * 1e6).round() as u64;
        self.inner
            .accesses
            .store(counts.accesses, Ordering::Relaxed);
        self.inner
            .l1_misses
            .store(counts.l1_misses, Ordering::Relaxed);
        self.inner
            .l2_misses
            .store(counts.l2_misses, Ordering::Relaxed);
        self.inner
            .tlb_misses
            .store(counts.tlb_misses, Ordering::Relaxed);
        self.inner.stall_ns.store(stall_ns, Ordering::Relaxed);
    }

    /// The last published counts (all zero before the first publish).
    pub fn last(&self) -> EventCounts {
        EventCounts {
            accesses: self.inner.accesses.load(Ordering::Relaxed),
            l1_misses: self.inner.l1_misses.load(Ordering::Relaxed),
            l2_misses: self.inner.l2_misses.load(Ordering::Relaxed),
            tlb_misses: self.inner.tlb_misses.load(Ordering::Relaxed),
        }
    }

    /// The last published modeled stall time in nanoseconds (0 before the
    /// first publish).
    pub fn last_stall_ns(&self) -> u64 {
        self.inner.stall_ns.load(Ordering::Relaxed)
    }
}

/// Cache-pressure feedback: observations come from **simulated miss
/// counts**, not wall-clock.
///
/// Each chunk's observation is the modeled stall time the profiled run
/// published to its [`SharedMissCounts`] mailbox — a pure function of the
/// chunk's memory-access pattern, so the adaptive loop's decisions become
/// fully deterministic: same data, same plan, same decisions, in any
/// container, under any load.  Before the first publish (or when profiling
/// is off) the source is neutral, returning `predicted_ns` so the
/// controller holds rather than reacting to a phantom zero.
///
/// The controller compares the observation against the Manegold-model
/// per-chunk prediction; the hysteresis band absorbs the constant offset
/// between "memory stalls only" and "total chunk cost", and a re-plan
/// fires when *cache pressure itself* diverges — the shared-cache squeeze
/// the static plan priced wrong.
#[derive(Debug, Clone, Default)]
pub struct MissCountFeedback {
    shared: SharedMissCounts,
}

impl MissCountFeedback {
    /// A feedback source reading from `shared` (the executor publishes the
    /// profiled counts into the same mailbox).
    pub fn new(shared: SharedMissCounts) -> Self {
        MissCountFeedback { shared }
    }

    /// The mailbox this source reads from.
    pub fn shared(&self) -> &SharedMissCounts {
        &self.shared
    }
}

impl FeedbackSource for MissCountFeedback {
    fn observe_chunk(
        &mut self,
        _chunk: usize,
        _rows: usize,
        _measured_ns: u64,
        predicted_ns: u64,
    ) -> u64 {
        match self.shared.last_stall_ns() {
            0 => predicted_ns,
            stall_ns => stall_ns,
        }
    }
}

/// Closures are feedback sources too — the hook for harnesses that derive
/// observations from something other than wall-clock (e.g. simulated miss
/// counts out of the traced kernels in [`crate::trace`], converted to a
/// modeled nanosecond cost).
impl<F> FeedbackSource for F
where
    F: FnMut(usize, usize, u64, u64) -> u64,
{
    fn observe_chunk(
        &mut self,
        chunk: usize,
        rows: usize,
        measured_ns: u64,
        predicted_ns: u64,
    ) -> u64 {
        self(chunk, rows, measured_ns, predicted_ns)
    }
}

/// The adaptive controller's knobs.  All fields are plain integers so the
/// policy is `Copy + Eq` and rides inside a `ServerRequest` unchanged.
///
/// Defaults: EWMA weight 0.4, hysteresis band `[0.5x, 2.0x]`
/// observed-vs-predicted, at most 2 mid-flight re-plans, 2 observations of
/// warm-up before (and cool-down between) decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Weight of the newest sample in the EWMA, in permille (`1000` = no
    /// smoothing, react to every chunk; clamped to `1000`).
    pub ewma_alpha_permille: u64,
    /// Upper hysteresis bound: a re-plan (reason `"slow"`) fires once the
    /// EWMA of observed/predicted exceeds this, in permille.
    pub upper_permille: u64,
    /// Lower hysteresis bound: a re-plan (reason `"fast"`) fires once the
    /// EWMA falls below this, in permille.
    pub lower_permille: u64,
    /// Mid-flight re-plans this controller may ever fire — adaptation
    /// itself is bounded, so a pathological feedback stream cannot make the
    /// run spend its time re-planning.
    pub replan_budget: u32,
    /// Chunks observed before the first decision, and between consecutive
    /// re-plans (the cool-down that gives a fresh plan time to show up in
    /// the EWMA before it is judged).
    pub min_observations: u32,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            ewma_alpha_permille: 400,
            upper_permille: 2_000,
            lower_permille: 500,
            replan_budget: 2,
            min_observations: 2,
        }
    }
}

impl AdaptivePolicy {
    /// A hair-trigger policy for tests and experiments: no smoothing, a
    /// `[0.9x, 1.1x]` band, one observation per decision and a generous
    /// re-plan budget — fires on nearly any misprediction.
    pub fn hair_trigger() -> Self {
        AdaptivePolicy {
            ewma_alpha_permille: 1_000,
            upper_permille: 1_100,
            lower_permille: 900,
            replan_budget: 16,
            min_observations: 1,
        }
    }

    /// Sets the hysteresis band (builder form).
    pub fn band(mut self, lower_permille: u64, upper_permille: u64) -> Self {
        self.lower_permille = lower_permille;
        self.upper_permille = upper_permille;
        self
    }

    /// Sets the re-plan budget (builder form).
    pub fn replans(mut self, budget: u32) -> Self {
        self.replan_budget = budget;
        self
    }

    /// Sets the EWMA weight in permille (builder form).
    pub fn alpha(mut self, permille: u64) -> Self {
        self.ewma_alpha_permille = permille;
        self
    }

    /// Sets the warm-up/cool-down observation count (builder form).
    pub fn observations(mut self, count: u32) -> Self {
        self.min_observations = count;
        self
    }
}

/// What the controller decided after one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveDecision {
    /// Stay on the current plan.
    Hold,
    /// Re-plan the remaining rows.
    Replan {
        /// The EWMA of observed/predicted at the moment of the decision, in
        /// permille — the correction factor the executor folds into its
        /// budget scaling ([`resplit_budget`]) and its next prediction.
        ewma_permille: u64,
        /// `"slow"` (EWMA above the band) or `"fast"` (below) — the static
        /// label the `Replan` trace event carries.
        reason: &'static str,
    },
}

/// The EWMA-with-hysteresis state machine.  Decisions are a pure function
/// of the `(observed_ns, predicted_ns)` sequence fed to
/// [`AdaptiveController::observe`]: integer arithmetic only, no clocks, no
/// allocation — replaying the same script always yields the same re-plan
/// points.
///
/// ```
/// use rdx_core::strategy::adapt::{AdaptiveController, AdaptivePolicy};
///
/// let script = [900u64, 3_100, 2_900, 3_000, 1_000];
/// let run = |_| {
///     let mut ctl = AdaptiveController::new(AdaptivePolicy::default());
///     script
///         .iter()
///         .map(|&ns| ctl.observe(ns, 1_000))
///         .collect::<Vec<_>>()
/// };
/// assert_eq!(run(0), run(1)); // same script => same decisions
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    policy: AdaptivePolicy,
    ewma_permille: u64,
    observations: u32,
    replans: u32,
}

impl AdaptiveController {
    /// A controller starting from a perfectly-trusted model (EWMA at 1000).
    pub fn new(policy: AdaptivePolicy) -> Self {
        AdaptiveController {
            policy,
            ewma_permille: 1_000,
            observations: 0,
            replans: 0,
        }
    }

    /// The policy this controller runs under.
    pub fn policy(&self) -> AdaptivePolicy {
        self.policy
    }

    /// Re-plans fired so far (never exceeds
    /// [`AdaptivePolicy::replan_budget`]).
    pub fn replans(&self) -> u32 {
        self.replans
    }

    /// The current EWMA of observed/predicted, in permille.
    pub fn ewma_permille(&self) -> u64 {
        self.ewma_permille
    }

    /// Feeds one chunk's observation and returns the decision.
    ///
    /// A zero prediction holds unconditionally (there is nothing to compare
    /// against).  On [`AdaptiveDecision::Replan`] the EWMA resets to 1000:
    /// the caller is expected to fold the returned correction into its next
    /// prediction, after which the model is trusted again until the
    /// evidence says otherwise.
    pub fn observe(&mut self, observed_ns: u64, predicted_ns: u64) -> AdaptiveDecision {
        if predicted_ns == 0 {
            return AdaptiveDecision::Hold;
        }
        let ratio = observed_ns.saturating_mul(1_000) / predicted_ns;
        let alpha = self.policy.ewma_alpha_permille.min(1_000);
        self.ewma_permille = (alpha * ratio + (1_000 - alpha) * self.ewma_permille) / 1_000;
        self.observations += 1;
        if self.observations < self.policy.min_observations
            || self.replans >= self.policy.replan_budget
        {
            return AdaptiveDecision::Hold;
        }
        let reason = if self.ewma_permille > self.policy.upper_permille {
            "slow"
        } else if self.ewma_permille < self.policy.lower_permille {
            "fast"
        } else {
            return AdaptiveDecision::Hold;
        };
        self.replans += 1;
        self.observations = 0;
        let ewma_permille = self.ewma_permille;
        self.ewma_permille = 1_000;
        AdaptiveDecision::Replan {
            ewma_permille,
            reason,
        }
    }
}

/// The budget a re-split re-plans the remaining rows under: chunks observed
/// `ewma_permille / 1000` times slower than predicted get their working set
/// shrunk by the same factor (the model evidently under-priced the cache
/// pressure), floored at one byte so the planner's one-row clamp still
/// applies.  Faster-than-predicted runs (and unbounded budgets) keep the
/// full budget — the grant is a hard ceiling the adaptive loop may never
/// raise, so `peak working set <= share` survives adaptation by
/// construction.
pub fn resplit_budget(budget: MemoryBudget, ewma_permille: u64) -> MemoryBudget {
    if !budget.is_bounded() || ewma_permille <= 1_000 {
        return budget;
    }
    MemoryBudget::bytes(
        (budget.limit_bytes().saturating_mul(1_000) / ewma_permille as usize).max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_feedback_never_replans() {
        let mut ctl = AdaptiveController::new(AdaptivePolicy::default());
        for _ in 0..64 {
            assert_eq!(ctl.observe(5_000, 5_000), AdaptiveDecision::Hold);
        }
        assert_eq!(ctl.replans(), 0);
        assert_eq!(ctl.ewma_permille(), 1_000);
    }

    #[test]
    fn slow_feedback_fires_within_the_replan_budget() {
        let policy = AdaptivePolicy::default();
        let mut ctl = AdaptiveController::new(policy);
        let mut decisions = Vec::new();
        for _ in 0..32 {
            decisions.push(ctl.observe(3_000, 1_000));
        }
        let replans = decisions
            .iter()
            .filter(|d| matches!(d, AdaptiveDecision::Replan { .. }))
            .count();
        assert!(replans >= 1, "3x-slow stream must trigger a re-plan");
        assert_eq!(replans as u32, ctl.replans());
        assert!(ctl.replans() <= policy.replan_budget);
        // Every firing carries the slow reason and a >1000 correction.
        for d in &decisions {
            if let AdaptiveDecision::Replan {
                ewma_permille,
                reason,
            } = d
            {
                assert_eq!(*reason, "slow");
                assert!(*ewma_permille > policy.upper_permille);
            }
        }
    }

    #[test]
    fn fast_feedback_reports_the_fast_reason() {
        let mut ctl = AdaptiveController::new(AdaptivePolicy::hair_trigger());
        let d = ctl.observe(100, 1_000);
        assert!(matches!(d, AdaptiveDecision::Replan { reason: "fast", .. }));
    }

    #[test]
    fn warmup_and_cooldown_gate_decisions() {
        let policy = AdaptivePolicy::default().observations(3).replans(8);
        let mut ctl = AdaptiveController::new(policy);
        // Two observations of a 10x-slow stream: still warming up.
        assert_eq!(ctl.observe(10_000, 1_000), AdaptiveDecision::Hold);
        assert_eq!(ctl.observe(10_000, 1_000), AdaptiveDecision::Hold);
        // Third observation crosses the warm-up and the band.
        assert!(matches!(
            ctl.observe(10_000, 1_000),
            AdaptiveDecision::Replan { .. }
        ));
        // Cool-down: the next two observations cannot fire again.
        assert_eq!(ctl.observe(10_000, 1_000), AdaptiveDecision::Hold);
        assert_eq!(ctl.observe(10_000, 1_000), AdaptiveDecision::Hold);
    }

    #[test]
    fn decisions_are_a_pure_function_of_the_script() {
        let script: Vec<u64> = (0..40).map(|i| 500 + (i * 379) % 3_500).collect();
        let run = || {
            let mut ctl = AdaptiveController::new(AdaptivePolicy::hair_trigger());
            script
                .iter()
                .map(|&ratio| ctl.observe(ratio * 1_000, 1_000_000))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scripted_feedback_replays_and_repeats_its_tail() {
        let mut s = ScriptedFeedback::from_ratios(&[1_000, 3_000]);
        assert_eq!(s.observe_chunk(0, 10, 7, 1_000), 1_000);
        assert_eq!(s.observe_chunk(1, 10, 7, 1_000), 3_000);
        // Past the end: the last entry repeats.
        assert_eq!(s.observe_chunk(2, 10, 7, 1_000), 3_000);
        // Empty scripts are neutral; wall-clock passes through measurement.
        let mut empty = ScriptedFeedback::from_ratios(&[]);
        assert_eq!(empty.observe_chunk(0, 10, 7, 2_000), 2_000);
        let mut wall = WallClockFeedback;
        assert_eq!(wall.observe_chunk(0, 10, 1_234, 9_999), 1_234);
        // Closures qualify as sources too.
        let mut doubler = |_c: usize, _r: usize, m: u64, _p: u64| m * 2;
        assert_eq!(doubler.observe_chunk(0, 10, 21, 0), 42);
    }

    #[test]
    fn miss_count_feedback_is_neutral_until_published() {
        let shared = SharedMissCounts::new();
        let mut feedback = MissCountFeedback::new(shared.clone());
        // Nothing published yet: neutral (returns the prediction).
        assert_eq!(feedback.observe_chunk(0, 100, 123_456, 5_000), 5_000);

        let params = CacheParams::tiny_for_tests();
        let counts = EventCounts {
            accesses: 1_000,
            l1_misses: 100,
            l2_misses: 10,
            tlb_misses: 5,
        };
        shared.publish(&counts, &params);
        assert_eq!(shared.last(), counts);
        // 100×10 + 10×100 + 5×20 = 2100 cycles at 1 GHz = 2100 ns, and the
        // observation ignores wall-clock entirely.
        assert_eq!(shared.last_stall_ns(), 2_100);
        assert_eq!(feedback.observe_chunk(1, 100, 999_999_999, 5_000), 2_100);
    }

    #[test]
    fn miss_count_feedback_drives_the_controller_deterministically() {
        let params = CacheParams::tiny_for_tests();
        let run = || {
            let shared = SharedMissCounts::new();
            let mut feedback = MissCountFeedback::new(shared.clone());
            let mut ctl = AdaptiveController::new(AdaptivePolicy::hair_trigger());
            let mut decisions = Vec::new();
            for chunk in 0..8usize {
                // A rising miss stream, as a thrashing window would produce.
                let counts = EventCounts {
                    accesses: 1_000,
                    l1_misses: 50 * (chunk as u64 + 1),
                    l2_misses: 20 * (chunk as u64 + 1),
                    tlb_misses: 0,
                };
                shared.publish(&counts, &params);
                let observed = feedback.observe_chunk(chunk, 100, 0, 1_000);
                decisions.push(ctl.observe(observed, 1_000));
            }
            decisions
        };
        let first = run();
        assert_eq!(first, run(), "simulated feedback must replay identically");
        assert!(
            first
                .iter()
                .any(|d| matches!(d, AdaptiveDecision::Replan { reason: "slow", .. })),
            "sustained miss pressure must trigger a re-plan"
        );
    }

    #[test]
    fn resplit_budget_shrinks_for_slow_and_never_grows() {
        let b = MemoryBudget::bytes(9_000);
        assert_eq!(resplit_budget(b, 3_000).limit_bytes(), 3_000);
        assert_eq!(resplit_budget(b, 1_000), b);
        // Fast runs keep the ceiling: the grant may never be exceeded.
        assert_eq!(resplit_budget(b, 500), b);
        assert_eq!(
            resplit_budget(MemoryBudget::unbounded(), 5_000),
            MemoryBudget::unbounded()
        );
        // Extreme corrections floor at one byte (the planner's one-row
        // clamp takes over from there).
        assert_eq!(
            resplit_budget(MemoryBudget::bytes(2), u64::MAX).limit_bytes(),
            1
        );
    }
}
