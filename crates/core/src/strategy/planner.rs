//! A cost-model-driven planner for the DSM post-projection codes.
//!
//! §4.1 ends with the observation that which projection strategy is cheapest
//! "depends on the number of projection columns in both relations, the data
//! types in these projection columns, and the number of tuples in both input
//! relations", and §1.1 motivates the Appendix-A cost models precisely as the
//! tool to "draw conclusions on their optimal parameter settings".  This
//! module closes that loop: it prices every `u/s/c × u/d` code combination
//! with the `rdx-cost` formulas and picks the cheapest, giving a planner that
//! adapts to π, N and the cache parameters instead of using only the
//! fits-in-cache rule of [`DsmPostProjection::plan`].

use crate::budget::{BudgetError, MemoryBudget};
use crate::cluster::{
    plan_cluster_passes, plan_partial_cluster, RadixClusterSpec, ScatterMode, OID_PAIR_BYTES,
};
use crate::decluster::choose_window_bytes;
use crate::hash::significant_bits;
use crate::strategy::common::{ProjectionCode, SecondSideCode};
use crate::strategy::{DsmPostProjection, QuerySpec};
use rdx_cache::CacheParams;
use rdx_cost::algorithms as cost;
use rdx_cost::DataRegion;
use rdx_dsm::DsmRelation;

/// Value width of the paper's integer attribute columns.
const VALUE_WIDTH: usize = 4;

/// Predicted cost of radix-clustering `region` into `2^bits` clusters, with
/// the pass count and plain/buffered scatter chosen by
/// [`plan_cluster_passes`] — so the planner prices exactly the pass
/// structure the kernels will run, including the "one buffered pass instead
/// of two plain ones" move.
fn cluster_cost_millis(region: DataRegion, bits: u32, params: &CacheParams) -> f64 {
    let (passes, mode) = plan_cluster_passes(bits, OID_PAIR_BYTES, params);
    match mode {
        ScatterMode::Plain | ScatterMode::Auto => {
            cost::radix_cluster(region, bits, passes, params).millis(params)
        }
        ScatterMode::Buffered => {
            cost::radix_cluster_buffered(region, bits, passes, OID_PAIR_BYTES, params)
                .millis(params)
        }
    }
}

/// Predicted cost (milliseconds on the modeled platform) of the *projection
/// phase* of a DSM post-projection with the given codes.
///
/// The join phase is identical for every code combination, so it is omitted;
/// the comparison between code combinations is unaffected.
pub fn predict_projection_cost(
    first: ProjectionCode,
    second: SecondSideCode,
    larger_tuples: usize,
    smaller_tuples: usize,
    result_tuples: usize,
    spec: &QuerySpec,
    params: &CacheParams,
) -> f64 {
    let cache = params.cache_capacity();
    let larger_col = DataRegion::new(larger_tuples, VALUE_WIDTH);
    let smaller_col = DataRegion::new(smaller_tuples, VALUE_WIDTH);
    let join_index = DataRegion::new(result_tuples, 8);

    // --- first (larger) side -------------------------------------------------
    let first_bits = optimal_bits(larger_tuples, cache);
    let first_cost = match first {
        ProjectionCode::Unsorted => {
            spec.project_larger as f64
                * cost::positional_join_unsorted(result_tuples, larger_col, VALUE_WIDTH, params)
                    .millis(params)
        }
        ProjectionCode::Sorted => {
            let sort_bits = significant_bits(larger_tuples);
            cluster_cost_millis(join_index, sort_bits, params)
                + spec.project_larger as f64
                    * cost::positional_join_sorted(result_tuples, larger_col, VALUE_WIDTH, params)
                        .millis(params)
        }
        ProjectionCode::PartialCluster => {
            cluster_cost_millis(join_index, first_bits, params)
                + spec.project_larger as f64
                    * cost::positional_join_clustered(
                        result_tuples,
                        larger_col,
                        VALUE_WIDTH,
                        first_bits,
                        params,
                    )
                    .millis(params)
        }
    };

    // --- second (smaller) side -----------------------------------------------
    let second_bits = optimal_bits(smaller_tuples, cache);
    let window = cache / 2;
    let second_cost = match second {
        SecondSideCode::Unsorted => {
            spec.project_smaller as f64
                * cost::positional_join_unsorted(result_tuples, smaller_col, VALUE_WIDTH, params)
                    .millis(params)
        }
        SecondSideCode::Decluster => {
            cluster_cost_millis(join_index, second_bits, params)
                + spec.project_smaller as f64
                    * (cost::positional_join_clustered(
                        result_tuples,
                        smaller_col,
                        VALUE_WIDTH,
                        second_bits,
                        params,
                    )
                    .millis(params)
                        + cost::radix_decluster(
                            result_tuples,
                            VALUE_WIDTH,
                            second_bits,
                            window,
                            params,
                        )
                        .millis(params))
        }
    };

    first_cost + second_cost
}

/// Picks the cheapest `u/s/c × u/d` combination under the cost model.
pub fn plan_by_cost(
    larger: &DsmRelation,
    smaller: &DsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> DsmPostProjection {
    plan_by_cost_with_threads(larger, smaller, spec, params, 1)
}

/// The `threads`-aware planner: prices every code combination against each
/// core's *share* of the cache ([`CacheParams::per_core_share`]) instead of
/// the whole of it.
///
/// With `threads` workers active, the per-core effective cache shrinks to
/// `C / threads`, which moves the knees of the Appendix-A cost curves: a
/// side whose projection columns fit a full cache may exceed a quarter of
/// one, flipping the optimal code from `u` to `c`/`d` — and the narrower
/// per-core cache also raises the radix-bit counts the reordering codes are
/// priced at.  The returned plan is what the parallel executors in
/// `rdx-exec` should run.
pub fn plan_by_cost_with_threads(
    larger: &DsmRelation,
    smaller: &DsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
    threads: usize,
) -> DsmPostProjection {
    let params = &params.per_core_share(threads);
    // With hit rate unknown at planning time, assume |result| ≈ |larger|, the
    // paper's h = 1 default.
    let result_tuples = larger.cardinality();
    let mut best = (
        f64::INFINITY,
        DsmPostProjection::plan(larger, smaller, params),
    );
    for first in [
        ProjectionCode::Unsorted,
        ProjectionCode::Sorted,
        ProjectionCode::PartialCluster,
    ] {
        for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
            let predicted = predict_projection_cost(
                first,
                second,
                larger.cardinality(),
                smaller.cardinality(),
                result_tuples,
                spec,
                params,
            );
            if predicted < best.0 {
                best = (predicted, DsmPostProjection::with_codes(first, second));
            }
        }
    }
    best.1
}

/// Resident bytes one result row costs the streaming pipeline while its
/// chunk is in flight: all `π` output column values held until the chunk is
/// emitted, plus the chunk-local rebased result positions, the chunk-local
/// clustered smaller oids (shared by all smaller-side columns), and the
/// staged clustered values of the column currently being declustered.
///
/// This is the `bytes_per_row` the chunk-count rule divides the
/// [`MemoryBudget`] by — the analogue of `per_core_share` dividing the cache.
pub fn streaming_bytes_per_row(spec: &QuerySpec) -> usize {
    (spec.total() + 3) * VALUE_WIDTH
}

/// The chunking a [`MemoryBudget`] imposes on a streaming projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingPlan {
    /// Result rows per chunk (`≥ 1`).
    pub chunk_rows: usize,
    /// Number of chunks the result splits into (`≥ 1`).
    pub num_chunks: usize,
    /// Insertion-window size `‖W‖` for the per-chunk declusters, clamped to
    /// never exceed one chunk's output.
    pub window_bytes: usize,
    /// Resident bytes charged per in-flight result row (see
    /// [`streaming_bytes_per_row`]).
    pub bytes_per_row: usize,
    /// The second-side partial clustering the chunks stream over — the
    /// single source of truth shared by the executor (which runs it) and
    /// [`predict_streaming_cost`] (which prices it), so the two can never
    /// drift apart.
    pub cluster_spec: RadixClusterSpec,
    /// How that clustering scatters: plain cursors, or software
    /// write-combining once the fan-out exceeds the plain cursor budget
    /// (see [`plan_cluster_passes`]).  Chosen together with
    /// `cluster_spec.passes` by [`crate::cluster::plan_partial_cluster`];
    /// has no effect on the produced bytes, only on how fast they appear.
    pub scatter: ScatterMode,
}

impl StreamingPlan {
    /// Upper bound on the chunk working set this plan admits, in bytes —
    /// what the acceptance tests compare against the pipeline's measured
    /// peak.
    pub fn max_working_set_bytes(&self) -> usize {
        self.chunk_rows * self.bytes_per_row
    }
}

/// Picks the chunk count and per-chunk window for a streaming projection of
/// `result_rows` rows over a smaller relation of `smaller_tuples` tuples of
/// `smaller_value_width` bytes (4 for DSM columns, the full record width for
/// NSM — a cache-line fetch drags the whole record in), declustered by
/// `threads` concurrent workers, under `budget`.
///
/// The rule mirrors [`choose_window_bytes`] one level up: the budget divided
/// by the per-row resident cost gives the chunk size (floored at one row, so
/// progress is always possible), and the insertion window of the per-chunk
/// declusters is the cache-derived window sized to each worker's *share* of
/// the cache ([`CacheParams::per_core_share`], as the parallel executors do)
/// and clamped to the chunk output so a tiny budget never asks for a window
/// larger than the data it covers.
///
/// **Documented clamp:** a bounded budget smaller than one resident row
/// ([`streaming_bytes_per_row`]) is clamped to a one-row chunk, so the
/// pipeline's actual peak working set exceeds the stated limit by up to
/// `bytes_per_row - 1` bytes.  Callers that must not exceed the limit —
/// the serving layer's admission controller — use
/// [`plan_streaming_checked`], which turns the clamp into a typed
/// [`BudgetError::BelowOneRow`] instead.
pub fn plan_streaming(
    result_rows: usize,
    smaller_tuples: usize,
    smaller_value_width: usize,
    spec: &QuerySpec,
    params: &CacheParams,
    budget: MemoryBudget,
    threads: usize,
) -> StreamingPlan {
    let bytes_per_row = streaming_bytes_per_row(spec);
    let chunk_rows = budget.chunk_rows(result_rows, bytes_per_row);
    let num_chunks = budget.num_chunks(result_rows, bytes_per_row);
    let (cluster_spec, scatter) = plan_partial_cluster(
        smaller_tuples,
        smaller_value_width.max(1),
        OID_PAIR_BYTES,
        params,
    );
    let window = choose_window_bytes(
        VALUE_WIDTH,
        cluster_spec.num_clusters(),
        &params.per_core_share(threads),
    );
    let window_bytes = window.min((chunk_rows * VALUE_WIDTH).max(VALUE_WIDTH));
    StreamingPlan {
        chunk_rows,
        num_chunks,
        window_bytes,
        bytes_per_row,
        cluster_spec,
        scatter,
    }
}

/// The non-clamping form of [`plan_streaming`]: a bounded budget that cannot
/// hold even one resident result row is rejected with
/// [`BudgetError::BelowOneRow`] at plan time, instead of the documented
/// clamp (or, in older code paths, a deep panic once the over-budget chunk
/// tried to allocate).  Everything admissible plans exactly as
/// [`plan_streaming`] does.
pub fn plan_streaming_checked(
    result_rows: usize,
    smaller_tuples: usize,
    smaller_value_width: usize,
    spec: &QuerySpec,
    params: &CacheParams,
    budget: MemoryBudget,
    threads: usize,
) -> Result<StreamingPlan, BudgetError> {
    budget.check_one_row(streaming_bytes_per_row(spec))?;
    Ok(plan_streaming(
        result_rows,
        smaller_tuples,
        smaller_value_width,
        spec,
        params,
        budget,
        threads,
    ))
}

/// Predicted cost (milliseconds on the modeled platform) of the second-side
/// projection phase run *streaming* under `plan`, per Appendix A plus the
/// chunk-restart term of [`cost::streaming_radix_decluster`].
///
/// Comparable with [`predict_projection_cost`]'s `Decluster` second-side
/// term: the difference between them is the price paid for the bounded
/// memory footprint.
pub fn predict_streaming_cost(
    plan: &StreamingPlan,
    smaller_tuples: usize,
    result_tuples: usize,
    spec: &QuerySpec,
    params: &CacheParams,
) -> f64 {
    let smaller_col = DataRegion::new(smaller_tuples, VALUE_WIDTH);
    let join_index = DataRegion::new(result_tuples, 8);
    let bits = plan.cluster_spec.bits;
    let cluster_millis = match plan.scatter {
        ScatterMode::Plain | ScatterMode::Auto => {
            cost::radix_cluster(join_index, bits, plan.cluster_spec.passes, params).millis(params)
        }
        ScatterMode::Buffered => cost::radix_cluster_buffered(
            join_index,
            bits,
            plan.cluster_spec.passes,
            OID_PAIR_BYTES,
            params,
        )
        .millis(params),
    };
    cluster_millis
        + spec.project_smaller as f64
            * (cost::positional_join_clustered(
                result_tuples,
                smaller_col,
                VALUE_WIDTH,
                bits,
                params,
            )
            .millis(params)
                + cost::streaming_radix_decluster(
                    result_tuples,
                    VALUE_WIDTH,
                    bits,
                    plan.window_bytes,
                    plan.num_chunks,
                    params,
                )
                .millis(params))
}

/// The §3.1 cluster-count rule, shared with `RadixClusterSpec::optimal_partial`.
fn optimal_bits(column_tuples: usize, cache_bytes: usize) -> u32 {
    let bytes = column_tuples.saturating_mul(VALUE_WIDTH);
    let mut bits = 0u32;
    while (bytes >> bits) > cache_bytes && bits < 30 {
        bits += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_workload::JoinWorkloadBuilder;

    #[test]
    fn small_relations_plan_unsorted() {
        let w = JoinWorkloadBuilder::equal(5_000, 1).build();
        let params = CacheParams::paper_pentium4();
        let plan = plan_by_cost(&w.larger, &w.smaller, &QuerySpec::symmetric(1), &params);
        assert_eq!(plan.first_side, ProjectionCode::Unsorted);
        assert_eq!(plan.second_side, SecondSideCode::Unsorted);
    }

    #[test]
    fn large_relations_plan_reordering() {
        let w = JoinWorkloadBuilder::equal(4_000_000, 1).build();
        let params = CacheParams::paper_pentium4();
        let plan = plan_by_cost(&w.larger, &w.smaller, &QuerySpec::symmetric(4), &params);
        assert_ne!(plan.first_side, ProjectionCode::Unsorted);
        assert_eq!(plan.second_side, SecondSideCode::Decluster);
    }

    #[test]
    fn predicted_costs_reproduce_fig8_orderings() {
        let params = CacheParams::paper_pentium4();
        let n = 8_000_000;
        let spec_low = QuerySpec::symmetric(1);
        let spec_high = QuerySpec::symmetric(64);
        let price = |first, spec: &QuerySpec| {
            predict_projection_cost(first, SecondSideCode::Unsorted, n, n, n, spec, &params)
        };
        // Large N: unsorted loses to both reordering codes at high π (Fig. 8).
        assert!(
            price(ProjectionCode::Unsorted, &spec_high) > price(ProjectionCode::Sorted, &spec_high)
        );
        assert!(
            price(ProjectionCode::Unsorted, &spec_high)
                > price(ProjectionCode::PartialCluster, &spec_high)
        );
        // At small π, partial-cluster beats full sorting (Fig. 8).
        assert!(
            price(ProjectionCode::PartialCluster, &spec_low)
                < price(ProjectionCode::Sorted, &spec_low)
        );
    }

    #[test]
    fn thread_count_moves_the_planning_knee() {
        // A relation whose columns fit the whole cache but not a per-core
        // share: the single-threaded planner keeps the unsorted code while
        // some higher thread count must switch the second side to decluster.
        let params = CacheParams::paper_pentium4();
        let w = JoinWorkloadBuilder::equal(60_000, 1).build();
        let spec = QuerySpec::symmetric(4);
        let single = plan_by_cost_with_threads(&w.larger, &w.smaller, &spec, &params, 1);
        assert_eq!(single, plan_by_cost(&w.larger, &w.smaller, &spec, &params));
        let plans: Vec<_> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&t| plan_by_cost_with_threads(&w.larger, &w.smaller, &spec, &params, t))
            .collect();
        // Planning must stay well-defined at every thread count, and the
        // effective cache only shrinks — once a reordering code is chosen it
        // never reverts to unsorted at higher thread counts.
        let first_reorder = plans
            .iter()
            .position(|p| p.second_side == SecondSideCode::Decluster);
        if let Some(i) = first_reorder {
            for p in &plans[i..] {
                assert_eq!(p.second_side, SecondSideCode::Decluster);
            }
        }
    }

    #[test]
    fn shrinking_budget_raises_chunk_count() {
        let params = CacheParams::paper_pentium4();
        let spec = QuerySpec::symmetric(2);
        let n = 1_000_000;
        let data_bytes = n * streaming_bytes_per_row(&spec);
        let mut last_chunks = 0;
        for denom in [1usize, 4, 16, 64] {
            let plan = plan_streaming(
                n,
                n,
                4,
                &spec,
                &params,
                MemoryBudget::fraction_of(data_bytes, denom),
                1,
            );
            assert!(plan.num_chunks >= last_chunks, "denom {denom}");
            assert!(
                plan.num_chunks >= denom,
                "denom {denom}: {}",
                plan.num_chunks
            );
            assert!(
                plan.max_working_set_bytes() <= data_bytes.div_ceil(denom) + plan.bytes_per_row
            );
            last_chunks = plan.num_chunks;
        }
        // Unbounded budget degenerates to one chunk with the usual window.
        let unbounded = plan_streaming(n, n, 4, &spec, &params, MemoryBudget::unbounded(), 1);
        assert_eq!(unbounded.num_chunks, 1);
        assert_eq!(unbounded.chunk_rows, n);
    }

    #[test]
    fn streaming_window_never_exceeds_the_chunk() {
        let params = CacheParams::paper_pentium4();
        let spec = QuerySpec::symmetric(1);
        let plan = plan_streaming(
            100_000,
            100_000,
            4,
            &spec,
            &params,
            MemoryBudget::bytes(1024),
            1,
        );
        assert!(plan.window_bytes <= plan.chunk_rows * 4);
        assert!(plan.window_bytes >= 4);
        // One-row floor: even absurd budgets make progress.
        let tiny = plan_streaming(100, 100, 4, &spec, &params, MemoryBudget::bytes(1), 1);
        assert_eq!(tiny.chunk_rows, 1);
        assert_eq!(tiny.num_chunks, 100);
    }

    #[test]
    fn degenerate_budget_is_a_typed_error_when_checked_and_a_clamp_otherwise() {
        let params = CacheParams::paper_pentium4();
        let spec = QuerySpec::symmetric(2);
        let floor = streaming_bytes_per_row(&spec);
        assert_eq!(floor, (2 + 2 + 3) * 4);
        // Checked path: one byte below the one-row floor is rejected with the
        // offending numbers attached.
        let err = plan_streaming_checked(
            1_000,
            1_000,
            4,
            &spec,
            &params,
            MemoryBudget::bytes(floor - 1),
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            crate::budget::BudgetError::BelowOneRow {
                budget_bytes: floor - 1,
                bytes_per_row: floor
            }
        );
        // Unchecked path: the same budget clamps to a documented one-row
        // chunking instead of panicking anywhere downstream.
        let clamped = plan_streaming(
            1_000,
            1_000,
            4,
            &spec,
            &params,
            MemoryBudget::bytes(floor - 1),
            1,
        );
        assert_eq!(clamped.chunk_rows, 1);
        assert_eq!(clamped.num_chunks, 1_000);
        // At exactly the floor (and for unbounded budgets) checked == unchecked.
        let at_floor = plan_streaming_checked(
            1_000,
            1_000,
            4,
            &spec,
            &params,
            MemoryBudget::bytes(floor),
            1,
        )
        .unwrap();
        assert_eq!(
            at_floor,
            plan_streaming(
                1_000,
                1_000,
                4,
                &spec,
                &params,
                MemoryBudget::bytes(floor),
                1
            )
        );
        assert!(plan_streaming_checked(
            1_000,
            1_000,
            4,
            &spec,
            &params,
            MemoryBudget::unbounded(),
            1
        )
        .is_ok());
    }

    #[test]
    fn streaming_plan_switches_to_one_buffered_pass_beyond_the_cursor_budget() {
        let params = CacheParams::paper_pentium4();
        let spec = QuerySpec::symmetric(1);
        // Small smaller relation: few clusters, plain scatter, one pass.
        let plain = plan_streaming(
            1_000_000,
            1_000_000,
            4,
            &spec,
            &params,
            MemoryBudget::unbounded(),
            1,
        );
        assert_eq!(plain.scatter, ScatterMode::Plain);
        assert_eq!(plain.cluster_spec.passes, 1);
        // A smaller relation needing 2^12 clusters: beyond the 2048-cursor
        // plain budget, within the write-combining staging budget — the
        // planner now runs ONE buffered pass where the seed rule ran two
        // plain ones, and prices it with the buffered cost term.
        let buffered = plan_streaming(
            1_000_000,
            300_000_000,
            4,
            &spec,
            &params,
            MemoryBudget::unbounded(),
            1,
        );
        assert_eq!(buffered.cluster_spec.bits, 12);
        assert_eq!(buffered.scatter, ScatterMode::Buffered);
        assert_eq!(buffered.cluster_spec.passes, 1);
        // The buffered prediction undercuts the same plan priced as the
        // seed's two plain passes.
        let seed_style = StreamingPlan {
            cluster_spec: RadixClusterSpec {
                passes: 2,
                ..buffered.cluster_spec
            },
            scatter: ScatterMode::Plain,
            ..buffered
        };
        let n = 1_000_000;
        let fast = predict_streaming_cost(&buffered, 300_000_000, n, &spec, &params);
        let slow = predict_streaming_cost(&seed_style, 300_000_000, n, &spec, &params);
        assert!(fast < slow, "buffered {fast} vs seed-style {slow}");
    }

    #[test]
    fn streaming_plan_adapts_to_value_width_and_thread_count() {
        let params = CacheParams::paper_pentium4();
        let spec = QuerySpec::symmetric(1);
        let n = 1_000_000;
        // Wider records (the NSM case) need more radix bits to keep one
        // cluster's slice of the relation cache-resident.
        let narrow = plan_streaming(n, n, 4, &spec, &params, MemoryBudget::unbounded(), 1);
        let wide = plan_streaming(n, n, 64, &spec, &params, MemoryBudget::unbounded(), 1);
        assert!(wide.cluster_spec.bits > narrow.cluster_spec.bits);
        // More concurrent workers shrink the per-worker insertion window
        // (each worker owns only a share of the cache).
        let eight = plan_streaming(n, n, 4, &spec, &params, MemoryBudget::unbounded(), 8);
        assert!(eight.window_bytes < narrow.window_bytes);
    }

    #[test]
    fn streaming_cost_exceeds_monolithic_and_converges() {
        let params = CacheParams::paper_pentium4();
        let spec = QuerySpec::symmetric(1);
        let n = 4_000_000;
        let monolithic = predict_streaming_cost(
            &plan_streaming(n, n, 4, &spec, &params, MemoryBudget::unbounded(), 1),
            n,
            n,
            &spec,
            &params,
        );
        for denom in [4usize, 64] {
            let plan = plan_streaming(
                n,
                n,
                4,
                &spec,
                &params,
                MemoryBudget::fraction_of(n * 4, denom),
                1,
            );
            let streamed = predict_streaming_cost(&plan, n, n, &spec, &params);
            // At the *same* window, chunking never predicts cheaper than one
            // chunk (the restart term is pure overhead)…
            let one_chunk = StreamingPlan {
                chunk_rows: n,
                num_chunks: 1,
                ..plan
            };
            let reference = predict_streaming_cost(&one_chunk, n, n, &spec, &params);
            assert!(
                streamed >= reference,
                "denom {denom}: {streamed} vs {reference}"
            );
            // …and the streaming overhead stays moderate relative to the
            // monolithic run: bounded memory is not an order-of-magnitude
            // regression under the model.  (Cost is not monotone in the
            // budget: shrinking chunks also shrinks the clamped insertion
            // window, which can make the per-insert term cheaper.)
            assert!(
                streamed < monolithic * 10.0,
                "denom {denom}: {streamed} vs {monolithic}"
            );
        }
    }

    #[test]
    fn cost_planner_agrees_with_heuristic_planner_at_the_extremes() {
        let params = CacheParams::paper_pentium4();
        let small = JoinWorkloadBuilder::equal(2_000, 1).build();
        let by_cost = plan_by_cost(
            &small.larger,
            &small.smaller,
            &QuerySpec::symmetric(1),
            &params,
        );
        let heuristic = DsmPostProjection::plan(&small.larger, &small.smaller, &params);
        assert_eq!(by_cost.second_side, heuristic.second_side);
    }

    #[test]
    fn planned_codes_still_produce_correct_results() {
        use crate::strategy::reference::{reference_rows, result_rows};
        let w = JoinWorkloadBuilder::equal(3_000, 2).seed(55).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let plan = plan_by_cost(&w.larger, &w.smaller, &spec, &params);
        let out = plan.execute(&w.larger, &w.smaller, &spec, &params);
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&w.larger, &w.smaller, &spec)
        );
    }
}
