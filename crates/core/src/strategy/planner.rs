//! A cost-model-driven planner for the DSM post-projection codes.
//!
//! §4.1 ends with the observation that which projection strategy is cheapest
//! "depends on the number of projection columns in both relations, the data
//! types in these projection columns, and the number of tuples in both input
//! relations", and §1.1 motivates the Appendix-A cost models precisely as the
//! tool to "draw conclusions on their optimal parameter settings".  This
//! module closes that loop: it prices every `u/s/c × u/d` code combination
//! with the `rdx-cost` formulas and picks the cheapest, giving a planner that
//! adapts to π, N and the cache parameters instead of using only the
//! fits-in-cache rule of [`DsmPostProjection::plan`].

use crate::hash::significant_bits;
use crate::strategy::common::{ProjectionCode, SecondSideCode};
use crate::strategy::{DsmPostProjection, QuerySpec};
use rdx_cache::CacheParams;
use rdx_cost::algorithms as cost;
use rdx_cost::DataRegion;
use rdx_dsm::DsmRelation;

/// Value width of the paper's integer attribute columns.
const VALUE_WIDTH: usize = 4;

/// Predicted cost (milliseconds on the modeled platform) of the *projection
/// phase* of a DSM post-projection with the given codes.
///
/// The join phase is identical for every code combination, so it is omitted;
/// the comparison between code combinations is unaffected.
pub fn predict_projection_cost(
    first: ProjectionCode,
    second: SecondSideCode,
    larger_tuples: usize,
    smaller_tuples: usize,
    result_tuples: usize,
    spec: &QuerySpec,
    params: &CacheParams,
) -> f64 {
    let cache = params.cache_capacity();
    let larger_col = DataRegion::new(larger_tuples, VALUE_WIDTH);
    let smaller_col = DataRegion::new(smaller_tuples, VALUE_WIDTH);
    let join_index = DataRegion::new(result_tuples, 8);

    // --- first (larger) side -------------------------------------------------
    let first_bits = optimal_bits(larger_tuples, cache);
    let first_cost = match first {
        ProjectionCode::Unsorted => {
            spec.project_larger as f64
                * cost::positional_join_unsorted(result_tuples, larger_col, VALUE_WIDTH, params)
                    .millis(params)
        }
        ProjectionCode::Sorted => {
            let sort_bits = significant_bits(larger_tuples);
            cost::radix_cluster(join_index, sort_bits, 2, params).millis(params)
                + spec.project_larger as f64
                    * cost::positional_join_sorted(result_tuples, larger_col, VALUE_WIDTH, params)
                        .millis(params)
        }
        ProjectionCode::PartialCluster => {
            cost::radix_cluster(join_index, first_bits, passes_for(first_bits), params)
                .millis(params)
                + spec.project_larger as f64
                    * cost::positional_join_clustered(
                        result_tuples,
                        larger_col,
                        VALUE_WIDTH,
                        first_bits,
                        params,
                    )
                    .millis(params)
        }
    };

    // --- second (smaller) side -----------------------------------------------
    let second_bits = optimal_bits(smaller_tuples, cache);
    let window = cache / 2;
    let second_cost = match second {
        SecondSideCode::Unsorted => {
            spec.project_smaller as f64
                * cost::positional_join_unsorted(result_tuples, smaller_col, VALUE_WIDTH, params)
                    .millis(params)
        }
        SecondSideCode::Decluster => {
            cost::radix_cluster(join_index, second_bits, passes_for(second_bits), params)
                .millis(params)
                + spec.project_smaller as f64
                    * (cost::positional_join_clustered(
                        result_tuples,
                        smaller_col,
                        VALUE_WIDTH,
                        second_bits,
                        params,
                    )
                    .millis(params)
                        + cost::radix_decluster(
                            result_tuples,
                            VALUE_WIDTH,
                            second_bits,
                            window,
                            params,
                        )
                        .millis(params))
        }
    };

    first_cost + second_cost
}

/// Picks the cheapest `u/s/c × u/d` combination under the cost model.
pub fn plan_by_cost(
    larger: &DsmRelation,
    smaller: &DsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> DsmPostProjection {
    plan_by_cost_with_threads(larger, smaller, spec, params, 1)
}

/// The `threads`-aware planner: prices every code combination against each
/// core's *share* of the cache ([`CacheParams::per_core_share`]) instead of
/// the whole of it.
///
/// With `threads` workers active, the per-core effective cache shrinks to
/// `C / threads`, which moves the knees of the Appendix-A cost curves: a
/// side whose projection columns fit a full cache may exceed a quarter of
/// one, flipping the optimal code from `u` to `c`/`d` — and the narrower
/// per-core cache also raises the radix-bit counts the reordering codes are
/// priced at.  The returned plan is what the parallel executors in
/// `rdx-exec` should run.
pub fn plan_by_cost_with_threads(
    larger: &DsmRelation,
    smaller: &DsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
    threads: usize,
) -> DsmPostProjection {
    let params = &params.per_core_share(threads);
    // With hit rate unknown at planning time, assume |result| ≈ |larger|, the
    // paper's h = 1 default.
    let result_tuples = larger.cardinality();
    let mut best = (
        f64::INFINITY,
        DsmPostProjection::plan(larger, smaller, params),
    );
    for first in [
        ProjectionCode::Unsorted,
        ProjectionCode::Sorted,
        ProjectionCode::PartialCluster,
    ] {
        for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
            let predicted = predict_projection_cost(
                first,
                second,
                larger.cardinality(),
                smaller.cardinality(),
                result_tuples,
                spec,
                params,
            );
            if predicted < best.0 {
                best = (predicted, DsmPostProjection::with_codes(first, second));
            }
        }
    }
    best.1
}

/// The §3.1 cluster-count rule, shared with `RadixClusterSpec::optimal_partial`.
fn optimal_bits(column_tuples: usize, cache_bytes: usize) -> u32 {
    let bytes = column_tuples.saturating_mul(VALUE_WIDTH);
    let mut bits = 0u32;
    while (bytes >> bits) > cache_bytes && bits < 30 {
        bits += 1;
    }
    bits
}

fn passes_for(bits: u32) -> u32 {
    if bits > 11 {
        2
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_workload::JoinWorkloadBuilder;

    #[test]
    fn small_relations_plan_unsorted() {
        let w = JoinWorkloadBuilder::equal(5_000, 1).build();
        let params = CacheParams::paper_pentium4();
        let plan = plan_by_cost(&w.larger, &w.smaller, &QuerySpec::symmetric(1), &params);
        assert_eq!(plan.first_side, ProjectionCode::Unsorted);
        assert_eq!(plan.second_side, SecondSideCode::Unsorted);
    }

    #[test]
    fn large_relations_plan_reordering() {
        let w = JoinWorkloadBuilder::equal(4_000_000, 1).build();
        let params = CacheParams::paper_pentium4();
        let plan = plan_by_cost(&w.larger, &w.smaller, &QuerySpec::symmetric(4), &params);
        assert_ne!(plan.first_side, ProjectionCode::Unsorted);
        assert_eq!(plan.second_side, SecondSideCode::Decluster);
    }

    #[test]
    fn predicted_costs_reproduce_fig8_orderings() {
        let params = CacheParams::paper_pentium4();
        let n = 8_000_000;
        let spec_low = QuerySpec::symmetric(1);
        let spec_high = QuerySpec::symmetric(64);
        let price = |first, spec: &QuerySpec| {
            predict_projection_cost(first, SecondSideCode::Unsorted, n, n, n, spec, &params)
        };
        // Large N: unsorted loses to both reordering codes at high π (Fig. 8).
        assert!(
            price(ProjectionCode::Unsorted, &spec_high) > price(ProjectionCode::Sorted, &spec_high)
        );
        assert!(
            price(ProjectionCode::Unsorted, &spec_high)
                > price(ProjectionCode::PartialCluster, &spec_high)
        );
        // At small π, partial-cluster beats full sorting (Fig. 8).
        assert!(
            price(ProjectionCode::PartialCluster, &spec_low)
                < price(ProjectionCode::Sorted, &spec_low)
        );
    }

    #[test]
    fn thread_count_moves_the_planning_knee() {
        // A relation whose columns fit the whole cache but not a per-core
        // share: the single-threaded planner keeps the unsorted code while
        // some higher thread count must switch the second side to decluster.
        let params = CacheParams::paper_pentium4();
        let w = JoinWorkloadBuilder::equal(60_000, 1).build();
        let spec = QuerySpec::symmetric(4);
        let single = plan_by_cost_with_threads(&w.larger, &w.smaller, &spec, &params, 1);
        assert_eq!(single, plan_by_cost(&w.larger, &w.smaller, &spec, &params));
        let plans: Vec<_> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&t| plan_by_cost_with_threads(&w.larger, &w.smaller, &spec, &params, t))
            .collect();
        // Planning must stay well-defined at every thread count, and the
        // effective cache only shrinks — once a reordering code is chosen it
        // never reverts to unsorted at higher thread counts.
        let first_reorder = plans
            .iter()
            .position(|p| p.second_side == SecondSideCode::Decluster);
        if let Some(i) = first_reorder {
            for p in &plans[i..] {
                assert_eq!(p.second_side, SecondSideCode::Decluster);
            }
        }
    }

    #[test]
    fn cost_planner_agrees_with_heuristic_planner_at_the_extremes() {
        let params = CacheParams::paper_pentium4();
        let small = JoinWorkloadBuilder::equal(2_000, 1).build();
        let by_cost = plan_by_cost(
            &small.larger,
            &small.smaller,
            &QuerySpec::symmetric(1),
            &params,
        );
        let heuristic = DsmPostProjection::plan(&small.larger, &small.smaller, &params);
        assert_eq!(by_cost.second_side, heuristic.second_side);
    }

    #[test]
    fn planned_codes_still_produce_correct_results() {
        use crate::strategy::reference::{reference_rows, result_rows};
        let w = JoinWorkloadBuilder::equal(3_000, 2).seed(55).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let plan = plan_by_cost(&w.larger, &w.smaller, &spec, &params);
        let out = plan.execute(&w.larger, &w.smaller, &spec, &params);
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&w.larger, &w.smaller, &spec)
        );
    }
}
