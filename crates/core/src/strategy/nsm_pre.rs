//! NSM pre-projection — the conventional RDBMS plan ("NSM-pre-hash" and
//! "NSM-pre-phash" in Fig. 10).
//!
//! The table scans use the NSM record-projection routine to extract the key
//! plus the projected attributes from each ω-wide record into a pipeline
//! tuple; those tuples then flow through either a naive Hash-Join or a
//! cache-conscious Partitioned Hash-Join.  The big Fig. 10a gap between the
//! two variants is the point the paper makes about Partitioned Hash-Join
//! "carrying generic merit" beyond MonetDB.

use crate::error::{check_projection_widths, RdxError};
use crate::hash::hash_key;
use crate::join::{join_cluster_spec, HashTable};
use crate::strategy::{PhaseTimings, QuerySpec, StrategyOutcome};
use rdx_cache::CacheParams;
use rdx_dsm::{Column, ResultRelation};
use rdx_nsm::NsmRelation;
use std::time::Instant;

/// Pipeline tuples extracted by the scan: key + projected values, row-major.
struct Pipeline {
    keys: Vec<u64>,
    values: Vec<i32>,
    stride: usize,
}

impl Pipeline {
    /// The NSM scan: per record, run the record projection routine over the
    /// run-time attribute list (attributes `1..=projected`, attribute 0 being
    /// the key).
    fn scan(rel: &NsmRelation, projected: usize) -> Self {
        let n = rel.cardinality();
        let projection: Vec<usize> = (1..=projected).collect();
        let mut keys = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n * projected);
        for row in 0..n {
            keys.push(rel.key(row));
            rel.project_record(row, &projection, &mut values);
        }
        Pipeline {
            keys,
            values,
            stride: projected,
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn row(&self, i: usize) -> &[i32] {
        &self.values[i * self.stride..(i + 1) * self.stride]
    }

    /// Single- or multi-pass Radix-Cluster of the pipeline tuples on the
    /// hashed key, moving the projected payload along on every pass.
    fn radix_cluster(self, bits: u32, passes: u32) -> (Self, Vec<usize>) {
        let n = self.len();
        let mut cur = self;
        let mut segments = vec![0, n];
        if bits == 0 {
            return (cur, segments);
        }
        let passes = passes.min(bits).max(1);
        let base = bits / passes;
        let extra = bits % passes;
        let mut remaining = bits;
        for p in 0..passes {
            let bp = if p < extra { base + 1 } else { base };
            remaining -= bp;
            let hp = 1usize << bp;
            let mask = (hp - 1) as u64;
            let mut out_keys = vec![0u64; n];
            let mut out_values = vec![0i32; cur.values.len()];
            let mut new_segments = Vec::with_capacity((segments.len() - 1) * hp + 1);
            let mut counts = vec![0usize; hp];
            for seg in segments.windows(2) {
                let (s, e) = (seg[0], seg[1]);
                counts.iter_mut().for_each(|c| *c = 0);
                for &k in &cur.keys[s..e] {
                    counts[((hash_key(k) >> remaining) & mask) as usize] += 1;
                }
                let mut offsets = vec![0usize; hp];
                let mut cursor = s;
                for b in 0..hp {
                    offsets[b] = cursor;
                    new_segments.push(cursor);
                    cursor += counts[b];
                }
                for i in s..e {
                    let b = ((hash_key(cur.keys[i]) >> remaining) & mask) as usize;
                    let dst = offsets[b];
                    offsets[b] += 1;
                    out_keys[dst] = cur.keys[i];
                    out_values[dst * cur.stride..(dst + 1) * cur.stride]
                        .copy_from_slice(cur.row(i));
                }
            }
            new_segments.push(n);
            cur = Pipeline {
                keys: out_keys,
                values: out_values,
                stride: cur.stride,
            };
            segments = new_segments;
        }
        (cur, segments)
    }
}

fn join_partitions(
    larger: &Pipeline,
    larger_bounds: &[usize],
    smaller: &Pipeline,
    smaller_bounds: &[usize],
    spec: &QuerySpec,
) -> Vec<Vec<i32>> {
    let mut result_cols: Vec<Vec<i32>> = vec![Vec::new(); spec.total()];
    for p in 0..larger_bounds.len() - 1 {
        let (ls, le) = (larger_bounds[p], larger_bounds[p + 1]);
        let (ss, se) = (smaller_bounds[p], smaller_bounds[p + 1]);
        if ls == le || ss == se {
            continue;
        }
        let build_keys = &smaller.keys[ss..se];
        let table = HashTable::build(build_keys);
        for l in ls..le {
            for pos in table.probe_matches(larger.keys[l], build_keys) {
                let s = ss + pos as usize;
                for (a, &v) in larger.row(l).iter().enumerate() {
                    result_cols[a].push(v);
                }
                for (b, &v) in smaller.row(s).iter().enumerate() {
                    result_cols[spec.project_larger + b].push(v);
                }
            }
        }
    }
    result_cols
}

fn to_outcome(result_cols: Vec<Vec<i32>>, timings: PhaseTimings) -> StrategyOutcome {
    let mut result = ResultRelation::new();
    for col in result_cols {
        result.push_column(Column::from_vec(col));
    }
    StrategyOutcome { result, timings }
}

/// NSM pre-projection with a **naive** (non-partitioned) Hash-Join —
/// "NSM-pre-hash", the no-cache-optimisation baseline of Fig. 10a.
///
/// **Legacy surface**: thin panicking wrapper over
/// [`try_nsm_pre_projection_hash`].
pub fn nsm_pre_projection_hash(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    spec: &QuerySpec,
) -> StrategyOutcome {
    try_nsm_pre_projection_hash(larger, smaller, spec).unwrap_or_else(|e| panic!("{e}"))
}

/// [`nsm_pre_projection_hash`] with validation failures reported as typed
/// [`RdxError`]s.
pub fn try_nsm_pre_projection_hash(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    spec: &QuerySpec,
) -> Result<StrategyOutcome, RdxError> {
    check_projection_widths(
        spec.project_larger,
        larger.width().saturating_sub(1),
        spec.project_smaller,
        smaller.width().saturating_sub(1),
    )?;
    let mut timings = PhaseTimings::default();
    let t = Instant::now();
    let larger_pipe = Pipeline::scan(larger, spec.project_larger);
    let smaller_pipe = Pipeline::scan(smaller, spec.project_smaller);
    let cols = join_partitions(
        &larger_pipe,
        &[0, larger_pipe.len()],
        &smaller_pipe,
        &[0, smaller_pipe.len()],
        spec,
    );
    timings.join = t.elapsed();
    Ok(to_outcome(cols, timings))
}

/// NSM pre-projection with **Partitioned Hash-Join** — "NSM-pre-phash", the
/// conventional plan upgraded with the paper's cache-conscious join.
///
/// **Legacy surface**: thin panicking wrapper over
/// [`try_nsm_pre_projection_phash`].
pub fn nsm_pre_projection_phash(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> StrategyOutcome {
    try_nsm_pre_projection_phash(larger, smaller, spec, params).unwrap_or_else(|e| panic!("{e}"))
}

/// [`nsm_pre_projection_phash`] with validation failures reported as typed
/// [`RdxError`]s.
pub fn try_nsm_pre_projection_phash(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> Result<StrategyOutcome, RdxError> {
    check_projection_widths(
        spec.project_larger,
        larger.width().saturating_sub(1),
        spec.project_smaller,
        smaller.width().saturating_sub(1),
    )?;
    let mut timings = PhaseTimings::default();
    let t = Instant::now();
    let larger_pipe = Pipeline::scan(larger, spec.project_larger);
    let smaller_pipe = Pipeline::scan(smaller, spec.project_smaller);
    // Wider pipeline tuples shrink the per-partition tuple budget.
    let build_tuple_bytes = 12 + 4 * spec.project_smaller;
    let join_spec = join_cluster_spec(
        smaller.cardinality() * build_tuple_bytes / 12,
        params.cache_capacity(),
    );
    let (larger_clustered, larger_bounds) =
        larger_pipe.radix_cluster(join_spec.bits, join_spec.passes);
    let (smaller_clustered, smaller_bounds) =
        smaller_pipe.radix_cluster(join_spec.bits, join_spec.passes);
    let cols = join_partitions(
        &larger_clustered,
        &larger_bounds,
        &smaller_clustered,
        &smaller_bounds,
        spec,
    );
    timings.join = t.elapsed();
    Ok(to_outcome(cols, timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::reference::{reference_rows, result_rows};
    use rdx_workload::{HitRate, JoinWorkloadBuilder};

    #[test]
    fn hash_and_phash_agree_with_reference() {
        let w = JoinWorkloadBuilder::equal(2_000, 3).seed(12).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let expected = reference_rows(&w.larger, &w.smaller, &spec);
        let naive = nsm_pre_projection_hash(&w.larger_nsm, &w.smaller_nsm, &spec);
        let phash = nsm_pre_projection_phash(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
        assert_eq!(result_rows(&naive.result), expected);
        assert_eq!(result_rows(&phash.result), expected);
    }

    #[test]
    fn respects_hit_rate_three() {
        let w = JoinWorkloadBuilder::equal(1_500, 1)
            .hit_rate(HitRate(3.0))
            .seed(3)
            .build();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let out = nsm_pre_projection_phash(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
        assert_eq!(out.result.cardinality(), w.expected_matches);
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&w.larger, &w.smaller, &spec)
        );
    }

    #[test]
    #[should_panic]
    fn projecting_more_than_record_width_panics() {
        let w = JoinWorkloadBuilder::equal(100, 1).build();
        nsm_pre_projection_hash(&w.larger_nsm, &w.smaller_nsm, &QuerySpec::symmetric(4));
    }

    #[test]
    fn try_variants_report_over_projection_as_typed_errors() {
        use crate::error::{RdxError, Side};
        let w = JoinWorkloadBuilder::equal(100, 1).build();
        let params = CacheParams::tiny_for_tests();
        let spec = QuerySpec::symmetric(4);
        let want = RdxError::TooManyColumns {
            side: Side::Larger,
            requested: 4,
            available: 1,
        };
        assert_eq!(
            try_nsm_pre_projection_hash(&w.larger_nsm, &w.smaller_nsm, &spec).unwrap_err(),
            want
        );
        assert_eq!(
            try_nsm_pre_projection_phash(&w.larger_nsm, &w.smaller_nsm, &spec, &params)
                .unwrap_err(),
            want
        );
    }
}
