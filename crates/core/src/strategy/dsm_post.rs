//! DSM post-projection (paper §3, §4.1) — the strategy the paper advocates.
//!
//! 1. Join only the key columns with Partitioned Hash-Join → join index.
//! 2. First (larger) side: reorder the join index with one of the `u`/`s`/`c`
//!    codes, then project each column with a Positional-Join.
//! 3. Second (smaller) side: `u` (unsorted Positional-Joins) or `d`
//!    (partial Radix-Cluster + clustered Positional-Join + Radix-Decluster per
//!    column, Fig. 4).

use crate::error::{check_projection_widths, RdxError};
use crate::join::{join_cluster_spec, partitioned_hash_join};
use crate::strategy::common::{
    order_join_index, project_first_side, project_second_side_decluster,
    project_second_side_unsorted, ProjectionCode, SecondSideCode,
};
use crate::strategy::{PhaseTimings, QuerySpec, StrategyOutcome};
use rdx_cache::CacheParams;
use rdx_dsm::{Column, DsmRelation, ResultRelation};
use std::time::Instant;

/// Width of the fixed-size attribute values (the paper's all-integer columns).
const VALUE_WIDTH: usize = 4;

/// A planned DSM post-projection: which one-letter code to use on each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DsmPostProjection {
    /// Code for the first (larger) projection side: `u`, `s` or `c`.
    pub first_side: ProjectionCode,
    /// Code for the second (smaller) projection side: `u` or `d`.
    pub second_side: SecondSideCode,
}

impl DsmPostProjection {
    /// The paper's planning rule (§4.1 / Fig. 10c legend): reordering only
    /// pays off when the projection columns of a side exceed the CPU cache;
    /// below that, unsorted processing wins because the columns stay cached.
    pub fn plan(larger: &DsmRelation, smaller: &DsmRelation, params: &CacheParams) -> Self {
        let cache = params.cache_capacity();
        let first_side = if larger.cardinality() * VALUE_WIDTH <= cache {
            ProjectionCode::Unsorted
        } else {
            ProjectionCode::PartialCluster
        };
        let second_side = if smaller.cardinality() * VALUE_WIDTH <= cache {
            SecondSideCode::Unsorted
        } else {
            SecondSideCode::Decluster
        };
        DsmPostProjection {
            first_side,
            second_side,
        }
    }

    /// An explicit code combination (used by the Fig. 8 strategy sweep).
    pub fn with_codes(first_side: ProjectionCode, second_side: SecondSideCode) -> Self {
        DsmPostProjection {
            first_side,
            second_side,
        }
    }

    /// The `left/right` label of the Fig. 10c legend, e.g. `"c/d"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.first_side.letter(), self.second_side.letter())
    }

    /// Executes the strategy.
    ///
    /// **Legacy surface**: a documented thin wrapper over
    /// [`DsmPostProjection::try_execute`] that panics instead of returning
    /// the typed [`RdxError`].  New code — and everything behind the
    /// `rdx-api` `Session` front door — goes through the fallible path.
    ///
    /// # Panics
    /// Panics if the query asks for more projection columns than a relation
    /// has (`RdxError::TooManyColumns`).
    pub fn execute(
        &self,
        larger: &DsmRelation,
        smaller: &DsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
    ) -> StrategyOutcome {
        self.try_execute(larger, smaller, spec, params)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes the strategy, reporting validation failures as typed
    /// [`RdxError`]s instead of panicking.  Degenerate inputs that *can*
    /// run — empty relations, zero-width specs — produce an empty (or
    /// column-less) result rather than an error.
    pub fn try_execute(
        &self,
        larger: &DsmRelation,
        smaller: &DsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
    ) -> Result<StrategyOutcome, RdxError> {
        check_projection_widths(
            spec.project_larger,
            larger.width(),
            spec.project_smaller,
            smaller.width(),
        )?;
        let mut timings = PhaseTimings::default();

        // Phase 1: join index over the key columns only.
        let t = Instant::now();
        let join_spec = join_cluster_spec(smaller.cardinality(), params.cache_capacity());
        let join_index =
            partitioned_hash_join(larger.key().as_slice(), smaller.key().as_slice(), join_spec);
        timings.join = t.elapsed();

        // Phase 2a: reorder for the first side.
        let t = Instant::now();
        let (first_oids, second_oids) = order_join_index(
            &join_index,
            self.first_side,
            larger.cardinality(),
            VALUE_WIDTH,
            params,
        );
        timings.reorder = t.elapsed();

        // Phase 2b: project the first side.
        let t = Instant::now();
        let first_columns = project_first_side(&first_oids, spec.project_larger, |oid, a| {
            larger.attr(a).value(oid as usize)
        });
        timings.project_larger = t.elapsed();

        // Phase 3: project the second side.
        let t = Instant::now();
        let second_columns = match self.second_side {
            SecondSideCode::Unsorted => {
                let cols =
                    project_second_side_unsorted(&second_oids, spec.project_smaller, |oid, b| {
                        smaller.attr(b).value(oid as usize)
                    });
                timings.project_smaller = t.elapsed();
                cols
            }
            SecondSideCode::Decluster => {
                let (cols, _clusters) = project_second_side_decluster(
                    &second_oids,
                    spec.project_smaller,
                    |oid, b| smaller.attr(b).value(oid as usize),
                    smaller.cardinality(),
                    VALUE_WIDTH,
                    params,
                );
                timings.decluster = t.elapsed();
                cols
            }
        };

        let mut result = ResultRelation::new();
        for col in first_columns {
            result.push_column(Column::from_vec(col));
        }
        for col in second_columns {
            result.push_column(Column::from_vec(col));
        }
        Ok(StrategyOutcome { result, timings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::reference::{reference_rows, result_rows};
    use rdx_workload::JoinWorkloadBuilder;

    fn check_all_codes(n: usize, pi: usize) {
        let w = JoinWorkloadBuilder::equal(n, pi).seed(5).build();
        let spec = QuerySpec::symmetric(pi);
        let params = CacheParams::tiny_for_tests();
        let expected = reference_rows(&w.larger, &w.smaller, &spec);
        for first in [
            ProjectionCode::Unsorted,
            ProjectionCode::Sorted,
            ProjectionCode::PartialCluster,
        ] {
            for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
                let strat = DsmPostProjection::with_codes(first, second);
                let out = strat.execute(&w.larger, &w.smaller, &spec, &params);
                assert_eq!(
                    result_rows(&out.result),
                    expected,
                    "codes {} produced a wrong result",
                    strat.label()
                );
                assert_eq!(out.result.cardinality(), w.expected_matches);
            }
        }
    }

    #[test]
    fn every_code_combination_is_correct() {
        check_all_codes(3_000, 2);
    }

    #[test]
    fn works_with_asymmetric_projection() {
        let w = JoinWorkloadBuilder::equal(1_000, 3).seed(8).build();
        let spec = QuerySpec {
            project_larger: 3,
            project_smaller: 1,
        };
        let params = CacheParams::tiny_for_tests();
        let out = DsmPostProjection::plan(&w.larger, &w.smaller, &params)
            .execute(&w.larger, &w.smaller, &spec, &params);
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&w.larger, &w.smaller, &spec)
        );
        assert_eq!(out.result.num_columns(), 4);
    }

    #[test]
    fn planner_picks_unsorted_for_cache_resident_columns() {
        let w = JoinWorkloadBuilder::equal(500, 1).build();
        let params = CacheParams::paper_pentium4();
        let plan = DsmPostProjection::plan(&w.larger, &w.smaller, &params);
        assert_eq!(plan.first_side, ProjectionCode::Unsorted);
        assert_eq!(plan.second_side, SecondSideCode::Unsorted);
        assert_eq!(plan.label(), "u/u");
    }

    #[test]
    fn planner_picks_cluster_and_decluster_for_large_relations() {
        let w = JoinWorkloadBuilder::equal(4_000, 1).build();
        // Tiny cache (8 KB) makes 4K × 4 B columns "hard".
        let params = CacheParams::tiny_for_tests();
        let plan = DsmPostProjection::plan(&w.larger, &w.smaller, &params);
        assert_eq!(plan.first_side, ProjectionCode::PartialCluster);
        assert_eq!(plan.second_side, SecondSideCode::Decluster);
        assert_eq!(plan.label(), "c/d");
    }

    #[test]
    fn timings_are_populated() {
        let w = JoinWorkloadBuilder::equal(2_000, 1).build();
        let params = CacheParams::tiny_for_tests();
        let out = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        )
        .execute(&w.larger, &w.smaller, &QuerySpec::symmetric(1), &params);
        assert!(out.timings.total().as_nanos() > 0);
        assert!(out.timings.join.as_nanos() > 0);
    }

    #[test]
    #[should_panic]
    fn over_projection_is_rejected() {
        let w = JoinWorkloadBuilder::equal(100, 1).build();
        let params = CacheParams::tiny_for_tests();
        DsmPostProjection::plan(&w.larger, &w.smaller, &params).execute(
            &w.larger,
            &w.smaller,
            &QuerySpec::symmetric(5),
            &params,
        );
    }

    #[test]
    fn try_execute_reports_over_projection_as_typed_error() {
        use crate::error::{RdxError, Side};
        let w = JoinWorkloadBuilder::equal(100, 1).build();
        let params = CacheParams::tiny_for_tests();
        let plan = DsmPostProjection::plan(&w.larger, &w.smaller, &params);
        let err = plan
            .try_execute(&w.larger, &w.smaller, &QuerySpec::symmetric(5), &params)
            .unwrap_err();
        assert_eq!(
            err,
            RdxError::TooManyColumns {
                side: Side::Larger,
                requested: 5,
                available: 1
            }
        );
        // Asymmetric over-projection pins the smaller side.
        let err = plan
            .try_execute(
                &w.larger,
                &w.smaller,
                &QuerySpec {
                    project_larger: 1,
                    project_smaller: 5,
                },
                &params,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RdxError::TooManyColumns {
                side: Side::Smaller,
                ..
            }
        ));
    }

    #[test]
    fn zero_width_spec_is_a_degenerate_success_not_an_error() {
        let w = JoinWorkloadBuilder::equal(200, 1).seed(2).build();
        let params = CacheParams::tiny_for_tests();
        let out = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        )
        .try_execute(&w.larger, &w.smaller, &QuerySpec::symmetric(0), &params)
        .expect("zero-width spec must run");
        assert_eq!(out.result.num_columns(), 0);
    }

    #[test]
    fn empty_relations_are_a_degenerate_success_not_an_error() {
        use rdx_dsm::Column;
        let empty = DsmRelation::new(Column::from_vec(vec![]), vec![Column::from_vec(vec![])]);
        let params = CacheParams::tiny_for_tests();
        for first in [
            ProjectionCode::Unsorted,
            ProjectionCode::Sorted,
            ProjectionCode::PartialCluster,
        ] {
            for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
                let out = DsmPostProjection::with_codes(first, second)
                    .try_execute(&empty, &empty, &QuerySpec::symmetric(1), &params)
                    .expect("empty relations must run");
                assert_eq!(out.result.cardinality(), 0);
                assert_eq!(out.result.num_columns(), 2);
            }
        }
    }
}
