//! DSM post-projection with a *sparse* smaller side (paper §4.1 "Sparse
//! Projections", the error bars of Fig. 10).
//!
//! When the smaller join input is a selection over a larger base table, the
//! join runs over the selected keys, but the projection columns still live in
//! the base table.  The post-projection pipeline is unchanged except that the
//! smaller-side positional joins go through the selection's oid mapping, so
//! every cache line they load from the base column is only fractionally
//! useful — the effect Fig. 11 quantifies in isolation.

use crate::cluster::{radix_cluster_oids, RadixClusterSpec};
use crate::decluster::{choose_window_bytes, radix_decluster};
use crate::error::{check_projection_widths, RdxError};
use crate::join::{join_cluster_spec, partitioned_hash_join};
use crate::positional::positional_join;
use crate::strategy::common::{order_join_index, project_first_side, ProjectionCode};
use crate::strategy::{PhaseTimings, QuerySpec, StrategyOutcome};
use rdx_cache::CacheParams;
use rdx_dsm::{Column, DsmRelation, Oid, ResultRelation, Selection};
// (Selection is used for the public signature; the sparse fetches themselves
// go through the rebased base-table oids.)
use std::time::Instant;

/// Executes DSM post-projection where the smaller relation is `selection` over
/// `smaller_base` (the larger relation is a plain table, as in Fig. 10).
///
/// The join key column of the selection is materialised from the base table
/// (that is what a selection operator produces); the projection columns are
/// *not* materialised — they are fetched sparsely from the base table during
/// the projection phase, which is the whole point of the experiment.
///
/// **Legacy surface**: thin panicking wrapper over
/// [`try_dsm_post_projection_sparse`].
pub fn dsm_post_projection_sparse(
    larger: &DsmRelation,
    smaller_base: &DsmRelation,
    selection: &Selection,
    spec: &QuerySpec,
    params: &CacheParams,
) -> StrategyOutcome {
    try_dsm_post_projection_sparse(larger, smaller_base, selection, spec, params)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`dsm_post_projection_sparse`] with validation failures — over-wide
/// specs, and a selection that does not belong to the supplied base table —
/// reported as typed [`RdxError`]s instead of panics.
pub fn try_dsm_post_projection_sparse(
    larger: &DsmRelation,
    smaller_base: &DsmRelation,
    selection: &Selection,
    spec: &QuerySpec,
    params: &CacheParams,
) -> Result<StrategyOutcome, RdxError> {
    check_projection_widths(
        spec.project_larger,
        larger.width(),
        spec.project_smaller,
        smaller_base.width(),
    )?;
    if selection.base_cardinality() != smaller_base.cardinality() {
        return Err(RdxError::SelectionMismatch {
            selection_base: selection.base_cardinality(),
            base_cardinality: smaller_base.cardinality(),
        });
    }
    let mut timings = PhaseTimings::default();

    // Join phase: the smaller side's key column is the selected keys.
    let t = Instant::now();
    let selected_keys = selection.project_key(smaller_base.key());
    let join_spec = join_cluster_spec(selection.len(), params.cache_capacity());
    let join_index =
        partitioned_hash_join(larger.key().as_slice(), selected_keys.as_slice(), join_spec);
    timings.join = t.elapsed();

    // First side: partial cluster + positional joins, exactly as the dense
    // strategy does.
    let t = Instant::now();
    let code = if larger.cardinality() * 4 <= params.cache_capacity() {
        ProjectionCode::Unsorted
    } else {
        ProjectionCode::PartialCluster
    };
    let (first_oids, second_oids) =
        order_join_index(&join_index, code, larger.cardinality(), 4, params);
    timings.reorder = t.elapsed();

    let t = Instant::now();
    let first_columns = project_first_side(&first_oids, spec.project_larger, |oid, a| {
        larger.attr(a).value(oid as usize)
    });
    timings.project_larger = t.elapsed();

    // Second side: cluster on the *base-table* oids (that is the region the
    // sparse positional joins will touch), then decluster each column.
    let t = Instant::now();
    let base_oids: Vec<Oid> = selection.rebase(&second_oids);
    let cluster_spec =
        RadixClusterSpec::optimal_partial(smaller_base.cardinality(), 4, params.cache_capacity());
    let result_positions: Vec<Oid> = (0..base_oids.len() as Oid).collect();
    let clustered = radix_cluster_oids(&base_oids, &result_positions, cluster_spec);
    let window = choose_window_bytes(4, clustered.num_clusters(), params);
    let mut second_columns = Vec::with_capacity(spec.project_smaller);
    for b in 0..spec.project_smaller {
        // The clustered oids are already base-table oids (rebased above), so
        // this positional join touches the base column sparsely: only the
        // selected fraction of each loaded cache line is useful.
        let clust_values = positional_join(clustered.keys(), smaller_base.attr(b));
        second_columns.push(radix_decluster(
            clust_values.as_slice(),
            clustered.payloads(),
            clustered.bounds(),
            window,
        ));
    }
    timings.decluster = t.elapsed();

    let mut result = ResultRelation::new();
    for col in first_columns.into_iter().chain(second_columns) {
        result.push_column(Column::from_vec(col));
    }
    Ok(StrategyOutcome { result, timings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::reference::{reference_rows, result_rows};
    use rdx_workload::{RelationBuilder, SparseWorkload};

    /// Builds the dense "view" of a sparse workload (the relation a selection
    /// would materialise) so the reference executor can be reused.
    fn materialise_selection(base: &DsmRelation, selection: &Selection) -> DsmRelation {
        let keys = selection.project_key(base.key());
        let mut rel = DsmRelation::from_key(keys);
        for a in 0..base.width() {
            rel.push_attr(base.attr(a).gather(selection.oids()));
        }
        rel
    }

    #[test]
    fn sparse_strategy_matches_dense_reference() {
        for selectivity in [1.0, 0.1, 0.01] {
            let sparse = SparseWorkload::generate(2_000, selectivity, 2, 31);
            let larger = RelationBuilder::new(3_000)
                .columns(2)
                .seed(32)
                .key_domain(2_000)
                .build_dsm();
            let spec = QuerySpec::symmetric(2);
            let params = CacheParams::tiny_for_tests();

            let out = dsm_post_projection_sparse(
                &larger,
                &sparse.base,
                &sparse.selection,
                &spec,
                &params,
            );

            let dense_smaller = materialise_selection(&sparse.base, &sparse.selection);
            let expected = reference_rows(&larger, &dense_smaller, &spec);
            assert_eq!(
                result_rows(&out.result),
                expected,
                "selectivity {selectivity}"
            );
        }
    }

    #[test]
    fn full_selection_equals_dense_strategy() {
        let sparse = SparseWorkload::generate(1_500, 1.0, 1, 40);
        let larger = RelationBuilder::new(1_500)
            .columns(1)
            .seed(41)
            .key_domain(1_500)
            .build_dsm();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let sparse_out =
            dsm_post_projection_sparse(&larger, &sparse.base, &sparse.selection, &spec, &params);
        let dense = crate::strategy::DsmPostProjection::plan(&larger, &sparse.base, &params)
            .execute(&larger, &sparse.base, &spec, &params);
        assert_eq!(result_rows(&sparse_out.result), result_rows(&dense.result));
    }

    #[test]
    #[should_panic]
    fn mismatched_selection_rejected() {
        let sparse = SparseWorkload::generate(100, 0.5, 1, 1);
        let other_base = RelationBuilder::new(50).columns(1).build_dsm();
        let larger = RelationBuilder::new(100).columns(1).build_dsm();
        dsm_post_projection_sparse(
            &larger,
            &other_base,
            &sparse.selection,
            &QuerySpec::symmetric(1),
            &CacheParams::tiny_for_tests(),
        );
    }

    #[test]
    fn try_variant_reports_mismatch_and_over_projection_as_typed_errors() {
        use crate::error::{RdxError, Side};
        let sparse = SparseWorkload::generate(100, 0.5, 1, 1);
        let other_base = RelationBuilder::new(50).columns(1).build_dsm();
        let larger = RelationBuilder::new(100).columns(1).build_dsm();
        let params = CacheParams::tiny_for_tests();
        let err = try_dsm_post_projection_sparse(
            &larger,
            &other_base,
            &sparse.selection,
            &QuerySpec::symmetric(1),
            &params,
        )
        .unwrap_err();
        assert_eq!(
            err,
            RdxError::SelectionMismatch {
                selection_base: sparse.selection.base_cardinality(),
                base_cardinality: 50
            }
        );
        let err = try_dsm_post_projection_sparse(
            &larger,
            &sparse.base,
            &sparse.selection,
            &QuerySpec {
                project_larger: 1,
                project_smaller: 3,
            },
            &params,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RdxError::TooManyColumns {
                side: Side::Smaller,
                requested: 3,
                ..
            }
        ));
    }
}
