//! Incremental result emission for the streaming projection pipeline.
//!
//! The materialising executors ([`crate::strategy::DsmPostProjection`] etc.)
//! return a fully built [`ResultRelation`] — which is exactly what a
//! memory-budgeted pipeline must *not* do.  A [`RowChunkSink`] receives the
//! projected result chunk by chunk instead, in final result order, so the
//! producer never holds more than one chunk of output: the consumer may
//! aggregate it, ship it over a network, or spool it to buffer-manager pages
//! ([`PagedSink`], the §5 "DSM inside an NSM RDBMS" integration) — and only a
//! consumer that explicitly chooses to materialise ([`MaterializeSink`]) pays
//! full-result memory.

use rdx_dsm::{Column, ResultRelation};
use rdx_nsm::{assign_positions, BufferManager, PageId, Placement};

/// Receives the projected result incrementally, chunk by chunk.
///
/// Chunks arrive in ascending, gap-free `first_row` order; every chunk
/// carries all projected columns (larger-side columns first, then
/// smaller-side, as in [`crate::strategy::StrategyOutcome`]), each of the
/// same per-chunk length.
pub trait RowChunkSink {
    /// Called once before the first chunk with the result geometry.
    fn begin(&mut self, total_rows: usize, num_columns: usize) {
        let _ = (total_rows, num_columns);
    }

    /// One chunk of result rows starting at `first_row`.
    fn emit(&mut self, first_row: usize, columns: &[Vec<i32>]);

    /// Called once after the last chunk.
    fn finish(&mut self) {}
}

/// A sink that materialises the stream into a [`ResultRelation`] — the
/// compatibility bridge to the non-streaming executors (and the conformance
/// tests' way of comparing streamed and materialised results byte for byte).
#[derive(Debug, Default)]
pub struct MaterializeSink {
    columns: Vec<Vec<i32>>,
}

impl MaterializeSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, yielding the accumulated result.
    pub fn into_result(self) -> ResultRelation {
        let mut result = ResultRelation::new();
        for col in self.columns {
            result.push_column(Column::from_vec(col));
        }
        result
    }
}

impl RowChunkSink for MaterializeSink {
    fn begin(&mut self, total_rows: usize, num_columns: usize) {
        self.columns = (0..num_columns)
            .map(|_| Vec::with_capacity(total_rows))
            .collect();
    }

    fn emit(&mut self, first_row: usize, columns: &[Vec<i32>]) {
        assert_eq!(columns.len(), self.columns.len(), "column count changed");
        for (acc, chunk) in self.columns.iter_mut().zip(columns) {
            assert_eq!(acc.len(), first_row, "chunk out of order");
            acc.extend_from_slice(chunk);
        }
    }
}

/// A sink that spools result rows into slotted buffer-manager pages, one
/// NSM-style record of `num_columns` 4-byte attributes per row (§5, Fig. 12
/// phase 2 arithmetic via [`assign_positions`]).
///
/// Pages are allocated chunk by chunk, so the resident *new* output per chunk
/// is one chunk's worth of pages — the buffer manager is the spill target,
/// standing in for a paged disk heap.
#[derive(Debug)]
pub struct PagedSink<'a> {
    bm: &'a mut BufferManager,
    first_page: Option<PageId>,
    placements: Vec<Placement>,
    num_columns: usize,
    row_buf: Vec<u8>,
}

impl<'a> PagedSink<'a> {
    /// A sink writing into `bm`.
    pub fn new(bm: &'a mut BufferManager) -> Self {
        PagedSink {
            bm,
            first_page: None,
            placements: Vec::new(),
            num_columns: 0,
            row_buf: Vec::new(),
        }
    }

    /// Bytes of one spooled record.
    pub fn row_bytes(&self) -> usize {
        self.num_columns * 4
    }

    /// Id of the first page written (`None` until the first non-empty chunk).
    pub fn first_page(&self) -> Option<PageId> {
        self.first_page
    }

    /// Where each emitted row landed (page relative to [`Self::first_page`]).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Reads back row `i` as `num_columns` attribute values.
    pub fn read_row(&self, i: usize) -> Vec<i32> {
        let p = self.placements[i];
        let page = self
            .bm
            .page(self.first_page.expect("no rows written") + p.page);
        let bytes = page.read(p.slot, self.row_bytes());
        bytes
            .chunks_exact(4)
            .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect()
    }
}

impl RowChunkSink for PagedSink<'_> {
    fn begin(&mut self, total_rows: usize, num_columns: usize) {
        self.num_columns = num_columns;
        self.placements.reserve(total_rows);
    }

    fn emit(&mut self, first_row: usize, columns: &[Vec<i32>]) {
        assert_eq!(self.placements.len(), first_row, "chunk out of order");
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        if rows == 0 {
            return;
        }
        // Fig. 12 phase 2 for this chunk: fixed-size records, page-aware
        // placement, continuing on fresh pages after the previous chunk.
        let lengths = vec![self.row_bytes(); rows];
        let placements = assign_positions(&lengths, self.bm.page_size());
        let pages = rdx_nsm::paged::pages_needed(&placements);
        let base = self.bm.allocate(pages);
        if self.first_page.is_none() {
            self.first_page = Some(base);
        }
        let page_offset = base - self.first_page.unwrap();
        for (r, p) in placements.into_iter().enumerate() {
            self.row_buf.clear();
            for col in columns {
                self.row_buf.extend_from_slice(&col[r].to_le_bytes());
            }
            self.bm
                .page_mut(base + p.page)
                .write_at(p.slot, p.offset, &self.row_buf);
            self.placements.push(Placement {
                page: page_offset + p.page,
                slot: p.slot,
                offset: p.offset,
            });
        }
    }
}

/// A test/instrumentation sink decorator: forwards to `inner` while
/// recording chunk geometry (count, max rows per chunk) so tests can assert
/// the streaming contract without re-implementing a consumer.
#[derive(Debug)]
pub struct CountingSink<S> {
    /// The decorated sink.
    pub inner: S,
    /// Chunks seen so far.
    pub chunks: usize,
    /// Largest chunk (in rows) seen so far.
    pub max_chunk_rows: usize,
    /// Total rows seen so far.
    pub rows: usize,
}

impl<S> CountingSink<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        CountingSink {
            inner,
            chunks: 0,
            max_chunk_rows: 0,
            rows: 0,
        }
    }
}

impl<S: RowChunkSink> RowChunkSink for CountingSink<S> {
    fn begin(&mut self, total_rows: usize, num_columns: usize) {
        self.inner.begin(total_rows, num_columns);
    }

    fn emit(&mut self, first_row: usize, columns: &[Vec<i32>]) {
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        self.chunks += 1;
        self.max_chunk_rows = self.max_chunk_rows.max(rows);
        self.rows += rows;
        self.inner.emit(first_row, columns);
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(cols: &[&[i32]]) -> Vec<Vec<i32>> {
        cols.iter().map(|c| c.to_vec()).collect()
    }

    #[test]
    fn materialize_sink_concatenates_chunks() {
        let mut sink = MaterializeSink::new();
        sink.begin(5, 2);
        sink.emit(0, &chunk(&[&[1, 2, 3], &[10, 20, 30]]));
        sink.emit(3, &chunk(&[&[4, 5], &[40, 50]]));
        sink.finish();
        let result = sink.into_result();
        assert_eq!(result.cardinality(), 5);
        assert_eq!(result.columns()[0].as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(result.columns()[1].as_slice(), &[10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic]
    fn materialize_sink_rejects_out_of_order_chunks() {
        let mut sink = MaterializeSink::new();
        sink.begin(4, 1);
        sink.emit(2, &chunk(&[&[3, 4]]));
    }

    #[test]
    fn paged_sink_round_trips_rows() {
        let mut bm = BufferManager::new(64);
        let mut sink = PagedSink::new(&mut bm);
        sink.begin(5, 3);
        sink.emit(0, &chunk(&[&[1, 2, 3], &[10, 20, 30], &[100, 200, 300]]));
        sink.emit(3, &chunk(&[&[4, 5], &[40, 50], &[400, 500]]));
        sink.finish();
        assert_eq!(sink.placements().len(), 5);
        for (r, want) in [
            [1, 10, 100],
            [2, 20, 200],
            [3, 30, 300],
            [4, 40, 400],
            [5, 50, 500],
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(sink.read_row(r), want.to_vec(), "row {r}");
        }
        assert!(
            bm.num_pages() > 1,
            "12-byte records on 64-byte pages must spill"
        );
    }

    #[test]
    fn counting_sink_tracks_chunk_geometry() {
        let mut sink = CountingSink::new(MaterializeSink::new());
        sink.begin(4, 1);
        sink.emit(0, &chunk(&[&[1, 2, 3]]));
        sink.emit(3, &chunk(&[&[4]]));
        sink.finish();
        assert_eq!(sink.chunks, 2);
        assert_eq!(sink.max_chunk_rows, 3);
        assert_eq!(sink.rows, 4);
        assert_eq!(sink.inner.into_result().cardinality(), 4);
    }
}
