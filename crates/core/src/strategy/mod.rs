//! End-to-end projected-join strategies (paper §4).
//!
//! Every strategy answers the same query
//! (`SELECT larger.a1.., smaller.b1.. FROM larger, smaller WHERE larger.key =
//! smaller.key`) and differs only in *when* and *how* the projection columns
//! are handled:
//!
//! | name (Fig. 10 legend)   | storage | projection timing | module |
//! |--------------------------|---------|-------------------|--------|
//! | `DSM-post-decluster`     | DSM     | post (u/s/c/d codes) | [`dsm_post`] |
//! | `DSM-pre-phash`          | DSM     | pre, Partitioned Hash-Join | [`dsm_pre`] |
//! | `NSM-pre-hash`           | NSM     | pre, naive Hash-Join | [`nsm_pre`] |
//! | `NSM-pre-phash`          | NSM     | pre, Partitioned Hash-Join | [`nsm_pre`] |
//! | `NSM-post-decluster`     | NSM     | post, Radix-Decluster | [`nsm_post`] |
//! | `NSM-post-jive`          | NSM     | post, Jive-Join | [`nsm_post`] |
//!
//! All executors return a [`StrategyOutcome`]: the materialised result columns
//! (larger-side attributes first, then smaller-side) plus per-phase wall-clock
//! timings, which is what the figure harness plots.

pub mod adapt;
pub mod common;
pub mod dsm_post;
pub mod dsm_pre;
pub mod nsm_post;
pub mod nsm_pre;
pub mod planner;
pub mod reference;
pub mod sink;
pub mod sparse;
pub mod strings;

pub use adapt::{
    resplit_budget, AdaptiveController, AdaptiveDecision, AdaptivePolicy, FeedbackSource,
    MissCountFeedback, ScriptedFeedback, SharedMissCounts, WallClockFeedback,
};
pub use common::{ProjectionCode, SecondSideCode};
pub use dsm_post::DsmPostProjection;
pub use dsm_pre::{dsm_pre_projection, try_dsm_pre_projection};
pub use nsm_post::{
    nsm_post_projection_decluster, nsm_post_projection_jive, try_nsm_post_projection_decluster,
    try_nsm_post_projection_jive,
};
pub use nsm_pre::{
    nsm_pre_projection_hash, nsm_pre_projection_phash, try_nsm_pre_projection_hash,
    try_nsm_pre_projection_phash,
};
pub use planner::{plan_by_cost, plan_streaming, plan_streaming_checked, StreamingPlan};
pub use sink::{CountingSink, MaterializeSink, PagedSink, RowChunkSink};
pub use sparse::{dsm_post_projection_sparse, try_dsm_post_projection_sparse};
pub use strings::{dsm_post_projection_with_strings, try_dsm_post_projection_with_strings};

use rdx_dsm::ResultRelation;
use std::time::Duration;

/// How many columns the query projects from each side
/// (`π` in the paper, split per relation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Number of attribute columns projected from the larger relation.
    pub project_larger: usize,
    /// Number of attribute columns projected from the smaller relation.
    pub project_smaller: usize,
}

impl QuerySpec {
    /// Projects `pi` columns from each side (the symmetric setting used in
    /// most of the paper's plots).
    pub fn symmetric(pi: usize) -> Self {
        QuerySpec {
            project_larger: pi,
            project_smaller: pi,
        }
    }

    /// Total number of projected columns.
    pub fn total(&self) -> usize {
        self.project_larger + self.project_smaller
    }
}

/// Wall-clock phase breakdown of one strategy execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Creating the join index (scan/cluster/hash-join), or the full
    /// pre-projected join for pre-projection strategies.
    pub join: Duration,
    /// Re-ordering of the join index (Radix-Sort / partial Radix-Cluster).
    pub reorder: Duration,
    /// Positional joins / record projections for the first (larger) side.
    pub project_larger: Duration,
    /// Positional joins for the second (smaller) side, excluding decluster.
    pub project_smaller: Duration,
    /// Radix-Decluster passes (second side only).
    pub decluster: Duration,
}

impl PhaseTimings {
    /// Total wall-clock time across all phases.
    pub fn total(&self) -> Duration {
        self.join + self.reorder + self.project_larger + self.project_smaller + self.decluster
    }

    /// Total time in milliseconds (convenience for the figure harness).
    pub fn total_millis(&self) -> f64 {
        self.total().as_secs_f64() * 1e3
    }
}

/// The materialised result of one strategy plus its phase timings.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// Result columns: larger-side projections first, then smaller-side.
    pub result: ResultRelation,
    /// Wall-clock phase breakdown.
    pub timings: PhaseTimings,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_spec_helpers() {
        let q = QuerySpec::symmetric(4);
        assert_eq!(q.project_larger, 4);
        assert_eq!(q.project_smaller, 4);
        assert_eq!(q.total(), 8);
    }

    #[test]
    fn timings_total_sums_phases() {
        let t = PhaseTimings {
            join: Duration::from_millis(10),
            reorder: Duration::from_millis(5),
            project_larger: Duration::from_millis(3),
            project_smaller: Duration::from_millis(2),
            decluster: Duration::from_millis(1),
        };
        assert_eq!(t.total(), Duration::from_millis(21));
        assert!((t.total_millis() - 21.0).abs() < 1e-9);
    }
}
