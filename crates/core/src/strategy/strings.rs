//! DSM post-projection of variable-size (string) columns.
//!
//! Fixed-width columns go through the plain Radix-Decluster; string columns
//! (footnote 3 of §3: an offsets array into a separate heap) go through the
//! three-phase variable-size decluster of §5, producing an ordinary
//! [`VarColumn`](rdx_dsm::VarColumn) result.  This is the end-to-end path a MonetDB-style engine
//! would use for `SELECT larger.a…, smaller.name… FROM … WHERE key = key`.

use crate::cluster::{radix_cluster_oids, RadixClusterSpec};
use crate::decluster::choose_window_bytes;
use crate::decluster::varsize::radix_decluster_varsize;
use crate::error::{check_projection_widths, RdxError};
use crate::join::{join_cluster_spec, partitioned_hash_join};
use crate::strategy::common::{order_join_index, project_first_side, ProjectionCode};
use crate::strategy::{PhaseTimings, QuerySpec, StrategyOutcome};
use rdx_cache::CacheParams;
use rdx_dsm::{Column, DsmRelation, Oid, ResultRelation};
use std::time::Instant;

/// Executes a DSM post-projection that projects `spec` fixed-width columns
/// plus **all** variable-size columns of the smaller relation.
///
/// The fixed-width part follows the planner's usual `c/d`-style pipeline; each
/// string column is fetched with a clustered positional gather and put into
/// final order with the variable-size Radix-Decluster.
///
/// **Legacy surface**: thin panicking wrapper over
/// [`try_dsm_post_projection_with_strings`].
pub fn dsm_post_projection_with_strings(
    larger: &DsmRelation,
    smaller: &DsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> StrategyOutcome {
    try_dsm_post_projection_with_strings(larger, smaller, spec, params)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`dsm_post_projection_with_strings`] with validation failures reported as
/// typed [`RdxError`]s instead of panics.
pub fn try_dsm_post_projection_with_strings(
    larger: &DsmRelation,
    smaller: &DsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
) -> Result<StrategyOutcome, RdxError> {
    check_projection_widths(
        spec.project_larger,
        larger.width(),
        spec.project_smaller,
        smaller.width(),
    )?;
    let mut timings = PhaseTimings::default();

    // Join index over the keys.
    let t = Instant::now();
    let join_spec = join_cluster_spec(smaller.cardinality(), params.cache_capacity());
    let join_index =
        partitioned_hash_join(larger.key().as_slice(), smaller.key().as_slice(), join_spec);
    timings.join = t.elapsed();

    // Larger side: partial cluster (or unsorted when resident) + gathers.
    let t = Instant::now();
    let code = if larger.cardinality() * 4 <= params.cache_capacity() {
        ProjectionCode::Unsorted
    } else {
        ProjectionCode::PartialCluster
    };
    let (first_oids, second_oids) =
        order_join_index(&join_index, code, larger.cardinality(), 4, params);
    timings.reorder = t.elapsed();

    let t = Instant::now();
    let first_columns = project_first_side(&first_oids, spec.project_larger, |oid, a| {
        larger.attr(a).value(oid as usize)
    });
    timings.project_larger = t.elapsed();

    // Smaller side: one partial clustering reused by every column (fixed and
    // variable width alike), then a decluster per column.
    let t = Instant::now();
    let cluster_spec =
        RadixClusterSpec::optimal_partial(smaller.cardinality(), 4, params.cache_capacity());
    let result_positions: Vec<Oid> = (0..second_oids.len() as Oid).collect();
    let clustered = radix_cluster_oids(&second_oids, &result_positions, cluster_spec);
    let window = choose_window_bytes(4, clustered.num_clusters(), params);

    let mut result = ResultRelation::new();
    for col in first_columns {
        result.push_column(Column::from_vec(col));
    }
    for b in 0..spec.project_smaller {
        let clust_values: Vec<i32> = clustered
            .keys()
            .iter()
            .map(|&oid| smaller.attr(b).value(oid as usize))
            .collect();
        result.push_column(Column::from_vec(crate::decluster::radix_decluster(
            &clust_values,
            clustered.payloads(),
            clustered.bounds(),
            window,
        )));
    }
    for var in smaller.var_attrs() {
        let clust_values = var.gather(clustered.keys());
        result.push_var_column(radix_decluster_varsize(
            &clust_values,
            clustered.payloads(),
            clustered.bounds(),
            window,
        ));
    }
    timings.decluster = t.elapsed();

    Ok(StrategyOutcome { result, timings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_dsm::VarColumn;
    use rdx_workload::RelationBuilder;
    use std::collections::HashMap;

    fn smaller_with_strings(n: usize) -> (DsmRelation, Vec<String>) {
        let mut rel = RelationBuilder::new(n).columns(1).seed(61).build_dsm();
        let strings: Vec<String> = (0..n).map(|i| format!("name-{}", i * 3)).collect();
        rel.push_var_attr(VarColumn::from_strs(strings.iter().map(String::as_str)));
        (rel, strings)
    }

    #[test]
    fn string_columns_come_out_in_result_order() {
        let n = 3_000;
        let larger = RelationBuilder::new(n).columns(1).seed(60).build_dsm();
        let (smaller, strings) = smaller_with_strings(n);
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();

        let out = dsm_post_projection_with_strings(&larger, &smaller, &spec, &params);
        assert_eq!(out.result.num_columns(), 3); // 1 int from each side + 1 string
        assert_eq!(out.result.var_columns().len(), 1);
        assert_eq!(out.result.cardinality(), n);

        // Key -> expected string (keys are unique permutations here).
        let by_key: HashMap<u64, &str> = smaller
            .key()
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, strings[i].as_str()))
            .collect();
        // Key -> larger attr value, to identify which larger row a result row came from.
        let larger_attr_by_key: HashMap<i32, u64> = larger
            .key()
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &k)| (larger.attr(0)[i], k))
            .collect();

        let int_col = &out.result.columns()[0];
        let str_col = &out.result.var_columns()[0];
        for r in 0..n {
            let key = larger_attr_by_key[&int_col[r]];
            assert_eq!(str_col.get_str(r), by_key[&key], "row {r}");
        }
    }

    #[test]
    fn works_without_any_string_columns() {
        let larger = RelationBuilder::new(500).columns(1).seed(62).build_dsm();
        let smaller = RelationBuilder::new(500).columns(1).seed(63).build_dsm();
        let out = dsm_post_projection_with_strings(
            &larger,
            &smaller,
            &QuerySpec::symmetric(1),
            &CacheParams::tiny_for_tests(),
        );
        assert_eq!(out.result.var_columns().len(), 0);
        assert_eq!(out.result.cardinality(), 500);
    }

    #[test]
    fn try_variant_reports_over_projection_as_typed_error() {
        use crate::error::{RdxError, Side};
        let larger = RelationBuilder::new(100).columns(1).seed(64).build_dsm();
        let smaller = RelationBuilder::new(100).columns(1).seed(65).build_dsm();
        let err = try_dsm_post_projection_with_strings(
            &larger,
            &smaller,
            &QuerySpec::symmetric(2),
            &CacheParams::tiny_for_tests(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RdxError::TooManyColumns {
                side: Side::Larger,
                requested: 2,
                available: 1
            }
        );
    }
}
