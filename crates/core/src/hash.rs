//! The integer hash applied to join keys before radix clustering.
//!
//! "In practice, though, a hash function should even be used on integer
//! values to ensure that all bits of the join attribute play a role in the
//! lower B bits used for clustering" (§2.2).  We use the splitmix64 finalizer:
//! cheap, invertible (so it cannot create collisions on 64-bit keys) and with
//! excellent low-bit avalanche, which is exactly what radix clustering on the
//! lower `B` bits needs.  Oids from dense domains are *not* hashed (§3.1):
//! "For oids, hashing is not applied as oids are integers already and not
//! skewed", which is also what makes Radix-Cluster on all significant bits a
//! Radix-Sort.

/// Hashes a join-key value so that its low bits are well mixed.
#[inline]
pub fn hash_key(key: u64) -> u64 {
    // splitmix64 finalizer.
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Extracts the `bits`-wide radix field starting `ignore` bits from the bottom
/// of `value` — the "lower B radix bits … ignoring the lowermost I bits" used
/// throughout the clustering code.
#[inline]
pub fn radix_field(value: u64, bits: u32, ignore: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    debug_assert!(bits + ignore <= 64);
    (value >> ignore) & ((1u64 << bits) - 1)
}

/// The number of bits needed to distinguish all values of a dense domain of
/// `n` elements: `⌈log2(n)⌉` (0 for n ≤ 1).
#[inline]
pub fn significant_bits(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_is_deterministic_and_injective_on_a_sample() {
        let mut seen = HashSet::new();
        for k in 0..10_000u64 {
            assert_eq!(hash_key(k), hash_key(k));
            assert!(seen.insert(hash_key(k)), "collision at {k}");
        }
    }

    #[test]
    fn hash_spreads_low_bits_of_sequential_keys() {
        // Sequential keys must land roughly uniformly in 2^8 buckets.
        let buckets = 256u64;
        let mut counts = vec![0usize; buckets as usize];
        let n = 64_000u64;
        for k in 0..n {
            counts[(hash_key(k) & (buckets - 1)) as usize] += 1;
        }
        let expected = (n / buckets) as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > 0.5 * expected && (c as f64) < 1.5 * expected,
                "bucket {b} holds {c}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn radix_field_extracts_requested_bits() {
        let v = 0b1011_0110_1101u64;
        assert_eq!(radix_field(v, 4, 0), 0b1101);
        assert_eq!(radix_field(v, 4, 4), 0b0110);
        assert_eq!(radix_field(v, 3, 8), 0b011);
        assert_eq!(radix_field(v, 0, 5), 0);
    }

    #[test]
    fn significant_bits_of_dense_domains() {
        assert_eq!(significant_bits(0), 0);
        assert_eq!(significant_bits(1), 0);
        assert_eq!(significant_bits(2), 1);
        assert_eq!(significant_bits(1024), 10);
        assert_eq!(significant_bits(1025), 11);
        assert_eq!(significant_bits(10_000_000), 24);
    }
}
