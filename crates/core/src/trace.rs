//! Traced variants of Radix-Cluster and Positional-Join.
//!
//! Like [`crate::decluster::traced`], these run the *same* algorithm as their
//! untraced counterparts while replaying every array reference through the
//! `rdx-cache` simulator.  They substitute for the hardware performance
//! counters behind the Fig. 9 "measured" points: the simulated L1/L2/TLB miss
//! counts show the same knees (cursor count vs. cache lines and TLB entries
//! for clustering, column size vs. cache capacity for positional joins) that
//! the paper measures on the Pentium 4.

use crate::cluster::{Clustered, RadixClusterSpec};
use crate::hash::radix_field;
use rdx_cache::{AddressSpace, EventCounts, MemorySystem};
use rdx_dsm::{Column, Oid};

fn delta(before: EventCounts, after: EventCounts) -> EventCounts {
    EventCounts {
        accesses: after.accesses - before.accesses,
        l1_misses: after.l1_misses - before.l1_misses,
        l2_misses: after.l2_misses - before.l2_misses,
        tlb_misses: after.tlb_misses - before.tlb_misses,
    }
}

/// Single-pass Radix-Cluster of `(oid, payload)` pairs with a simulated memory
/// system, returning the clustering and the miss counts of the scatter pass.
///
/// Multi-pass clustering is simply this function applied per pass; the single
/// pass is what exhibits the Fig. 9a staircase, so that is what the harness
/// traces.
pub fn radix_cluster_oids_traced<P: Copy>(
    oids: &[Oid],
    payloads: &[P],
    spec: RadixClusterSpec,
    mem: &mut MemorySystem,
) -> (Clustered<Oid, P>, EventCounts) {
    assert_eq!(oids.len(), payloads.len());
    let n = oids.len();
    let payload_width = std::mem::size_of::<P>().max(1);

    let mut space = AddressSpace::new();
    let in_keys = space.alloc(n.max(1), 4);
    let in_pay = space.alloc(n.max(1), payload_width);
    let out_keys = space.alloc(n.max(1), 4);
    let out_pay = space.alloc(n.max(1), payload_width);

    let before = mem.counts();

    // Histogram pass: sequential read of the keys.
    let clusters = spec.num_clusters();
    let mut counts = vec![0usize; clusters];
    for (i, &o) in oids.iter().enumerate() {
        mem.read(in_keys.addr(i), 4);
        counts[radix_field(o as u64, spec.bits, spec.ignore) as usize] += 1;
    }
    // Prefix sums.
    let mut offsets = vec![0usize; clusters];
    let mut bounds = Vec::with_capacity(clusters + 1);
    let mut acc = 0usize;
    bounds.push(0);
    for (c, &count) in counts.iter().enumerate() {
        offsets[c] = acc;
        acc += count;
        bounds.push(acc);
    }
    // Scatter pass: sequential reads, per-cluster-cursor writes.
    let mut keys_out = vec![0 as Oid; n];
    let mut pay_out: Vec<P> = payloads.to_vec();
    for i in 0..n {
        mem.read(in_keys.addr(i), 4);
        mem.read(in_pay.addr(i), payload_width);
        let c = radix_field(oids[i] as u64, spec.bits, spec.ignore) as usize;
        let dst = offsets[c];
        offsets[c] += 1;
        mem.write(out_keys.addr(dst), 4);
        mem.write(out_pay.addr(dst), payload_width);
        keys_out[dst] = oids[i];
        pay_out[dst] = payloads[i];
    }

    let counts_delta = delta(before, mem.counts());
    // Package the result through the untraced constructor path so that the
    // invariants (bounds cover the input, clusters ordered) are identical.
    let clustered = Clustered::from_parts(keys_out, pay_out, bounds, spec);
    (clustered, counts_delta)
}

/// Single-pass **software write-combining** Radix-Cluster with a simulated
/// memory system: the same staged scatter as
/// [`crate::cluster::ScatterMode::Buffered`], with every array reference —
/// including the staging-buffer traffic and the full-slot flush copies —
/// replayed through the simulator.
///
/// Against [`radix_cluster_oids_traced`] this shows the miss reduction the
/// buffered cost model (`rdx_cost::algorithms::radix_cluster_buffered`)
/// predicts: the randomly addressed working set shrinks from one open cache
/// line and TLB entry per cluster to the compact staging area, and the
/// output is touched one full slot at a time instead of tuple by tuple.
/// The clustering itself is byte-identical to the untraced kernels.
pub fn radix_cluster_oids_buffered_traced<P: Copy>(
    oids: &[Oid],
    payloads: &[P],
    spec: RadixClusterSpec,
    mem: &mut MemorySystem,
) -> (Clustered<Oid, P>, EventCounts) {
    use crate::cluster::SWWC_SLOT_ELEMS as SLOT;
    assert_eq!(oids.len(), payloads.len());
    let n = oids.len();
    let payload_width = std::mem::size_of::<P>().max(1);
    let clusters = spec.num_clusters();

    let mut space = AddressSpace::new();
    let in_keys = space.alloc(n.max(1), 4);
    let in_pay = space.alloc(n.max(1), payload_width);
    let out_keys = space.alloc(n.max(1), 4);
    let out_pay = space.alloc(n.max(1), payload_width);
    let stage_keys_region = space.alloc(clusters * SLOT, 4);
    let stage_pay_region = space.alloc(clusters * SLOT, payload_width);

    let before = mem.counts();

    // Histogram pass: sequential read of the keys.
    let mut counts = vec![0usize; clusters];
    for (i, &o) in oids.iter().enumerate() {
        mem.read(in_keys.addr(i), 4);
        counts[radix_field(o as u64, spec.bits, spec.ignore) as usize] += 1;
    }
    let mut offsets = vec![0usize; clusters];
    let mut bounds = Vec::with_capacity(clusters + 1);
    let mut acc = 0usize;
    bounds.push(0);
    for (c, &count) in counts.iter().enumerate() {
        offsets[c] = acc;
        acc += count;
        bounds.push(acc);
    }

    // Staged scatter: tuples land in the per-cluster staging slot; a full
    // slot is flushed as one contiguous SLOT-element copy to the cursor.
    let mut keys_out = vec![0 as Oid; n];
    let mut pay_out: Vec<P> = payloads.to_vec();
    let mut stage_keys = vec![0 as Oid; clusters * SLOT];
    let mut stage_pay: Vec<Option<P>> = vec![None; clusters * SLOT];
    let mut fill = vec![0usize; clusters];
    let flush = |c: usize,
                 len: usize,
                 offsets: &mut [usize],
                 stage_keys: &[Oid],
                 stage_pay: &[Option<P>],
                 keys_out: &mut [Oid],
                 pay_out: &mut [P],
                 mem: &mut MemorySystem| {
        let slot = c * SLOT;
        let dst = offsets[c];
        for j in 0..len {
            mem.read(stage_keys_region.addr(slot + j), 4);
            mem.read(stage_pay_region.addr(slot + j), payload_width);
            mem.write(out_keys.addr(dst + j), 4);
            mem.write(out_pay.addr(dst + j), payload_width);
            keys_out[dst + j] = stage_keys[slot + j];
            pay_out[dst + j] = stage_pay[slot + j].expect("flushing an unfilled stage entry");
        }
        offsets[c] += len;
    };
    for i in 0..n {
        mem.read(in_keys.addr(i), 4);
        mem.read(in_pay.addr(i), payload_width);
        let c = radix_field(oids[i] as u64, spec.bits, spec.ignore) as usize;
        let slot = c * SLOT + fill[c];
        mem.write(stage_keys_region.addr(slot), 4);
        mem.write(stage_pay_region.addr(slot), payload_width);
        stage_keys[slot] = oids[i];
        stage_pay[slot] = Some(payloads[i]);
        fill[c] += 1;
        if fill[c] == SLOT {
            flush(
                c,
                SLOT,
                &mut offsets,
                &stage_keys,
                &stage_pay,
                &mut keys_out,
                &mut pay_out,
                mem,
            );
            fill[c] = 0;
        }
    }
    for (c, &partial) in fill.iter().enumerate() {
        if partial > 0 {
            flush(
                c,
                partial,
                &mut offsets,
                &stage_keys,
                &stage_pay,
                &mut keys_out,
                &mut pay_out,
                mem,
            );
        }
    }

    let counts_delta = delta(before, mem.counts());
    let clustered = Clustered::from_parts(keys_out, pay_out, bounds, spec);
    (clustered, counts_delta)
}

/// Positional-Join with a simulated memory system: `out[i] = column[oids[i]]`.
///
/// The oid order determines the access pattern, exactly as for the untraced
/// [`crate::positional::positional_join`]; tracing an unsorted vs. a clustered
/// oid sequence reproduces the Fig. 9c contrast in miss counts.
pub fn positional_join_traced<T: Copy>(
    oids: &[Oid],
    column: &Column<T>,
    mem: &mut MemorySystem,
) -> (Column<T>, EventCounts) {
    let width = std::mem::size_of::<T>().max(1);
    let mut space = AddressSpace::new();
    let oid_region = space.alloc(oids.len().max(1), 4);
    let col_region = space.alloc(column.len().max(1), width);
    let out_region = space.alloc(oids.len().max(1), width);

    let before = mem.counts();
    let mut out = Vec::with_capacity(oids.len());
    for (i, &oid) in oids.iter().enumerate() {
        mem.read(oid_region.addr(i), 4);
        mem.read(col_region.addr(oid as usize), width);
        mem.write(out_region.addr(i), width);
        out.push(column.value(oid as usize));
    }
    (Column::from_vec(out), delta(before, mem.counts()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::radix_cluster_oids;
    use rdx_cache::CacheParams;

    fn reversed_oids(n: usize) -> Vec<Oid> {
        (0..n as Oid).rev().collect()
    }

    #[test]
    fn traced_cluster_matches_untraced() {
        let oids = reversed_oids(4_000);
        let payloads: Vec<u32> = (0..4_000).collect();
        let spec = RadixClusterSpec::single_pass(5);
        let mut mem = MemorySystem::new(&CacheParams::tiny_for_tests());
        let (traced, counts) = radix_cluster_oids_traced(&oids, &payloads, spec, &mut mem);
        let plain = radix_cluster_oids(&oids, &payloads, spec);
        assert_eq!(traced.keys(), plain.keys());
        assert_eq!(traced.payloads(), plain.payloads());
        assert_eq!(traced.bounds(), plain.bounds());
        assert!(counts.accesses > 0);
    }

    #[test]
    fn cluster_fanout_beyond_tlb_explodes_misses_fig9a() {
        let params = CacheParams::tiny_for_tests(); // 8-entry TLB
        let oids = reversed_oids(16_384);
        let payloads = vec![0u32; 16_384];
        let run = |bits: u32| {
            let mut mem = MemorySystem::new(&params);
            let (_, c) = radix_cluster_oids_traced(
                &oids,
                &payloads,
                RadixClusterSpec::single_pass(bits),
                &mut mem,
            );
            c
        };
        // With 1 radix bit the scatter touches 2 input streams plus 2×2 output
        // cursors = 6 concurrent pages, within the 8-entry TLB; with 8 bits it
        // juggles 2 + 2×256 cursors and thrashes on every write.
        let few = run(1);
        let many = run(8);
        assert!(
            many.tlb_misses > 4 * few.tlb_misses,
            "256 cursors should thrash the 8-entry TLB: {} vs {}",
            many.tlb_misses,
            few.tlb_misses
        );
    }

    #[test]
    fn buffered_traced_cluster_matches_untraced_and_cuts_misses() {
        let params = CacheParams::tiny_for_tests(); // 8-entry TLB, 1 KB L1
        let oids = reversed_oids(16_384);
        let payloads: Vec<u32> = (0..16_384).collect();
        // 256 output cursors: far beyond the tiny TLB and L1 line budget, so
        // the plain scatter thrashes on every write (the regime where the
        // planner switches to the buffered mode).
        let spec = RadixClusterSpec::single_pass(8);
        let expected = radix_cluster_oids(&oids, &payloads, spec);

        let mut mem_plain = MemorySystem::new(&params);
        let (plain, plain_misses) =
            radix_cluster_oids_traced(&oids, &payloads, spec, &mut mem_plain);
        let mut mem_buf = MemorySystem::new(&params);
        let (buffered, buf_misses) =
            radix_cluster_oids_buffered_traced(&oids, &payloads, spec, &mut mem_buf);

        // Both traced kernels are byte-identical to the untraced one.
        assert_eq!(&plain, &expected);
        assert_eq!(&buffered, &expected);

        // The simulated hierarchy confirms what the buffered cost term
        // predicts: staging shrinks the random working set, so the flushes
        // touch the output one slot at a time instead of tuple by tuple.
        assert!(
            buf_misses.tlb_misses * 2 < plain_misses.tlb_misses,
            "buffered TLB misses {} vs plain {}",
            buf_misses.tlb_misses,
            plain_misses.tlb_misses
        );
        assert!(
            buf_misses.l2_misses < plain_misses.l2_misses,
            "buffered L2 misses {} vs plain {}",
            buf_misses.l2_misses,
            plain_misses.l2_misses
        );
    }

    #[test]
    fn buffered_traced_cluster_handles_empty_and_skewed_inputs() {
        let mut mem = MemorySystem::new(&CacheParams::tiny_for_tests());
        let (c, counts) = radix_cluster_oids_buffered_traced::<u32>(
            &[],
            &[],
            RadixClusterSpec::single_pass(3),
            &mut mem,
        );
        assert!(c.is_empty());
        assert_eq!(counts.accesses, 0);
        // All-one-cluster skew with a non-slot-multiple tail: partial
        // flushes must drain exactly.
        let oids = vec![0 as Oid; 77];
        let payloads: Vec<u32> = (0..77).collect();
        let spec = RadixClusterSpec::single_pass(4);
        let (c, _) = radix_cluster_oids_buffered_traced(&oids, &payloads, spec, &mut mem);
        assert_eq!(&c, &radix_cluster_oids(&oids, &payloads, spec));
    }

    #[test]
    fn traced_positional_join_matches_untraced_and_shows_fig9c_contrast() {
        let params = CacheParams::tiny_for_tests(); // 8 KB L2
        let n = 16_384; // 64 KB column, 8× the cache
        let column: Column<i32> = (0..n as i32).collect();

        // Unsorted oids: a bit-reversal permutation (maximally non-local).
        let bits = 14;
        let unsorted: Vec<Oid> = (0..n as Oid)
            .map(|i| (i.reverse_bits() >> (32 - bits)) as Oid)
            .collect();
        // Clustered oids: the same multiset, partially clustered on the 6
        // *uppermost* significant bits (ignore the lowermost 8), so each
        // cluster covers a contiguous 1 KB slice of the column — the §3.1
        // partial clustering.
        let clustered =
            radix_cluster_oids(&unsorted, &vec![(); n], RadixClusterSpec::partial(6, 1, 8));

        let mut mem_u = MemorySystem::new(&params);
        let (out_u, misses_u) = positional_join_traced(&unsorted, &column, &mut mem_u);
        let mut mem_c = MemorySystem::new(&params);
        let (out_c, misses_c) = positional_join_traced(clustered.keys(), &column, &mut mem_c);

        // Same values fetched (as multisets).
        let mut a = out_u.into_vec();
        let mut b = out_c.into_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Clustered access misses far less in L2.
        assert!(
            misses_u.l2_misses > 2 * misses_c.l2_misses,
            "unsorted {} vs clustered {}",
            misses_u.l2_misses,
            misses_c.l2_misses
        );
    }

    #[test]
    fn empty_inputs() {
        let mut mem = MemorySystem::new(&CacheParams::tiny_for_tests());
        let (c, counts) =
            radix_cluster_oids_traced::<u32>(&[], &[], RadixClusterSpec::single_pass(3), &mut mem);
        assert!(c.is_empty());
        assert_eq!(counts.accesses, 0);
        let col: Column<i32> = Column::new();
        let (out, _) = positional_join_traced(&[], &col, &mut mem);
        assert!(out.is_empty());
    }
}
