//! Clustering specifications and the §3.1 parameter formulas.

use crate::hash::significant_bits;

/// A Radix-Cluster configuration: `B` radix bits split over `P` passes,
/// ignoring the lowermost `I` bits (the *partial* Radix-Cluster of §3.1).
///
/// `Hash` is derived so a spec can key cross-query caches of clustered
/// products (the serving layer's clustered-join-index cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RadixClusterSpec {
    /// Total radix bits `B`; the input is split into `2^B` clusters.
    pub bits: u32,
    /// Number of passes `P` (each pass handles `≈ B/P` bits, leftmost first).
    pub passes: u32,
    /// Ignore bits `I`: the clustering field is `[I, I+B)`, leaving the input
    /// unsorted on the lowermost `I` bits.
    pub ignore: u32,
}

impl RadixClusterSpec {
    /// A single-pass clustering on `bits` bits, no ignore bits.
    pub fn single_pass(bits: u32) -> Self {
        Self::partial(bits, 1, 0)
    }

    /// A `passes`-pass clustering on `bits` bits, no ignore bits.
    pub fn new(bits: u32, passes: u32) -> Self {
        Self::partial(bits, passes, 0)
    }

    /// A partial clustering: `bits` bits over `passes` passes, ignoring the
    /// lowermost `ignore` bits.
    ///
    /// # Panics
    /// Panics if `bits + ignore > 40` (2^40 clusters is far past any sensible
    /// configuration and would overflow allocation sizes) or `passes == 0`.
    pub fn partial(bits: u32, passes: u32, ignore: u32) -> Self {
        assert!(passes >= 1, "at least one pass is required");
        assert!(bits + ignore <= 40, "unreasonable radix configuration");
        RadixClusterSpec {
            bits,
            passes,
            ignore,
        }
    }

    /// Number of clusters `H = 2^B`.
    pub fn num_clusters(&self) -> usize {
        1usize << self.bits
    }

    /// The per-pass bit counts, leftmost (most significant) pass first.
    /// Passes never exceed `bits`, so asking for more passes than bits simply
    /// collapses to `bits` one-bit passes.
    pub fn pass_bits(&self) -> Vec<u32> {
        if self.bits == 0 {
            return vec![];
        }
        let passes = self.passes.min(self.bits).max(1);
        let base = self.bits / passes;
        let extra = self.bits % passes;
        (0..passes)
            .map(|p| if p < extra { base + 1 } else { base })
            .collect()
    }

    /// The §3.1 formula for projecting from a column of `column_tuples` values
    /// of `value_width` bytes through a join index over an oid domain of
    /// `column_tuples`:
    ///
    /// * `B` is chosen so that one cluster's worth of the projection column
    ///   (`‖COLUMN‖ / 2^B`) just fits in a cache of `cache_bytes`;
    /// * `I` is whatever remains of the oid's significant bits, i.e. the bits
    ///   Radix-Sort may ignore ("stop early").
    pub fn optimal_partial(column_tuples: usize, value_width: usize, cache_bytes: usize) -> Self {
        let column_bytes = column_tuples.saturating_mul(value_width);
        let mut bits = 0u32;
        while (column_bytes >> bits) > cache_bytes && bits < 30 {
            bits += 1;
        }
        let significant = significant_bits(column_tuples);
        let ignore = significant.saturating_sub(bits);
        // Use two passes once a single pass would create more clusters than a
        // few thousand output cursors can sustain (§2.1).
        let passes = if bits > 11 { 2 } else { 1 };
        RadixClusterSpec {
            bits,
            passes,
            ignore,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_bits_split_evenly_leftmost_heavy() {
        assert_eq!(RadixClusterSpec::new(8, 1).pass_bits(), vec![8]);
        assert_eq!(RadixClusterSpec::new(8, 2).pass_bits(), vec![4, 4]);
        assert_eq!(RadixClusterSpec::new(7, 2).pass_bits(), vec![4, 3]);
        assert_eq!(RadixClusterSpec::new(3, 5).pass_bits(), vec![1, 1, 1]);
        assert_eq!(RadixClusterSpec::new(0, 2).pass_bits(), Vec::<u32>::new());
    }

    #[test]
    fn paper_example_of_section_3_1() {
        // "if we have a CPU cache of 64KB and values that are 4 bytes wide …
        // if the source table has 10M tuples, we would create 2^10 = 1024
        // clusters … allowing Radix-Sort to ignore the lowermost 14 bits."
        let spec = RadixClusterSpec::optimal_partial(10_000_000, 4, 64 * 1024);
        assert_eq!(spec.bits, 10);
        assert_eq!(spec.ignore, 14);
        // Mean cluster fits the cache.
        assert!(10_000_000usize * 4 / spec.num_clusters() <= 64 * 1024);
    }

    #[test]
    fn optimal_partial_small_column_needs_no_clustering() {
        let spec = RadixClusterSpec::optimal_partial(1000, 4, 512 * 1024);
        assert_eq!(spec.bits, 0);
        assert_eq!(spec.num_clusters(), 1);
    }

    #[test]
    fn optimal_partial_switches_to_two_passes_for_many_clusters() {
        let spec = RadixClusterSpec::optimal_partial(500_000_000, 4, 16 * 1024);
        assert!(spec.bits > 11);
        assert_eq!(spec.passes, 2);
    }

    #[test]
    #[should_panic]
    fn zero_passes_rejected() {
        RadixClusterSpec::partial(4, 0, 0);
    }

    #[test]
    #[should_panic]
    fn absurd_bit_count_rejected() {
        RadixClusterSpec::partial(41, 1, 0);
    }
}
