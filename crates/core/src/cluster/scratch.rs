//! The zero-steady-state-allocation scatter engine behind Radix-Cluster.
//!
//! The original `cluster_impl` paid large constant factors per call: it
//! hashed every key **twice per pass** (once for the histogram, once for the
//! scatter), made four full-size buffer copies before the first pass
//! (`to_vec` of both inputs plus `clone` of both flip buffers — data the
//! first scatter pass fully overwrites), and allocated per-segment cursor
//! vectors inside the pass loop.  Layers that cluster per chunk or per query
//! (the streaming pipeline, the serving layer) multiplied those costs.
//!
//! This module replaces that with an explicit **scratch arena** plus two
//! scatter strategies:
//!
//! * [`ClusterScratch`] owns every working buffer a multi-pass radix scatter
//!   needs — the ping-pong key/payload buffers, the histogram and cursor
//!   arrays (hoisted out of the segment loop), the segment-boundary lists,
//!   and a memoized per-pass radix-value buffer so each key is hashed
//!   **once** per pass.  Reusing one scratch across calls makes the steady
//!   state allocation-free except for the caller-owned output.
//! * [`ScatterMode`] selects between the plain per-tuple scatter and a
//!   **software write-combining** scatter (`Buffered`): tuples are staged in
//!   per-cluster cache-line-sized buffers that are flushed as full-line
//!   copies, so the randomly-addressed working set shrinks from one open
//!   cache line *and* TLB entry per cluster to a compact staging area —
//!   which is what lets a single buffered pass replace two plain passes once
//!   the fan-out `2^B` exceeds the plain-scatter cursor budget.
//!
//! Both modes produce output **byte-identical** to the original kernel: the
//! per-pass counting sort is stable either way (staged tuples are flushed to
//! the same cursor positions, in the same order, as direct writes).

use super::spec::RadixClusterSpec;
use super::Clustered;
use rdx_cache::CacheParams;

/// Elements per software-write-combining staging slot.  Eight 8-byte keys
/// fill one 64-byte cache line exactly; narrower keys/payloads simply flush
/// more than one slot per line, which costs nothing extra (the copies stay
/// line-contained and sequential per cluster).
pub const SWWC_SLOT_ELEMS: usize = 8;

/// The documented default plain-scatter cursor budget: the "few thousand
/// output cursors" beyond which the paper observes single-pass clustering
/// stops scaling (§2.1).  Used when no [`CacheParams`] is available — e.g.
/// by [`ScatterMode::Auto`] and the parameterless
/// [`super::radix_sort_spec`]; [`scatter_cursor_budget`] derives the same
/// number from the hardware model instead (and reproduces exactly 2048 for
/// the paper's Pentium 4).
pub const DEFAULT_SCATTER_CURSOR_BUDGET: usize = 2048;

/// The largest number of scatter cursors one *plain* pass can sustain under
/// `params` before the cursors start evicting each other: half the
/// outermost cache's lines (the same conservative usable-line rule the
/// `rdx-cost` `nest` pattern applies, so the pass rule and the cost model
/// can never disagree), floored by the TLB entry count — a cursor set larger
/// than the TLB but within the line budget still wins, because a TLB refill
/// costs far less than a per-tuple cache-line miss.
///
/// For [`CacheParams::paper_pentium4`] this is exactly
/// [`DEFAULT_SCATTER_CURSOR_BUDGET`] (4096 L2 lines / 2 = 2048 > 64 TLB
/// entries).
pub fn scatter_cursor_budget(params: &CacheParams) -> usize {
    (params.last_level().lines() / 2)
        .max(params.tlb.entries)
        .max(1)
}

/// The largest fan-out a *buffered* (software write-combining) pass can
/// sustain under `params` for tuples of `pair_bytes` (key + payload) bytes:
/// the staging area — one [`SWWC_SLOT_ELEMS`]-element slot per cluster —
/// must fit half the outermost cache, since it is the only randomly
/// addressed working set the buffered scatter keeps hot.
pub fn buffered_cursor_budget(pair_bytes: usize, params: &CacheParams) -> usize {
    let slot_bytes = SWWC_SLOT_ELEMS * pair_bytes.max(1);
    ((params.cache_capacity() / 2) / slot_bytes).max(1)
}

/// How a clustering pass scatters tuples to its output cursors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScatterMode {
    /// Direct per-tuple writes through one cursor per cluster — cheapest
    /// while the cursor set is cache/TLB-resident.
    Plain,
    /// Software write-combining: stage tuples per cluster and flush full
    /// [`SWWC_SLOT_ELEMS`]-element slots as line copies.  Worth it once the
    /// fan-out exceeds the plain cursor budget; pure overhead below it.
    Buffered,
    /// Per pass: [`ScatterMode::Buffered`] when that pass's fan-out exceeds
    /// [`DEFAULT_SCATTER_CURSOR_BUDGET`], [`ScatterMode::Plain`] otherwise.
    /// The hardware-aware planner makes the same decision against the
    /// measured [`CacheParams`] instead (see
    /// [`plan_cluster_passes`]).
    #[default]
    Auto,
}

impl ScatterMode {
    /// Whether a pass with `fanout` output cursors runs buffered.
    #[inline]
    pub fn buffered_for(self, fanout: usize) -> bool {
        match self {
            ScatterMode::Plain => false,
            ScatterMode::Buffered => true,
            ScatterMode::Auto => fanout > DEFAULT_SCATTER_CURSOR_BUDGET,
        }
    }
}

/// The pass count and scatter mode one radix clustering of `2^bits` clusters
/// should run with under `params`, for key/payload pairs of `pair_bytes`:
///
/// 1. fan-out within the plain cursor budget → one plain pass;
/// 2. fan-out beyond it but whose staging area fits the cache → **one
///    buffered pass**, replacing the two plain passes the seed kernel used;
/// 3. otherwise → plain passes of at most `log2(budget)` bits each.
///
/// This is the [`scatter_cursor_budget`] rule the planner, the pipeline and
/// [`super::radix_sort_spec_for`] all share, so the executed pass structure
/// and the priced one can never drift apart.
pub fn plan_cluster_passes(
    bits: u32,
    pair_bytes: usize,
    params: &CacheParams,
) -> (u32, ScatterMode) {
    if bits == 0 {
        return (1, ScatterMode::Plain);
    }
    let budget = scatter_cursor_budget(params);
    let fanout = 1usize.checked_shl(bits).unwrap_or(usize::MAX);
    if fanout <= budget {
        return (1, ScatterMode::Plain);
    }
    if fanout <= buffered_cursor_budget(pair_bytes, params) {
        return (1, ScatterMode::Buffered);
    }
    (super::passes_for_budget(bits, budget), ScatterMode::Plain)
}

/// Bytes of one clustered `(oid, payload-oid)` pair — what the reordering
/// codes scatter, and hence the staging granularity their buffered-scatter
/// planning sizes against.  The one definition shared by the cost planner,
/// the materialising executors and the streaming pipeline, so the priced
/// and executed pass structures cannot drift if [`rdx_dsm::Oid`] ever
/// changes width.
pub const OID_PAIR_BYTES: usize = 2 * std::mem::size_of::<rdx_dsm::Oid>();

/// The §3.1 `optimal_partial` clustering with its pass structure and
/// scatter mode derived from the hardware model: bits from the
/// fits-in-cache rule, passes and plain/buffered from
/// [`plan_cluster_passes`] for key/payload pairs of `pair_bytes`.  The
/// single source of truth shared by the streaming planner (which prices
/// it), the pipeline's prepare phase (which runs it) and the serving
/// layer's cache keys (which name it) — so the three can never drift apart.
pub fn plan_partial_cluster(
    column_tuples: usize,
    value_width: usize,
    pair_bytes: usize,
    params: &CacheParams,
) -> (RadixClusterSpec, ScatterMode) {
    let base =
        RadixClusterSpec::optimal_partial(column_tuples, value_width, params.cache_capacity());
    let (passes, mode) = plan_cluster_passes(base.bits, pair_bytes, params);
    (
        RadixClusterSpec {
            bits: base.bits,
            passes,
            ignore: base.ignore,
        },
        mode,
    )
}

/// A borrowed view of a clustering whose arrays live inside a
/// [`ClusterScratch`] — what the zero-allocation entry points return.  Same
/// accessors as [`Clustered`]; call [`ScratchClustered::to_clustered`] to pay
/// for an owned copy.
#[derive(Debug, Clone, Copy)]
pub struct ScratchClustered<'a, K, P> {
    keys: &'a [K],
    payloads: &'a [P],
    bounds: &'a [usize],
    spec: RadixClusterSpec,
}

impl<'a, K: Copy, P: Copy> ScratchClustered<'a, K, P> {
    /// Number of clusters `H = 2^B`.
    pub fn num_clusters(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the input was empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The clustering specification that produced this result.
    pub fn spec(&self) -> &RadixClusterSpec {
        &self.spec
    }

    /// The reordered keys.
    pub fn keys(&self) -> &'a [K] {
        self.keys
    }

    /// The reordered payloads.
    pub fn payloads(&self) -> &'a [P] {
        self.payloads
    }

    /// The cluster boundary offsets (`H + 1` entries).
    pub fn bounds(&self) -> &'a [usize] {
        self.bounds
    }

    /// The tuple range of cluster `j`.
    pub fn cluster_range(&self, j: usize) -> std::ops::Range<usize> {
        self.bounds[j]..self.bounds[j + 1]
    }

    /// Keys of cluster `j`.
    pub fn cluster_keys(&self, j: usize) -> &'a [K] {
        &self.keys[self.cluster_range(j)]
    }

    /// Payloads of cluster `j`.
    pub fn cluster_payloads(&self, j: usize) -> &'a [P] {
        &self.payloads[self.cluster_range(j)]
    }

    /// Copies the view into an owned [`Clustered`].
    pub fn to_clustered(&self) -> Clustered<K, P> {
        Clustered::from_parts(
            self.keys.to_vec(),
            self.payloads.to_vec(),
            self.bounds.to_vec(),
            self.spec,
        )
    }
}

/// The reusable working memory of the multi-pass radix scatter: ping-pong
/// key/payload buffers, histogram and cursor arrays, segment-boundary lists,
/// the memoized per-pass radix values, and the software-write-combining
/// staging area.  One scratch serves any number of calls of any size; every
/// buffer grows to the high-water mark and stays, so the steady state
/// allocates nothing.
///
/// Two entry-point families use it:
///
/// * [`super::radix_cluster_with_scratch`] /
///   [`super::radix_cluster_oids_with_scratch`] return an owned
///   [`Clustered`] — the only per-call allocation is that output;
/// * [`ClusterScratch::cluster_oids_in_scratch`] /
///   [`ClusterScratch::cluster_hashed_in_scratch`] leave the result inside
///   the arena and return a borrowed [`ScratchClustered`] — zero
///   allocations in steady state, the form the parallel executor's
///   per-worker shard clustering uses.
#[derive(Debug, Clone)]
pub struct ClusterScratch<K, P> {
    /// Intermediate ping buffer (passes 2, 4, … read or write it).
    ping_keys: Vec<K>,
    ping_pay: Vec<P>,
    /// Result buffer of the in-scratch entry points; intermediate buffer of
    /// the owned entry points.
    front_keys: Vec<K>,
    front_pay: Vec<P>,
    /// Memoized per-pass radix values: each key is hashed once per pass.
    radix: Vec<u32>,
    /// Histogram, reused across segments (hoisted out of the segment loop).
    counts: Vec<usize>,
    /// Scatter cursors, reused across segments.
    offsets: Vec<usize>,
    /// Segment boundaries entering / leaving the current pass.
    segments: Vec<usize>,
    new_segments: Vec<usize>,
    /// Software-write-combining staging area (`fanout × SWWC_SLOT_ELEMS`).
    stage_keys: Vec<K>,
    stage_pay: Vec<P>,
    stage_fill: Vec<usize>,
    /// Spec of the last in-scratch run (what [`ClusterScratch::view`] serves).
    view_spec: Option<RadixClusterSpec>,
}

impl<K, P> Default for ClusterScratch<K, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, P> ClusterScratch<K, P> {
    /// An empty arena; buffers are grown on first use.
    pub fn new() -> Self {
        ClusterScratch {
            ping_keys: Vec::new(),
            ping_pay: Vec::new(),
            front_keys: Vec::new(),
            front_pay: Vec::new(),
            radix: Vec::new(),
            counts: Vec::new(),
            offsets: Vec::new(),
            segments: Vec::new(),
            new_segments: Vec::new(),
            stage_keys: Vec::new(),
            stage_pay: Vec::new(),
            stage_fill: Vec::new(),
            view_spec: None,
        }
    }

    /// Resident heap bytes currently held by the arena.
    pub fn resident_bytes(&self) -> usize {
        self.ping_keys.capacity() * std::mem::size_of::<K>()
            + self.front_keys.capacity() * std::mem::size_of::<K>()
            + self.stage_keys.capacity() * std::mem::size_of::<K>()
            + self.ping_pay.capacity() * std::mem::size_of::<P>()
            + self.front_pay.capacity() * std::mem::size_of::<P>()
            + self.stage_pay.capacity() * std::mem::size_of::<P>()
            + self.radix.capacity() * std::mem::size_of::<u32>()
            + (self.counts.capacity()
                + self.offsets.capacity()
                + self.segments.capacity()
                + self.new_segments.capacity()
                + self.stage_fill.capacity())
                * std::mem::size_of::<usize>()
    }
}

impl<K: Copy, P: Copy> ClusterScratch<K, P> {
    /// Clusters into the arena, returning a borrowed view: zero allocations
    /// once the buffers have grown to the input size.  `bucket_of` maps a
    /// key to its full radix value (hash for join keys, identity for oids).
    pub fn cluster_by_in_scratch<'a>(
        &'a mut self,
        keys: &[K],
        payloads: &[P],
        spec: RadixClusterSpec,
        mode: ScatterMode,
        bucket_of: impl Fn(&K) -> u64,
    ) -> ScratchClustered<'a, K, P> {
        assert_eq!(keys.len(), payloads.len(), "keys/payloads length mismatch");
        let n = keys.len();
        if spec.bits == 0 || n == 0 {
            // Degenerate cases still uphold `bounds.len() == H + 1`: zero
            // bits is one cluster holding everything, an empty input is `H`
            // empty clusters.  The input copy here is the output itself, not
            // the flip-buffer waste the arena exists to remove.
            self.front_keys.clear();
            self.front_keys.extend_from_slice(keys);
            self.front_pay.clear();
            self.front_pay.extend_from_slice(payloads);
            self.segments.clear();
            self.segments.resize(spec.num_clusters(), 0);
            self.segments.push(n);
        } else {
            let this = &mut *self;
            run_passes(
                keys,
                payloads,
                spec,
                mode,
                &bucket_of,
                &mut this.ping_keys,
                &mut this.ping_pay,
                &mut this.front_keys,
                &mut this.front_pay,
                &mut PassScratch {
                    radix: &mut this.radix,
                    counts: &mut this.counts,
                    offsets: &mut this.offsets,
                    segments: &mut this.segments,
                    new_segments: &mut this.new_segments,
                    stage_keys: &mut this.stage_keys,
                    stage_pay: &mut this.stage_pay,
                    stage_fill: &mut this.stage_fill,
                },
            );
        }
        self.view_spec = Some(spec);
        self.view().expect("view_spec just set")
    }

    /// The view of the last in-scratch clustering, or `None` if none ran
    /// yet.  The view stays valid until the next clustering call reuses the
    /// buffers — this is how the parallel executor reads per-worker results
    /// back out after the worker scope ends.
    pub fn view(&self) -> Option<ScratchClustered<'_, K, P>> {
        let spec = self.view_spec?;
        Some(ScratchClustered {
            keys: &self.front_keys,
            payloads: &self.front_pay,
            bounds: &self.segments,
            spec,
        })
    }

    /// Clusters into a caller-owned output: the returned [`Clustered`] is
    /// the only per-call allocation; all working memory comes from the
    /// arena.
    pub fn cluster_by<F: Fn(&K) -> u64>(
        &mut self,
        keys: &[K],
        payloads: &[P],
        spec: RadixClusterSpec,
        mode: ScatterMode,
        bucket_of: F,
    ) -> Clustered<K, P> {
        assert_eq!(keys.len(), payloads.len(), "keys/payloads length mismatch");
        // The owned path reuses `segments` (and, multi-pass, the front
        // buffers) without establishing a new view generation — any view of
        // an earlier in-scratch run would silently mix generations.
        self.view_spec = None;
        let n = keys.len();
        if spec.bits == 0 || n == 0 {
            let mut bounds = vec![0usize; spec.num_clusters()];
            bounds.push(n);
            return Clustered::from_parts(keys.to_vec(), payloads.to_vec(), bounds, spec);
        }
        // The output pair is written by the final scatter pass directly —
        // the flip buffers are never initialised from data they are about to
        // overwrite (the seed kernel's `out_keys = cur_keys.clone()` waste).
        let mut out_keys: Vec<K> = Vec::new();
        let mut out_pay: Vec<P> = Vec::new();
        run_passes(
            keys,
            payloads,
            spec,
            mode,
            &bucket_of,
            &mut self.ping_keys,
            &mut self.ping_pay,
            &mut out_keys,
            &mut out_pay,
            &mut PassScratch {
                radix: &mut self.radix,
                counts: &mut self.counts,
                offsets: &mut self.offsets,
                segments: &mut self.segments,
                new_segments: &mut self.new_segments,
                stage_keys: &mut self.stage_keys,
                stage_pay: &mut self.stage_pay,
                stage_fill: &mut self.stage_fill,
            },
        );
        debug_assert_eq!(self.segments.len(), spec.num_clusters() + 1);
        Clustered::from_parts(out_keys, out_pay, self.segments.clone(), spec)
    }
}

impl<P: Copy> ClusterScratch<u64, P> {
    /// In-scratch clustering of hashed join keys (see
    /// [`super::radix_cluster`]).
    pub fn cluster_hashed_in_scratch<'a>(
        &'a mut self,
        keys: &[u64],
        payloads: &[P],
        spec: RadixClusterSpec,
        mode: ScatterMode,
    ) -> ScratchClustered<'a, u64, P> {
        self.cluster_by_in_scratch(keys, payloads, spec, mode, |&k| crate::hash::hash_key(k))
    }
}

impl<P: Copy> ClusterScratch<rdx_dsm::Oid, P> {
    /// In-scratch clustering of unhashed oids (see
    /// [`super::radix_cluster_oids`]).
    pub fn cluster_oids_in_scratch<'a>(
        &'a mut self,
        oids: &[rdx_dsm::Oid],
        payloads: &[P],
        spec: RadixClusterSpec,
        mode: ScatterMode,
    ) -> ScratchClustered<'a, rdx_dsm::Oid, P> {
        self.cluster_by_in_scratch(oids, payloads, spec, mode, |&o| o as u64)
    }
}

/// The non-buffer working state shared by every pass (bundled so the engine
/// signature stays readable).
struct PassScratch<'s, K, P> {
    radix: &'s mut Vec<u32>,
    counts: &'s mut Vec<usize>,
    offsets: &'s mut Vec<usize>,
    segments: &'s mut Vec<usize>,
    new_segments: &'s mut Vec<usize>,
    stage_keys: &'s mut Vec<K>,
    stage_pay: &'s mut Vec<P>,
    stage_fill: &'s mut Vec<usize>,
}

/// The multi-pass scatter engine.  Pass destinations alternate between the
/// `ping` pair and the `out` pair, phased so the **final** pass always lands
/// in `out` — the caller decides whether `out` is an owned output (the
/// `with_scratch` entry points) or the arena's front buffer (the in-scratch
/// entry points).  On return, `scratch.segments` holds the final `H + 1`
/// cluster borders.
#[allow(clippy::too_many_arguments)]
fn run_passes<K: Copy, P: Copy>(
    keys: &[K],
    payloads: &[P],
    spec: RadixClusterSpec,
    mode: ScatterMode,
    bucket_of: &impl Fn(&K) -> u64,
    ping_keys: &mut Vec<K>,
    ping_pay: &mut Vec<P>,
    out_keys: &mut Vec<K>,
    out_pay: &mut Vec<P>,
    scratch: &mut PassScratch<'_, K, P>,
) {
    let n = keys.len();
    debug_assert!(n > 0 && spec.bits > 0);
    // The per-pass bit split of `RadixClusterSpec::pass_bits` (leftmost
    // passes take the remainder bit), computed arithmetically so even this
    // bookkeeping allocates nothing.
    let num_passes = spec.passes.clamp(1, spec.bits) as usize;
    let base_bits = spec.bits / num_passes as u32;
    let extra_bits = spec.bits % num_passes as u32;

    scratch.segments.clear();
    scratch.segments.push(0);
    scratch.segments.push(n);

    let mut bits_remaining = spec.bits;
    for pass in 0..num_passes {
        let bp = if (pass as u32) < extra_bits {
            base_bits + 1
        } else {
            base_bits
        };
        bits_remaining -= bp;
        let shift = spec.ignore + bits_remaining;
        assert!(bp <= 31, "per-pass fan-out beyond 2^31 is not supported");
        let hp = 1usize << bp;
        let mask = (hp as u64) - 1;

        // Destination parity: the last pass writes `out`, the one before it
        // `ping`, and so on backwards.  The first pass always reads the
        // caller's input slices.
        let into_out = (num_passes - 1 - pass).is_multiple_of(2);
        let (src_keys, src_pay, dst_keys, dst_pay): (&[K], &[P], &mut Vec<K>, &mut Vec<P>) =
            match (pass == 0, into_out) {
                (true, true) => (keys, payloads, out_keys, out_pay),
                (true, false) => (keys, payloads, ping_keys, ping_pay),
                (false, true) => (ping_keys, ping_pay, out_keys, out_pay),
                (false, false) => (out_keys, out_pay, ping_keys, ping_pay),
            };
        // `resize` (not clone) sizes the destination: cheap fill on first
        // growth, a no-op in steady state — and immediately fully
        // overwritten by the scatter below either way.
        dst_keys.resize(n, src_keys[0]);
        dst_pay.resize(n, src_pay[0]);
        let dst_keys = &mut dst_keys[..n];
        let dst_pay = &mut dst_pay[..n];
        let src_keys = &src_keys[..n];
        let src_pay = &src_pay[..n];

        // The memoized radix-value buffer: filled fused with the histogram
        // (one hash per key per pass, one traversal for both), then read by
        // the scatter loop.
        scratch.radix.resize(n, 0);
        scratch.counts.resize(hp, 0);
        scratch.offsets.resize(hp, 0);
        scratch.new_segments.clear();

        let buffered = mode.buffered_for(hp);
        if buffered {
            scratch.stage_keys.resize(hp * SWWC_SLOT_ELEMS, src_keys[0]);
            scratch.stage_pay.resize(hp * SWWC_SLOT_ELEMS, src_pay[0]);
            scratch.stage_fill.resize(hp, 0);
        }

        let seg_count = scratch.segments.len() - 1;
        for seg in 0..seg_count {
            let (s, e) = (scratch.segments[seg], scratch.segments[seg + 1]);
            let counts = &mut scratch.counts[..hp];
            counts.fill(0);
            // Histogram + radix memoization in one traversal: each key is
            // hashed exactly once this pass.
            for (slot, k) in scratch.radix[s..e].iter_mut().zip(&src_keys[s..e]) {
                let r = ((bucket_of(k) >> shift) & mask) as u32;
                *slot = r;
                counts[r as usize] += 1;
            }
            // Exclusive prefix sums become both the scatter cursors and the
            // new segment boundaries.
            let mut cursor = s;
            let offsets = &mut scratch.offsets[..hp];
            for (b, &count) in counts.iter().enumerate() {
                offsets[b] = cursor;
                scratch.new_segments.push(cursor);
                cursor += count;
            }
            debug_assert_eq!(cursor, e);
            if buffered {
                scatter_buffered(
                    src_keys,
                    src_pay,
                    scratch.radix,
                    s..e,
                    offsets,
                    scratch.stage_keys,
                    scratch.stage_pay,
                    scratch.stage_fill,
                    dst_keys,
                    dst_pay,
                );
            } else {
                for ((&r, &k), &p) in scratch.radix[s..e]
                    .iter()
                    .zip(&src_keys[s..e])
                    .zip(&src_pay[s..e])
                {
                    let b = r as usize;
                    let dst = offsets[b];
                    offsets[b] += 1;
                    dst_keys[dst] = k;
                    dst_pay[dst] = p;
                }
            }
        }
        scratch.new_segments.push(n);
        std::mem::swap(scratch.segments, scratch.new_segments);
    }
    debug_assert_eq!(scratch.segments.len(), spec.num_clusters() + 1);
    debug_assert_eq!(out_keys.len(), n);
}

/// One segment's software-write-combining scatter: stage each tuple in its
/// cluster's slot; a full slot is flushed as one contiguous
/// [`SWWC_SLOT_ELEMS`]-element copy, partial slots are drained at segment
/// end.  Tuples reach exactly the cursor positions, in exactly the order,
/// the plain scatter would have written them to — the output is
/// byte-identical.
#[allow(clippy::too_many_arguments)]
fn scatter_buffered<K: Copy, P: Copy>(
    src_keys: &[K],
    src_pay: &[P],
    radix: &[u32],
    range: std::ops::Range<usize>,
    offsets: &mut [usize],
    stage_keys: &mut [K],
    stage_pay: &mut [P],
    stage_fill: &mut [usize],
    dst_keys: &mut [K],
    dst_pay: &mut [P],
) {
    let hp = offsets.len();
    stage_fill[..hp].fill(0);
    for ((&r, &key), &pay) in radix[range.clone()]
        .iter()
        .zip(&src_keys[range.clone()])
        .zip(&src_pay[range])
    {
        let b = r as usize;
        let slot = b * SWWC_SLOT_ELEMS;
        let fill = stage_fill[b];
        stage_keys[slot + fill] = key;
        stage_pay[slot + fill] = pay;
        if fill + 1 == SWWC_SLOT_ELEMS {
            let dst = offsets[b];
            dst_keys[dst..dst + SWWC_SLOT_ELEMS]
                .copy_from_slice(&stage_keys[slot..slot + SWWC_SLOT_ELEMS]);
            dst_pay[dst..dst + SWWC_SLOT_ELEMS]
                .copy_from_slice(&stage_pay[slot..slot + SWWC_SLOT_ELEMS]);
            offsets[b] += SWWC_SLOT_ELEMS;
            stage_fill[b] = 0;
        } else {
            stage_fill[b] = fill + 1;
        }
    }
    // Drain partial slots, in cluster order (order across clusters is
    // irrelevant for correctness — the regions are disjoint — but keeping it
    // deterministic costs nothing).
    for b in 0..hp {
        let fill = stage_fill[b];
        if fill > 0 {
            let slot = b * SWWC_SLOT_ELEMS;
            let dst = offsets[b];
            dst_keys[dst..dst + fill].copy_from_slice(&stage_keys[slot..slot + fill]);
            dst_pay[dst..dst + fill].copy_from_slice(&stage_pay[slot..slot + fill]);
            offsets[b] += fill;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{radix_cluster, radix_cluster_oids};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rdx_dsm::Oid;

    fn shuffled_oids(n: usize, seed: u64) -> Vec<Oid> {
        let mut v: Vec<Oid> = (0..n as Oid).collect();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn buffered_scatter_is_byte_identical_to_plain() {
        let oids = shuffled_oids(10_000, 42);
        let payloads: Vec<u32> = (0..10_000).collect();
        let mut scratch = ClusterScratch::new();
        for bits in [1u32, 3, 7, 10] {
            for passes in [1u32, 2, 3] {
                for ignore in [0u32, 2] {
                    let spec = RadixClusterSpec::partial(bits, passes, ignore);
                    let plain = radix_cluster_oids(&oids, &payloads, spec);
                    let buffered =
                        scratch.cluster_by(&oids, &payloads, spec, ScatterMode::Buffered, |&o| {
                            o as u64
                        });
                    assert_eq!(
                        buffered, plain,
                        "bits={bits} passes={passes} ignore={ignore}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_sizes_and_specs_stays_correct() {
        let mut scratch: ClusterScratch<Oid, u32> = ClusterScratch::new();
        // Deliberately descending sizes: buffers shrink logically but keep
        // their capacity, exercising the stale-tail handling.
        for (i, &n) in [8_192usize, 100, 3_001, 1, 513].iter().enumerate() {
            let oids = shuffled_oids(n, i as u64);
            let payloads: Vec<u32> = (0..n as u32).collect();
            for mode in [ScatterMode::Plain, ScatterMode::Buffered, ScatterMode::Auto] {
                let spec = RadixClusterSpec::partial(4, 2, 1);
                let expected = radix_cluster_oids(&oids, &payloads, spec);
                let owned = scratch.cluster_by(&oids, &payloads, spec, mode, |&o| o as u64);
                assert_eq!(owned, expected, "n={n} mode={mode:?} (owned)");
                let view =
                    scratch.cluster_by_in_scratch(&oids, &payloads, spec, mode, |&o| o as u64);
                assert_eq!(view.keys(), expected.keys(), "n={n} mode={mode:?} (view)");
                assert_eq!(view.payloads(), expected.payloads());
                assert_eq!(view.bounds(), expected.bounds());
                assert_eq!(view.len(), n);
                assert_eq!(view.num_clusters(), 16);
            }
        }
        assert!(scratch.resident_bytes() > 0);
    }

    #[test]
    fn all_one_cluster_skew_flushes_partial_slots_correctly() {
        // Every tuple lands in cluster 0 (plus a 3-element tail in another),
        // with a total that is not a multiple of the staging slot size: the
        // flush path must drain partial slots exactly.
        let mut oids = vec![0 as Oid; SWWC_SLOT_ELEMS * 7 + 5];
        oids.extend([17 as Oid; 3]);
        let payloads: Vec<u32> = (0..oids.len() as u32).collect();
        let spec = RadixClusterSpec::single_pass(5);
        let expected = radix_cluster_oids(&oids, &payloads, spec);
        let mut scratch = ClusterScratch::new();
        let got = scratch.cluster_by(&oids, &payloads, spec, ScatterMode::Buffered, |&o| o as u64);
        assert_eq!(got, expected);
    }

    #[test]
    fn hashed_in_scratch_matches_public_kernel() {
        let keys: Vec<u64> = (0..5_000).map(|i| i * 37 % 1_000).collect();
        let payloads: Vec<u32> = (0..5_000).collect();
        let spec = RadixClusterSpec::new(6, 2);
        let expected = radix_cluster(&keys, &payloads, spec);
        let mut scratch = ClusterScratch::new();
        let view = scratch.cluster_hashed_in_scratch(&keys, &payloads, spec, ScatterMode::Auto);
        assert_eq!(view.keys(), expected.keys());
        assert_eq!(view.payloads(), expected.payloads());
        assert_eq!(view.bounds(), expected.bounds());
        for j in 0..view.num_clusters() {
            assert_eq!(view.cluster_keys(j), expected.cluster_keys(j));
            assert_eq!(view.cluster_payloads(j), expected.cluster_payloads(j));
            assert_eq!(view.cluster_range(j), expected.cluster_range(j));
        }
        assert_eq!(&view.to_clustered(), &expected);
        assert!(!view.is_empty());
        assert_eq!(view.spec(), &spec);
    }

    #[test]
    fn degenerate_paths_copy_input_once_and_uphold_bounds() {
        // bits == 0: one all-covering cluster; the only copy is the output
        // itself (the arena makes no flip-buffer copies on this path).
        let mut scratch: ClusterScratch<Oid, u32> = ClusterScratch::new();
        let oids = vec![5 as Oid, 3, 9];
        let pay = vec![0u32, 1, 2];
        let spec = RadixClusterSpec::single_pass(0);
        let owned = scratch.cluster_by(&oids, &pay, spec, ScatterMode::Auto, |&o| o as u64);
        assert_eq!(owned.keys(), &oids[..]);
        assert_eq!(owned.payloads(), &pay[..]);
        assert_eq!(owned.bounds(), &[0, 3]);
        let view = scratch.cluster_oids_in_scratch(&oids, &pay, spec, ScatterMode::Auto);
        assert_eq!(view.keys(), &oids[..]);
        assert_eq!(view.bounds(), &[0, 3]);
        // Empty input: H empty clusters.
        let view = scratch.cluster_oids_in_scratch(
            &[],
            &[],
            RadixClusterSpec::single_pass(3),
            ScatterMode::Auto,
        );
        assert!(view.is_empty());
        assert_eq!(view.num_clusters(), 8);
        assert_eq!(view.bounds(), &[0usize; 9][..]);
    }

    #[test]
    fn view_is_none_before_first_run() {
        let scratch: ClusterScratch<Oid, u32> = ClusterScratch::new();
        assert!(scratch.view().is_none());
        assert_eq!(scratch.resident_bytes(), 0);
    }

    #[test]
    fn owned_clustering_invalidates_the_previous_view() {
        // An owned-output `cluster_by` rewrites `segments` but not the front
        // buffers; serving the old view afterwards would pair arrays from
        // two different runs.  The view must be gone instead.
        let mut scratch: ClusterScratch<Oid, u32> = ClusterScratch::new();
        let small: Vec<Oid> = (0..64).rev().collect();
        let small_pay: Vec<u32> = (0..64).collect();
        let spec = RadixClusterSpec::single_pass(3);
        let view = scratch.cluster_oids_in_scratch(&small, &small_pay, spec, ScatterMode::Auto);
        assert_eq!(view.len(), 64);
        let big: Vec<Oid> = (0..4_096).rev().collect();
        let big_pay: Vec<u32> = (0..4_096).collect();
        let owned = scratch.cluster_by(
            &big,
            &big_pay,
            RadixClusterSpec::single_pass(6),
            ScatterMode::Auto,
            |&o| o as u64,
        );
        assert_eq!(owned.len(), 4_096);
        assert!(
            scratch.view().is_none(),
            "stale view must not survive an owned run"
        );
        // A fresh in-scratch run re-establishes a coherent view.
        let view = scratch.cluster_oids_in_scratch(&small, &small_pay, spec, ScatterMode::Auto);
        assert_eq!(
            view.to_clustered(),
            radix_cluster_oids(&small, &small_pay, spec)
        );
    }

    #[test]
    fn auto_mode_buffers_only_beyond_the_default_budget() {
        assert!(!ScatterMode::Auto.buffered_for(DEFAULT_SCATTER_CURSOR_BUDGET));
        assert!(ScatterMode::Auto.buffered_for(DEFAULT_SCATTER_CURSOR_BUDGET + 1));
        assert!(!ScatterMode::Plain.buffered_for(usize::MAX));
        assert!(ScatterMode::Buffered.buffered_for(2));
        assert_eq!(ScatterMode::default(), ScatterMode::Auto);
    }

    #[test]
    fn cursor_budgets_match_the_paper_platform() {
        let p = CacheParams::paper_pentium4();
        // 4096 L2 lines / 2 = 2048 — exactly the documented default.
        assert_eq!(scatter_cursor_budget(&p), DEFAULT_SCATTER_CURSOR_BUDGET);
        // Oid pairs (4 + 4 bytes): 256 KB of staging budget / 64-byte slots.
        assert_eq!(buffered_cursor_budget(8, &p), 4096);
        // Wider pairs shrink the buffered reach.
        assert!(buffered_cursor_budget(16, &p) < buffered_cursor_budget(8, &p));
    }

    #[test]
    fn plan_cluster_passes_prefers_one_buffered_pass_over_two_plain() {
        let p = CacheParams::paper_pentium4();
        // Within the plain budget: one plain pass.
        assert_eq!(plan_cluster_passes(10, 8, &p), (1, ScatterMode::Plain));
        assert_eq!(plan_cluster_passes(11, 8, &p), (1, ScatterMode::Plain));
        // Beyond plain but within the staging budget: ONE buffered pass
        // where the seed rule (`bits > 11 → 2 passes`) planned two.
        assert_eq!(plan_cluster_passes(12, 8, &p), (1, ScatterMode::Buffered));
        // Beyond both budgets: multi-pass plain, each pass within budget.
        let (passes, mode) = plan_cluster_passes(20, 8, &p);
        assert_eq!(mode, ScatterMode::Plain);
        assert_eq!(passes, 2);
        assert!(20u32.div_ceil(passes) <= 11);
        // Degenerate.
        assert_eq!(plan_cluster_passes(0, 8, &p), (1, ScatterMode::Plain));
    }
}
