//! Radix-Cluster: multi-pass, finely tunable partitioning (paper §2.2, §3.1).
//!
//! `radix_cluster(B, P)` partitions its input into `H = 2^B` clusters on the
//! lower `B` radix bits of the (hashed) key, using `P` sequential passes so
//! that no single pass creates more output cursors than the caches and TLB can
//! sustain.  The *partial* variant additionally ignores the lowermost `I` bits
//! — stopping early — which is what turns Radix-Sort of a join index into the
//! much cheaper partial clustering that Positional-Join needs (§3.1).
//!
//! Keys from dense oid domains are clustered without hashing; arbitrary join
//! keys are hashed first (see [`crate::hash`]).

mod scratch;
mod spec;

pub use scratch::{
    buffered_cursor_budget, plan_cluster_passes, plan_partial_cluster, scatter_cursor_budget,
    ClusterScratch, ScatterMode, ScratchClustered, DEFAULT_SCATTER_CURSOR_BUDGET, OID_PAIR_BYTES,
    SWWC_SLOT_ELEMS,
};
pub use spec::RadixClusterSpec;

use crate::hash::{hash_key, radix_field, significant_bits};
use rdx_cache::CacheParams;
use rdx_dsm::Oid;

/// The result of radix-clustering a `(key, payload)` sequence: both arrays
/// reordered so that cluster 0 comes first, plus the cluster boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustered<K, P> {
    keys: Vec<K>,
    payloads: Vec<P>,
    /// `bounds[j]..bounds[j+1]` is the range of cluster `j`; `len = H + 1`.
    bounds: Vec<usize>,
    spec: RadixClusterSpec,
}

impl<K, P> Clustered<K, P> {
    /// Number of clusters `H = 2^B`.
    pub fn num_clusters(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the input was empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The clustering specification that produced this result.
    pub fn spec(&self) -> &RadixClusterSpec {
        &self.spec
    }

    /// The reordered keys.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// The reordered payloads.
    pub fn payloads(&self) -> &[P] {
        &self.payloads
    }

    /// The cluster boundary offsets (`H + 1` entries).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The tuple range of cluster `j`.
    pub fn cluster_range(&self, j: usize) -> std::ops::Range<usize> {
        self.bounds[j]..self.bounds[j + 1]
    }

    /// Keys of cluster `j`.
    pub fn cluster_keys(&self, j: usize) -> &[K] {
        &self.keys[self.cluster_range(j)]
    }

    /// Payloads of cluster `j`.
    pub fn cluster_payloads(&self, j: usize) -> &[P] {
        &self.payloads[self.cluster_range(j)]
    }

    /// Consumes the clustering, returning `(keys, payloads, bounds)`.
    pub fn into_parts(self) -> (Vec<K>, Vec<P>, Vec<usize>) {
        (self.keys, self.payloads, self.bounds)
    }

    /// Assembles a `Clustered` from already-clustered parts.  Used by the
    /// traced variants in [`crate::trace`] and by the parallel kernels in
    /// `rdx-exec`, which run the same algorithm but own their scatter loops
    /// (per-thread histograms + prefix-sum merge into disjoint output slices).
    ///
    /// The caller guarantees the semantic invariant that `keys` really is
    /// clustered on `spec` with the given `bounds`; only the structural
    /// invariants are checked here.
    ///
    /// # Panics
    /// Panics if the bounds do not cover the keys or have the wrong cluster
    /// count for `spec`.
    pub fn from_parts(
        keys: Vec<K>,
        payloads: Vec<P>,
        bounds: Vec<usize>,
        spec: RadixClusterSpec,
    ) -> Self {
        assert_eq!(keys.len(), payloads.len());
        assert_eq!(bounds.len(), spec.num_clusters() + 1);
        assert_eq!(*bounds.last().unwrap(), keys.len());
        Clustered {
            keys,
            payloads,
            bounds,
            spec,
        }
    }
}

/// Radix-clusters `(key, payload)` pairs on the hashed key (the join-input
/// case): `radix_cluster(B, P)` of §2.2.
///
/// Allocates a one-shot [`ClusterScratch`]; callers on a hot path should
/// hold their own and use [`radix_cluster_with_scratch`] instead.
pub fn radix_cluster<P: Copy>(
    keys: &[u64],
    payloads: &[P],
    spec: RadixClusterSpec,
) -> Clustered<u64, P> {
    radix_cluster_with_scratch(
        keys,
        payloads,
        spec,
        ScatterMode::Auto,
        &mut ClusterScratch::new(),
    )
}

/// [`radix_cluster`] with caller-provided working memory and an explicit
/// scatter mode: the returned [`Clustered`] is the only per-call allocation
/// once the scratch has warmed up, and each key is hashed exactly once per
/// pass.  Output is byte-identical to [`radix_cluster`] for every mode.
pub fn radix_cluster_with_scratch<P: Copy>(
    keys: &[u64],
    payloads: &[P],
    spec: RadixClusterSpec,
    mode: ScatterMode,
    scratch: &mut ClusterScratch<u64, P>,
) -> Clustered<u64, P> {
    scratch.cluster_by(keys, payloads, spec, mode, |&k| hash_key(k))
}

/// Radix-clusters `(oid, payload)` pairs on the *unhashed* oid value (the
/// join-index case of §3.1): oids come from a dense domain, so the radix bits
/// of the value itself are already uniform and order-preserving.
///
/// Allocates a one-shot [`ClusterScratch`]; callers on a hot path should
/// hold their own and use [`radix_cluster_oids_with_scratch`] instead.
pub fn radix_cluster_oids<P: Copy>(
    oids: &[Oid],
    payloads: &[P],
    spec: RadixClusterSpec,
) -> Clustered<Oid, P> {
    radix_cluster_oids_with_scratch(
        oids,
        payloads,
        spec,
        ScatterMode::Auto,
        &mut ClusterScratch::new(),
    )
}

/// [`radix_cluster_oids`] with caller-provided working memory and an
/// explicit scatter mode (see [`radix_cluster_with_scratch`]).
pub fn radix_cluster_oids_with_scratch<P: Copy>(
    oids: &[Oid],
    payloads: &[P],
    spec: RadixClusterSpec,
    mode: ScatterMode,
    scratch: &mut ClusterScratch<Oid, P>,
) -> Clustered<Oid, P> {
    scratch.cluster_by(oids, payloads, spec, mode, |&o| o as u64)
}

/// Radix-Sort of an oid column: a Radix-Cluster on *all* significant bits with
/// no ignore bits, "equivalent to Radix-Sort" (§3.1).  Uses two passes once
/// more than 2048 clusters would be needed, mirroring the paper's observation
/// that one pass stops scaling at a few thousand output cursors.
pub fn radix_sort_oids<P: Copy>(oids: &[Oid], payloads: &[P], domain: usize) -> Clustered<Oid, P> {
    radix_cluster_oids(oids, payloads, radix_sort_spec(domain))
}

/// The clustering configuration [`radix_sort_oids`] uses for a dense oid
/// `domain`: all significant bits, no ignore bits, and a pass count that
/// keeps every pass's cursor set within the
/// [`DEFAULT_SCATTER_CURSOR_BUDGET`] of 2048 — the documented fallback for
/// when no measured [`CacheParams`] is at hand (it reproduces the seed
/// kernel's `bits > 11 → 2 passes` rule exactly).  Shared with the parallel
/// sort in `rdx-exec` so the two can never drift apart; callers that *do*
/// know their hardware should use [`radix_sort_spec_for`].
pub fn radix_sort_spec(domain: usize) -> RadixClusterSpec {
    let bits = significant_bits(domain);
    RadixClusterSpec::partial(
        bits,
        passes_for_budget(bits, DEFAULT_SCATTER_CURSOR_BUDGET),
        0,
    )
}

/// [`radix_sort_spec`] with the pass threshold derived from the hardware
/// model instead of the 2048-cursor default: a pass never creates more
/// cursors than [`scatter_cursor_budget`] allows, so the pass rule and the
/// cost-model planner can never disagree about where single-pass clustering
/// stops scaling.  (For [`CacheParams::paper_pentium4`] the derived budget
/// *is* 2048, so the two functions agree there.)
pub fn radix_sort_spec_for(domain: usize, params: &CacheParams) -> RadixClusterSpec {
    let bits = significant_bits(domain);
    RadixClusterSpec::partial(
        bits,
        passes_for_budget(bits, scatter_cursor_budget(params)),
        0,
    )
}

/// Smallest pass count splitting `bits` so no pass exceeds `cursor_budget`
/// output cursors.
pub fn passes_for_budget(bits: u32, cursor_budget: usize) -> u32 {
    if bits == 0 {
        return 1;
    }
    let bits_per_pass = (usize::BITS - 1 - cursor_budget.max(2).leading_zeros()).max(1);
    bits.div_ceil(bits_per_pass).max(1)
}

/// `radix_count`: recomputes the cluster sizes (as boundary offsets) of an
/// already-clustered oid column, as used in Fig. 4 to initialise the
/// Radix-Decluster cluster-border structure.
///
/// The column must already be clustered on `(bits, ignore)`; the returned
/// boundaries equal the ones `radix_cluster_oids` produced.
pub fn radix_count(oids: &[Oid], bits: u32, ignore: u32) -> Vec<usize> {
    let clusters = 1usize << bits;
    let mut counts = vec![0usize; clusters];
    for &o in oids {
        counts[radix_field(o as u64, bits, ignore) as usize] += 1;
    }
    let mut bounds = Vec::with_capacity(clusters + 1);
    let mut acc = 0;
    bounds.push(0);
    for c in counts {
        acc += c;
        bounds.push(acc);
    }
    bounds
}

/// Checks that `oids` is clustered on `(bits, ignore)`: the radix field must
/// be non-decreasing over the column.  Used by tests and debug assertions.
pub fn is_clustered(oids: &[Oid], bits: u32, ignore: u32) -> bool {
    oids.windows(2)
        .all(|w| radix_field(w[0] as u64, bits, ignore) <= radix_field(w[1] as u64, bits, ignore))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn shuffled_oids(n: usize, seed: u64) -> Vec<Oid> {
        let mut v: Vec<Oid> = (0..n as Oid).collect();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn zero_bits_is_identity() {
        let keys = vec![5u64, 3, 9];
        let pay = vec![0u32, 1, 2];
        let c = radix_cluster(&keys, &pay, RadixClusterSpec::single_pass(0));
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.keys(), &keys[..]);
        assert_eq!(c.payloads(), &pay[..]);
    }

    #[test]
    fn clusters_cover_input_and_preserve_pairs() {
        let oids = shuffled_oids(1000, 1);
        let pay: Vec<u32> = (0..1000).collect();
        let c = radix_cluster_oids(&oids, &pay, RadixClusterSpec::single_pass(4));
        assert_eq!(c.len(), 1000);
        assert_eq!(c.num_clusters(), 16);
        assert_eq!(*c.bounds().last().unwrap(), 1000);
        // Pairs stay together: payload i still rides with oid oids[i].
        for (k, p) in c.keys().iter().zip(c.payloads()) {
            assert_eq!(oids[*p as usize], *k);
        }
    }

    #[test]
    fn oid_clustering_groups_by_radix_field() {
        let oids = shuffled_oids(256, 2);
        let pay = vec![0u8; 256];
        let c = radix_cluster_oids(&oids, &pay, RadixClusterSpec::single_pass(4));
        for j in 0..c.num_clusters() {
            for &o in c.cluster_keys(j) {
                assert_eq!(radix_field(o as u64, 4, 0) as usize, j);
            }
        }
        assert!(is_clustered(c.keys(), 4, 0));
    }

    #[test]
    fn multi_pass_equals_single_pass() {
        let oids = shuffled_oids(5000, 3);
        let pay: Vec<u32> = (0..5000).collect();
        let one = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(8, 1, 0));
        let two = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(8, 2, 0));
        let three = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(8, 3, 0));
        assert_eq!(one.bounds(), two.bounds());
        // Within a cluster the relative input order is preserved by every
        // per-pass counting sort, so the outputs are identical, not merely
        // equivalent.
        assert_eq!(one.keys(), two.keys());
        assert_eq!(one.payloads(), three.payloads());
    }

    #[test]
    fn clustering_is_stable_within_clusters() {
        // Property (2) of §3.2: "within each cluster, the oids are still
        // sorted" — when the payload order follows an already-sorted key.
        let oids: Vec<Oid> = (0..1024).collect();
        let pay: Vec<u32> = (0..1024).collect();
        let c = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(3, 1, 2));
        for j in 0..c.num_clusters() {
            let keys = c.cluster_keys(j);
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "cluster {j} not sorted"
            );
        }
    }

    #[test]
    fn ignore_bits_stop_early() {
        let oids = shuffled_oids(4096, 4);
        let pay = vec![(); 4096];
        let c = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(4, 1, 8));
        // Clustered on bits 8..12 but NOT on the lowermost 8 bits.
        assert!(is_clustered(c.keys(), 4, 8));
        assert!(!is_clustered(c.keys(), 12, 0));
    }

    #[test]
    fn radix_sort_sorts_oids() {
        let oids = shuffled_oids(10_000, 5);
        let pay: Vec<u32> = (0..10_000).collect();
        let c = radix_sort_oids(&oids, &pay, 10_000);
        for w in c.keys().windows(2) {
            assert!(w[0] <= w[1]);
        }
        // All values still present.
        let mut sorted = c.keys().to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 10_000);
    }

    #[test]
    fn radix_count_matches_cluster_bounds() {
        let oids = shuffled_oids(3000, 6);
        let pay = vec![(); 3000];
        let spec = RadixClusterSpec::partial(5, 1, 3);
        let c = radix_cluster_oids(&oids, &pay, spec);
        assert_eq!(radix_count(c.keys(), 5, 3), c.bounds());
    }

    #[test]
    fn hashed_clustering_spreads_sequential_keys() {
        let keys: Vec<u64> = (0..10_000).collect();
        let pay = vec![(); 10_000];
        let c = radix_cluster(&keys, &pay, RadixClusterSpec::single_pass(6));
        let expected = 10_000 / 64;
        for j in 0..c.num_clusters() {
            let size = c.cluster_range(j).len();
            assert!(
                size > expected / 2 && size < expected * 2,
                "cluster {j} holds {size}"
            );
        }
    }

    #[test]
    fn empty_input_keeps_full_cluster_structure() {
        // An empty input must still expose 2^B (empty) clusters, so that
        // per-cluster consumers like Partitioned Hash-Join can iterate them.
        let c = radix_cluster::<u32>(&[], &[], RadixClusterSpec::single_pass(4));
        assert_eq!(c.len(), 0);
        assert_eq!(c.num_clusters(), 16);
        for j in 0..16 {
            assert!(c.cluster_range(j).is_empty());
        }
        // Zero bits on a non-empty input is a single all-covering cluster.
        let single = radix_cluster(&[7u64, 8], &[0u32, 1], RadixClusterSpec::single_pass(0));
        assert_eq!(single.num_clusters(), 1);
        assert_eq!(single.cluster_range(0), 0..2);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        radix_cluster(&[1u64], &[1u32, 2], RadixClusterSpec::single_pass(1));
    }

    #[test]
    fn with_scratch_single_pass_and_zero_bits_match_the_wrapper() {
        // The degenerate (`bits == 0`) and 1-pass paths are where the seed
        // kernel wasted its flip-buffer copies; the arena paths must agree
        // with the wrappers bit for bit on both, across scratch reuse.
        let oids = shuffled_oids(2_000, 11);
        let payloads: Vec<u32> = (0..2_000).collect();
        let mut scratch = ClusterScratch::new();
        for spec in [
            RadixClusterSpec::single_pass(0),
            RadixClusterSpec::single_pass(5),
            RadixClusterSpec::partial(6, 1, 3),
        ] {
            let expected = radix_cluster_oids(&oids, &payloads, spec);
            for mode in [ScatterMode::Plain, ScatterMode::Buffered, ScatterMode::Auto] {
                let got =
                    radix_cluster_oids_with_scratch(&oids, &payloads, spec, mode, &mut scratch);
                assert_eq!(got, expected, "spec {spec:?} mode {mode:?}");
            }
        }
        // Hashed-key variant too, 1-pass.
        let keys: Vec<u64> = (0..1_000).collect();
        let pay = vec![(); 1_000];
        let spec = RadixClusterSpec::single_pass(4);
        let mut hscratch = ClusterScratch::new();
        assert_eq!(
            radix_cluster_with_scratch(&keys, &pay, spec, ScatterMode::Buffered, &mut hscratch),
            radix_cluster(&keys, &pay, spec),
        );
    }

    #[test]
    fn radix_sort_spec_for_derives_the_documented_default_on_the_paper_platform() {
        let p = CacheParams::paper_pentium4();
        // The derived budget is exactly 2048, so the two rules agree for
        // every domain the 2048-fallback handles with ≤ 2 passes.
        for domain in [100usize, 2_048, 10_000, 1 << 20, 1 << 22] {
            assert_eq!(radix_sort_spec_for(domain, &p), radix_sort_spec(domain));
        }
        assert_eq!(radix_sort_spec(10_000).passes, 2);
        assert_eq!(radix_sort_spec(2_048).passes, 1);
        // A smaller cache tightens the threshold: the tiny hierarchy's
        // budget is 64 cursors, so 10 bits already need two passes.
        let tiny = CacheParams::tiny_for_tests();
        assert_eq!(scatter_cursor_budget(&tiny), 64);
        assert_eq!(radix_sort_spec_for(1 << 10, &tiny).passes, 2);
        assert_eq!(radix_sort_spec_for(1 << 5, &tiny).passes, 1);
        // The helper floors sanely.
        assert_eq!(passes_for_budget(0, 2048), 1);
        assert_eq!(passes_for_budget(11, 2048), 1);
        assert_eq!(passes_for_budget(12, 2048), 2);
        assert_eq!(passes_for_budget(33, 2048), 3);
        assert_eq!(passes_for_budget(4, 1), 4);
    }
}
