//! Radix-Cluster: multi-pass, finely tunable partitioning (paper §2.2, §3.1).
//!
//! `radix_cluster(B, P)` partitions its input into `H = 2^B` clusters on the
//! lower `B` radix bits of the (hashed) key, using `P` sequential passes so
//! that no single pass creates more output cursors than the caches and TLB can
//! sustain.  The *partial* variant additionally ignores the lowermost `I` bits
//! — stopping early — which is what turns Radix-Sort of a join index into the
//! much cheaper partial clustering that Positional-Join needs (§3.1).
//!
//! Keys from dense oid domains are clustered without hashing; arbitrary join
//! keys are hashed first (see [`crate::hash`]).

mod spec;

pub use spec::RadixClusterSpec;

use crate::hash::{hash_key, radix_field, significant_bits};
use rdx_dsm::Oid;

/// The result of radix-clustering a `(key, payload)` sequence: both arrays
/// reordered so that cluster 0 comes first, plus the cluster boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustered<K, P> {
    keys: Vec<K>,
    payloads: Vec<P>,
    /// `bounds[j]..bounds[j+1]` is the range of cluster `j`; `len = H + 1`.
    bounds: Vec<usize>,
    spec: RadixClusterSpec,
}

impl<K, P> Clustered<K, P> {
    /// Number of clusters `H = 2^B`.
    pub fn num_clusters(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the input was empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The clustering specification that produced this result.
    pub fn spec(&self) -> &RadixClusterSpec {
        &self.spec
    }

    /// The reordered keys.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// The reordered payloads.
    pub fn payloads(&self) -> &[P] {
        &self.payloads
    }

    /// The cluster boundary offsets (`H + 1` entries).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The tuple range of cluster `j`.
    pub fn cluster_range(&self, j: usize) -> std::ops::Range<usize> {
        self.bounds[j]..self.bounds[j + 1]
    }

    /// Keys of cluster `j`.
    pub fn cluster_keys(&self, j: usize) -> &[K] {
        &self.keys[self.cluster_range(j)]
    }

    /// Payloads of cluster `j`.
    pub fn cluster_payloads(&self, j: usize) -> &[P] {
        &self.payloads[self.cluster_range(j)]
    }

    /// Consumes the clustering, returning `(keys, payloads, bounds)`.
    pub fn into_parts(self) -> (Vec<K>, Vec<P>, Vec<usize>) {
        (self.keys, self.payloads, self.bounds)
    }

    /// Assembles a `Clustered` from already-clustered parts.  Used by the
    /// traced variants in [`crate::trace`] and by the parallel kernels in
    /// `rdx-exec`, which run the same algorithm but own their scatter loops
    /// (per-thread histograms + prefix-sum merge into disjoint output slices).
    ///
    /// The caller guarantees the semantic invariant that `keys` really is
    /// clustered on `spec` with the given `bounds`; only the structural
    /// invariants are checked here.
    ///
    /// # Panics
    /// Panics if the bounds do not cover the keys or have the wrong cluster
    /// count for `spec`.
    pub fn from_parts(
        keys: Vec<K>,
        payloads: Vec<P>,
        bounds: Vec<usize>,
        spec: RadixClusterSpec,
    ) -> Self {
        assert_eq!(keys.len(), payloads.len());
        assert_eq!(bounds.len(), spec.num_clusters() + 1);
        assert_eq!(*bounds.last().unwrap(), keys.len());
        Clustered {
            keys,
            payloads,
            bounds,
            spec,
        }
    }
}

/// Multi-pass counting-sort clustering shared by the hashed and oid variants.
///
/// `bucket_of` maps a key to its full radix value; the spec's `bits`/`ignore`
/// select which field of that value drives the clustering, and `passes`
/// determines how many left-to-right refinement passes are used.
fn cluster_impl<K: Copy, P: Copy>(
    keys: &[K],
    payloads: &[P],
    spec: RadixClusterSpec,
    bucket_of: impl Fn(&K) -> u64,
) -> Clustered<K, P> {
    assert_eq!(keys.len(), payloads.len(), "keys/payloads length mismatch");
    let n = keys.len();
    let total_clusters = spec.num_clusters();

    if spec.bits == 0 || n == 0 {
        // Degenerate cases still uphold the `bounds.len() == H + 1` invariant:
        // zero bits means one cluster holding everything; an empty input means
        // `H` empty clusters.
        let mut bounds = vec![0usize; total_clusters];
        bounds.push(n);
        return Clustered {
            keys: keys.to_vec(),
            payloads: payloads.to_vec(),
            bounds,
            spec,
        };
    }

    let mut cur_keys = keys.to_vec();
    let mut cur_pay = payloads.to_vec();
    let mut out_keys = cur_keys.clone();
    let mut out_pay = cur_pay.clone();
    let mut segments: Vec<usize> = vec![0, n];

    // Bits used by each pass, leftmost (most significant of the B-bit field)
    // first, exactly as §2.2 describes.
    let pass_bits = spec.pass_bits();
    let mut bits_remaining = spec.bits;

    for bp in pass_bits {
        bits_remaining -= bp;
        let shift = spec.ignore + bits_remaining;
        let hp = 1usize << bp;
        let mask = (hp - 1) as u64;

        let mut new_segments = Vec::with_capacity((segments.len() - 1) * hp + 1);
        let mut counts = vec![0usize; hp];

        for seg in segments.windows(2) {
            let (s, e) = (seg[0], seg[1]);
            counts.iter_mut().for_each(|c| *c = 0);
            for k in &cur_keys[s..e] {
                let b = ((bucket_of(k) >> shift) & mask) as usize;
                counts[b] += 1;
            }
            // Exclusive prefix sums become both the scatter cursors and the
            // new segment boundaries.
            let mut cursor = s;
            let mut offsets = vec![0usize; hp];
            for b in 0..hp {
                offsets[b] = cursor;
                new_segments.push(cursor);
                cursor += counts[b];
            }
            debug_assert_eq!(cursor, e);
            for i in s..e {
                let b = ((bucket_of(&cur_keys[i]) >> shift) & mask) as usize;
                let dst = offsets[b];
                offsets[b] += 1;
                out_keys[dst] = cur_keys[i];
                out_pay[dst] = cur_pay[i];
            }
        }
        new_segments.push(n);
        segments = new_segments;
        std::mem::swap(&mut cur_keys, &mut out_keys);
        std::mem::swap(&mut cur_pay, &mut out_pay);
    }

    debug_assert_eq!(segments.len(), total_clusters + 1);
    Clustered {
        keys: cur_keys,
        payloads: cur_pay,
        bounds: segments,
        spec,
    }
}

/// Radix-clusters `(key, payload)` pairs on the hashed key (the join-input
/// case): `radix_cluster(B, P)` of §2.2.
pub fn radix_cluster<P: Copy>(
    keys: &[u64],
    payloads: &[P],
    spec: RadixClusterSpec,
) -> Clustered<u64, P> {
    cluster_impl(keys, payloads, spec, |&k| hash_key(k))
}

/// Radix-clusters `(oid, payload)` pairs on the *unhashed* oid value (the
/// join-index case of §3.1): oids come from a dense domain, so the radix bits
/// of the value itself are already uniform and order-preserving.
pub fn radix_cluster_oids<P: Copy>(
    oids: &[Oid],
    payloads: &[P],
    spec: RadixClusterSpec,
) -> Clustered<Oid, P> {
    cluster_impl(oids, payloads, spec, |&o| o as u64)
}

/// Radix-Sort of an oid column: a Radix-Cluster on *all* significant bits with
/// no ignore bits, "equivalent to Radix-Sort" (§3.1).  Uses two passes once
/// more than 2048 clusters would be needed, mirroring the paper's observation
/// that one pass stops scaling at a few thousand output cursors.
pub fn radix_sort_oids<P: Copy>(oids: &[Oid], payloads: &[P], domain: usize) -> Clustered<Oid, P> {
    radix_cluster_oids(oids, payloads, radix_sort_spec(domain))
}

/// The clustering configuration [`radix_sort_oids`] uses for a dense oid
/// `domain`: all significant bits, no ignore bits, two passes once a single
/// pass would need more than 2048 output cursors.  Shared with the parallel
/// sort in `rdx-exec` so the two can never drift apart.
pub fn radix_sort_spec(domain: usize) -> RadixClusterSpec {
    let bits = significant_bits(domain);
    let passes = if bits > 11 { 2 } else { 1 };
    RadixClusterSpec::partial(bits, passes, 0)
}

/// `radix_count`: recomputes the cluster sizes (as boundary offsets) of an
/// already-clustered oid column, as used in Fig. 4 to initialise the
/// Radix-Decluster cluster-border structure.
///
/// The column must already be clustered on `(bits, ignore)`; the returned
/// boundaries equal the ones `radix_cluster_oids` produced.
pub fn radix_count(oids: &[Oid], bits: u32, ignore: u32) -> Vec<usize> {
    let clusters = 1usize << bits;
    let mut counts = vec![0usize; clusters];
    for &o in oids {
        counts[radix_field(o as u64, bits, ignore) as usize] += 1;
    }
    let mut bounds = Vec::with_capacity(clusters + 1);
    let mut acc = 0;
    bounds.push(0);
    for c in counts {
        acc += c;
        bounds.push(acc);
    }
    bounds
}

/// Checks that `oids` is clustered on `(bits, ignore)`: the radix field must
/// be non-decreasing over the column.  Used by tests and debug assertions.
pub fn is_clustered(oids: &[Oid], bits: u32, ignore: u32) -> bool {
    oids.windows(2)
        .all(|w| radix_field(w[0] as u64, bits, ignore) <= radix_field(w[1] as u64, bits, ignore))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn shuffled_oids(n: usize, seed: u64) -> Vec<Oid> {
        let mut v: Vec<Oid> = (0..n as Oid).collect();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn zero_bits_is_identity() {
        let keys = vec![5u64, 3, 9];
        let pay = vec![0u32, 1, 2];
        let c = radix_cluster(&keys, &pay, RadixClusterSpec::single_pass(0));
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.keys(), &keys[..]);
        assert_eq!(c.payloads(), &pay[..]);
    }

    #[test]
    fn clusters_cover_input_and_preserve_pairs() {
        let oids = shuffled_oids(1000, 1);
        let pay: Vec<u32> = (0..1000).collect();
        let c = radix_cluster_oids(&oids, &pay, RadixClusterSpec::single_pass(4));
        assert_eq!(c.len(), 1000);
        assert_eq!(c.num_clusters(), 16);
        assert_eq!(*c.bounds().last().unwrap(), 1000);
        // Pairs stay together: payload i still rides with oid oids[i].
        for (k, p) in c.keys().iter().zip(c.payloads()) {
            assert_eq!(oids[*p as usize], *k);
        }
    }

    #[test]
    fn oid_clustering_groups_by_radix_field() {
        let oids = shuffled_oids(256, 2);
        let pay = vec![0u8; 256];
        let c = radix_cluster_oids(&oids, &pay, RadixClusterSpec::single_pass(4));
        for j in 0..c.num_clusters() {
            for &o in c.cluster_keys(j) {
                assert_eq!(radix_field(o as u64, 4, 0) as usize, j);
            }
        }
        assert!(is_clustered(c.keys(), 4, 0));
    }

    #[test]
    fn multi_pass_equals_single_pass() {
        let oids = shuffled_oids(5000, 3);
        let pay: Vec<u32> = (0..5000).collect();
        let one = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(8, 1, 0));
        let two = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(8, 2, 0));
        let three = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(8, 3, 0));
        assert_eq!(one.bounds(), two.bounds());
        // Within a cluster the relative input order is preserved by every
        // per-pass counting sort, so the outputs are identical, not merely
        // equivalent.
        assert_eq!(one.keys(), two.keys());
        assert_eq!(one.payloads(), three.payloads());
    }

    #[test]
    fn clustering_is_stable_within_clusters() {
        // Property (2) of §3.2: "within each cluster, the oids are still
        // sorted" — when the payload order follows an already-sorted key.
        let oids: Vec<Oid> = (0..1024).collect();
        let pay: Vec<u32> = (0..1024).collect();
        let c = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(3, 1, 2));
        for j in 0..c.num_clusters() {
            let keys = c.cluster_keys(j);
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "cluster {j} not sorted"
            );
        }
    }

    #[test]
    fn ignore_bits_stop_early() {
        let oids = shuffled_oids(4096, 4);
        let pay = vec![(); 4096];
        let c = radix_cluster_oids(&oids, &pay, RadixClusterSpec::partial(4, 1, 8));
        // Clustered on bits 8..12 but NOT on the lowermost 8 bits.
        assert!(is_clustered(c.keys(), 4, 8));
        assert!(!is_clustered(c.keys(), 12, 0));
    }

    #[test]
    fn radix_sort_sorts_oids() {
        let oids = shuffled_oids(10_000, 5);
        let pay: Vec<u32> = (0..10_000).collect();
        let c = radix_sort_oids(&oids, &pay, 10_000);
        for w in c.keys().windows(2) {
            assert!(w[0] <= w[1]);
        }
        // All values still present.
        let mut sorted = c.keys().to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 10_000);
    }

    #[test]
    fn radix_count_matches_cluster_bounds() {
        let oids = shuffled_oids(3000, 6);
        let pay = vec![(); 3000];
        let spec = RadixClusterSpec::partial(5, 1, 3);
        let c = radix_cluster_oids(&oids, &pay, spec);
        assert_eq!(radix_count(c.keys(), 5, 3), c.bounds());
    }

    #[test]
    fn hashed_clustering_spreads_sequential_keys() {
        let keys: Vec<u64> = (0..10_000).collect();
        let pay = vec![(); 10_000];
        let c = radix_cluster(&keys, &pay, RadixClusterSpec::single_pass(6));
        let expected = 10_000 / 64;
        for j in 0..c.num_clusters() {
            let size = c.cluster_range(j).len();
            assert!(
                size > expected / 2 && size < expected * 2,
                "cluster {j} holds {size}"
            );
        }
    }

    #[test]
    fn empty_input_keeps_full_cluster_structure() {
        // An empty input must still expose 2^B (empty) clusters, so that
        // per-cluster consumers like Partitioned Hash-Join can iterate them.
        let c = radix_cluster::<u32>(&[], &[], RadixClusterSpec::single_pass(4));
        assert_eq!(c.len(), 0);
        assert_eq!(c.num_clusters(), 16);
        for j in 0..16 {
            assert!(c.cluster_range(j).is_empty());
        }
        // Zero bits on a non-empty input is a single all-covering cluster.
        let single = radix_cluster(&[7u64, 8], &[0u32, 1], RadixClusterSpec::single_pass(0));
        assert_eq!(single.num_clusters(), 1);
        assert_eq!(single.cluster_range(0), 0..2);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        radix_cluster(&[1u64], &[1u32, 2], RadixClusterSpec::single_pass(1));
    }
}
