//! An explicit memory budget for the streaming projection pipeline.
//!
//! The paper's regime of interest is a *bounded cache*: Radix-Decluster's
//! whole design confines random access to a window `‖W‖ ≤ C`.  This module
//! lifts the same discipline one level up the hierarchy — from the cache to
//! RAM: a [`MemoryBudget`] caps the bytes a projection pipeline may hold
//! resident at once, and the pipeline (`rdx_exec::pipeline`) sizes its result
//! *chunks* so the per-chunk working set stays inside the cap, the way
//! run-time decomposition sizes data-parallel partitions to the cache
//! hierarchy.  A budget does for RAM what [`rdx_cache::CacheParams`] /
//! `per_core_share` do for the cache: it is a planning input, not an
//! enforcement mechanism — but the pipeline reports its actual peak working
//! set so tests can assert the bound held.

/// A cap on the bytes of *value data* a streaming operator may keep resident
/// at once.
///
/// The cap governs the per-chunk working set: staged clustered values,
/// chunk-local result positions, and the chunk's output columns.  Fixed
/// per-relation index structures (the join index, the clustered oid/position
/// arrays) are priced separately by the planner — they scale with `8 N` bytes
/// and are the streaming pipeline's irreducible floor, exactly like the
/// `CLUST_SMALLER`/`CLUST_RESULT` arrays of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Budget in bytes; `usize::MAX` encodes "unbounded".
    bytes: usize,
}

impl MemoryBudget {
    /// No cap: the pipeline runs as a single chunk (the materialising
    /// executors' behaviour).
    pub const fn unbounded() -> Self {
        MemoryBudget { bytes: usize::MAX }
    }

    /// A cap of `bytes` bytes.
    ///
    /// # Panics
    /// Panics if `bytes == 0`.
    pub fn bytes(bytes: usize) -> Self {
        assert!(bytes > 0, "a memory budget must allow at least one byte");
        MemoryBudget { bytes }
    }

    /// A cap of `1/denominator` of `data_bytes` (never below one byte) — the
    /// out-of-budget evaluation presets use denominators 4…64.
    ///
    /// # Panics
    /// Panics if `denominator == 0`.
    pub fn fraction_of(data_bytes: usize, denominator: usize) -> Self {
        assert!(denominator > 0, "denominator must be positive");
        Self::bytes((data_bytes / denominator).max(1))
    }

    /// `true` unless this is [`MemoryBudget::unbounded`].
    pub fn is_bounded(&self) -> bool {
        self.bytes != usize::MAX
    }

    /// The cap in bytes (`usize::MAX` when unbounded).
    pub fn limit_bytes(&self) -> usize {
        self.bytes
    }

    /// How many result rows fit one chunk when each resident row costs
    /// `bytes_per_row` bytes: at least 1 (progress must always be possible,
    /// like the one-cache-line floor of `per_core_share`), at most
    /// `total_rows`.
    pub fn chunk_rows(&self, total_rows: usize, bytes_per_row: usize) -> usize {
        if !self.is_bounded() {
            return total_rows.max(1);
        }
        (self.bytes / bytes_per_row.max(1)).clamp(1, total_rows.max(1))
    }

    /// Number of chunks a `total_rows`-row result splits into under this
    /// budget (1 for an unbounded budget, 1 for an empty result).
    pub fn num_chunks(&self, total_rows: usize, bytes_per_row: usize) -> usize {
        total_rows
            .div_ceil(self.chunk_rows(total_rows, bytes_per_row))
            .max(1)
    }
}

impl Default for MemoryBudget {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_is_one_chunk() {
        let b = MemoryBudget::unbounded();
        assert!(!b.is_bounded());
        assert_eq!(b.chunk_rows(1_000_000, 64), 1_000_000);
        assert_eq!(b.num_chunks(1_000_000, 64), 1);
    }

    #[test]
    fn bounded_budget_splits_rows() {
        let b = MemoryBudget::bytes(1024);
        assert_eq!(b.chunk_rows(10_000, 16), 64);
        assert_eq!(b.num_chunks(10_000, 16), 157);
    }

    #[test]
    fn budget_floor_is_one_row() {
        // Budgets below one row still make progress, one row at a time.
        let b = MemoryBudget::bytes(3);
        assert_eq!(b.chunk_rows(100, 16), 1);
        assert_eq!(b.num_chunks(100, 16), 100);
    }

    #[test]
    fn fraction_of_data_size() {
        let b = MemoryBudget::fraction_of(1 << 20, 16);
        assert_eq!(b.limit_bytes(), 1 << 16);
        assert!(b.is_bounded());
        // Tiny data never collapses to a zero budget.
        assert_eq!(MemoryBudget::fraction_of(3, 64).limit_bytes(), 1);
    }

    #[test]
    fn empty_result_is_one_empty_chunk() {
        let b = MemoryBudget::bytes(1024);
        assert_eq!(b.chunk_rows(0, 16), 1);
        assert_eq!(b.num_chunks(0, 16), 1);
    }

    #[test]
    #[should_panic]
    fn zero_budget_rejected() {
        MemoryBudget::bytes(0);
    }
}
