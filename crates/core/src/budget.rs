//! An explicit memory budget for the streaming projection pipeline.
//!
//! The paper's regime of interest is a *bounded cache*: Radix-Decluster's
//! whole design confines random access to a window `‖W‖ ≤ C`.  This module
//! lifts the same discipline one level up the hierarchy — from the cache to
//! RAM: a [`MemoryBudget`] caps the bytes a projection pipeline may hold
//! resident at once, and the pipeline (`rdx_exec::pipeline`) sizes its result
//! *chunks* so the per-chunk working set stays inside the cap, the way
//! run-time decomposition sizes data-parallel partitions to the cache
//! hierarchy.  A budget does for RAM what [`rdx_cache::CacheParams`] /
//! `per_core_share` do for the cache: it is a planning input, not an
//! enforcement mechanism — but the pipeline reports its actual peak working
//! set so tests can assert the bound held.

/// A degenerate budget request, reported instead of a deep panic so callers
/// (the serving layer's admission controller in particular) can queue or
/// reject the offending query with a diagnosis attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// A cap of zero bytes was requested; no operator can make progress.
    ZeroBytes,
    /// The cap cannot hold even one resident result row, so any plan derived
    /// from it would have to clamp (see [`MemoryBudget::chunk_rows`]) and
    /// exceed the stated limit on its very first chunk.
    BelowOneRow {
        /// The requested cap in bytes.
        budget_bytes: usize,
        /// Resident bytes one result row costs under the rejected plan.
        bytes_per_row: usize,
    },
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::ZeroBytes => write!(f, "memory budget of zero bytes"),
            BudgetError::BelowOneRow {
                budget_bytes,
                bytes_per_row,
            } => write!(
                f,
                "memory budget of {budget_bytes} B cannot hold one result row \
                 ({bytes_per_row} B resident per row)"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

/// A cap on the bytes of *value data* a streaming operator may keep resident
/// at once.
///
/// The cap governs the per-chunk working set: staged clustered values,
/// chunk-local result positions, and the chunk's output columns.  Fixed
/// per-relation index structures (the join index, the clustered oid/position
/// arrays) are priced separately by the planner — they scale with `8 N` bytes
/// and are the streaming pipeline's irreducible floor, exactly like the
/// `CLUST_SMALLER`/`CLUST_RESULT` arrays of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Budget in bytes; `usize::MAX` encodes "unbounded".
    bytes: usize,
}

impl MemoryBudget {
    /// No cap: the pipeline runs as a single chunk (the materialising
    /// executors' behaviour).
    pub const fn unbounded() -> Self {
        MemoryBudget { bytes: usize::MAX }
    }

    /// A cap of `bytes` bytes.
    ///
    /// # Panics
    /// Panics if `bytes == 0`.
    pub fn bytes(bytes: usize) -> Self {
        assert!(bytes > 0, "a memory budget must allow at least one byte");
        MemoryBudget { bytes }
    }

    /// The non-panicking form of [`MemoryBudget::bytes`]: a zero cap is
    /// reported as [`BudgetError::ZeroBytes`] instead of asserting, so
    /// untrusted budget requests (a serving layer's clients) surface a typed
    /// error rather than a panic.
    pub fn try_bytes(bytes: usize) -> Result<Self, BudgetError> {
        if bytes == 0 {
            Err(BudgetError::ZeroBytes)
        } else {
            Ok(MemoryBudget { bytes })
        }
    }

    /// A cap of `1/denominator` of `data_bytes` (never below one byte) — the
    /// out-of-budget evaluation presets use denominators 4…64.
    ///
    /// # Panics
    /// Panics if `denominator == 0`.
    pub fn fraction_of(data_bytes: usize, denominator: usize) -> Self {
        assert!(denominator > 0, "denominator must be positive");
        Self::bytes((data_bytes / denominator).max(1))
    }

    /// This budget as seen by one of `queries` concurrently admitted queries:
    /// the cap divides evenly, never below one byte, and an unbounded budget
    /// stays unbounded.  The RAM analogue of
    /// [`rdx_cache::CacheParams::per_core_share`] dividing the shared cache —
    /// the admission controller hands each admitted query this share so the
    /// sum of per-query working sets can never exceed the global cap.
    pub fn per_query_share(&self, queries: usize) -> MemoryBudget {
        if !self.is_bounded() {
            return *self;
        }
        MemoryBudget {
            bytes: (self.bytes / queries.max(1)).max(1),
        }
    }

    /// `true` unless this is [`MemoryBudget::unbounded`].
    pub fn is_bounded(&self) -> bool {
        self.bytes != usize::MAX
    }

    /// The cap in bytes (`usize::MAX` when unbounded).
    pub fn limit_bytes(&self) -> usize {
        self.bytes
    }

    /// Checks that at least one result row of `bytes_per_row` resident bytes
    /// fits under this cap — the plan-time guard behind
    /// `plan_streaming_checked`.  A bounded budget below the one-row floor
    /// yields [`BudgetError::BelowOneRow`]; the panicking/clamping paths
    /// ([`MemoryBudget::chunk_rows`]) stay available for callers that prefer
    /// the documented clamp.
    pub fn check_one_row(&self, bytes_per_row: usize) -> Result<(), BudgetError> {
        if self.is_bounded() && self.bytes < bytes_per_row {
            Err(BudgetError::BelowOneRow {
                budget_bytes: self.bytes,
                bytes_per_row,
            })
        } else {
            Ok(())
        }
    }

    /// How many result rows fit one chunk when each resident row costs
    /// `bytes_per_row` bytes: at least 1 (progress must always be possible,
    /// like the one-cache-line floor of `per_core_share`), at most
    /// `total_rows`.
    pub fn chunk_rows(&self, total_rows: usize, bytes_per_row: usize) -> usize {
        if !self.is_bounded() {
            return total_rows.max(1);
        }
        (self.bytes / bytes_per_row.max(1)).clamp(1, total_rows.max(1))
    }

    /// Number of chunks a `total_rows`-row result splits into under this
    /// budget (1 for an unbounded budget, 1 for an empty result).
    pub fn num_chunks(&self, total_rows: usize, bytes_per_row: usize) -> usize {
        total_rows
            .div_ceil(self.chunk_rows(total_rows, bytes_per_row))
            .max(1)
    }
}

impl Default for MemoryBudget {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_is_one_chunk() {
        let b = MemoryBudget::unbounded();
        assert!(!b.is_bounded());
        assert_eq!(b.chunk_rows(1_000_000, 64), 1_000_000);
        assert_eq!(b.num_chunks(1_000_000, 64), 1);
    }

    #[test]
    fn bounded_budget_splits_rows() {
        let b = MemoryBudget::bytes(1024);
        assert_eq!(b.chunk_rows(10_000, 16), 64);
        assert_eq!(b.num_chunks(10_000, 16), 157);
    }

    #[test]
    fn budget_floor_is_one_row() {
        // Budgets below one row still make progress, one row at a time.
        let b = MemoryBudget::bytes(3);
        assert_eq!(b.chunk_rows(100, 16), 1);
        assert_eq!(b.num_chunks(100, 16), 100);
    }

    #[test]
    fn fraction_of_data_size() {
        let b = MemoryBudget::fraction_of(1 << 20, 16);
        assert_eq!(b.limit_bytes(), 1 << 16);
        assert!(b.is_bounded());
        // Tiny data never collapses to a zero budget.
        assert_eq!(MemoryBudget::fraction_of(3, 64).limit_bytes(), 1);
    }

    #[test]
    fn empty_result_is_one_empty_chunk() {
        let b = MemoryBudget::bytes(1024);
        assert_eq!(b.chunk_rows(0, 16), 1);
        assert_eq!(b.num_chunks(0, 16), 1);
    }

    #[test]
    #[should_panic]
    fn zero_budget_rejected() {
        MemoryBudget::bytes(0);
    }

    #[test]
    fn try_bytes_reports_zero_as_typed_error() {
        assert_eq!(MemoryBudget::try_bytes(0), Err(BudgetError::ZeroBytes));
        assert_eq!(MemoryBudget::try_bytes(64), Ok(MemoryBudget::bytes(64)));
        assert!(!BudgetError::ZeroBytes.to_string().is_empty());
    }

    #[test]
    fn one_row_floor_check() {
        let b = MemoryBudget::bytes(15);
        assert_eq!(
            b.check_one_row(16),
            Err(BudgetError::BelowOneRow {
                budget_bytes: 15,
                bytes_per_row: 16
            })
        );
        assert_eq!(b.check_one_row(15), Ok(()));
        // Unbounded budgets always pass.
        assert_eq!(MemoryBudget::unbounded().check_one_row(usize::MAX), Ok(()));
        let msg = b.check_one_row(16).unwrap_err().to_string();
        assert!(msg.contains("15") && msg.contains("16"), "{msg}");
    }

    #[test]
    fn per_query_share_divides_evenly_with_floors() {
        let b = MemoryBudget::bytes(1024);
        assert_eq!(b.per_query_share(4).limit_bytes(), 256);
        assert_eq!(b.per_query_share(1), b);
        assert_eq!(b.per_query_share(0), b);
        // Floor of one byte at absurd query counts.
        assert_eq!(b.per_query_share(1_000_000).limit_bytes(), 1);
        // Unbounded budgets stay unbounded.
        assert!(!MemoryBudget::unbounded().per_query_share(8).is_bounded());
    }
}
