//! Jive-Join \[LR99\] — the NSM post-projection baseline of §4.2.
//!
//! Jive-Join assumes a join index sorted on the RowIds of the left (larger)
//! projection table.  The **Left** phase merges that index with the left table
//! sequentially, producing (a) the left half of the result in final order and
//! (b) a re-ordered join index partitioned so that each partition covers a
//! consecutive range of right-table RowIds.  The **Right** phase processes the
//! partitions one by one: sorts each, merges it with the right table, and
//! writes the fetched values back to their final result positions.
//!
//! The implementation is generic over *how* a projected value is fetched
//! (`fetch(oid, attr)`), so the same code serves the DSM columns and the NSM
//! records the strategy layer feeds it.

use crate::cluster::radix_sort_oids;
use crate::hash::significant_bits;
use rdx_dsm::{JoinIndex, Oid};

/// The projected result of a Jive-Join: `larger_columns[a][r]` /
/// `smaller_columns[b][r]` hold attribute `a`/`b` of result row `r`, where the
/// result order is the join index sorted by larger-oid (Jive-Join's natural
/// output order).
#[derive(Debug, Clone, PartialEq)]
pub struct JiveResult {
    /// Projected columns from the larger (left) relation.
    pub larger_columns: Vec<Vec<i32>>,
    /// Projected columns from the smaller (right) relation.
    pub smaller_columns: Vec<Vec<i32>>,
}

/// Runs a full Jive-Join projection.
///
/// * `join_index` — matching pairs in any order (it is sorted on the larger
///   oids first, since \[LR99\] assumes a pre-sorted join index);
/// * `n_larger_attrs` / `fetch_larger` — how many columns to project from the
///   larger relation and how to fetch one value;
/// * `n_smaller_attrs` / `fetch_smaller` — likewise for the smaller relation;
/// * `smaller_cardinality` — domain of the smaller oids (for range
///   partitioning);
/// * `bits` — number of right-phase partitions is `2^bits`.
pub fn jive_join_projection(
    join_index: &JoinIndex,
    n_larger_attrs: usize,
    fetch_larger: impl Fn(Oid, usize) -> i32,
    n_smaller_attrs: usize,
    fetch_smaller: impl Fn(Oid, usize) -> i32,
    smaller_cardinality: usize,
    bits: u32,
) -> JiveResult {
    let n = join_index.len();

    // [LR99] assumes the join index is sorted on the left RowIds; establish
    // that order (Radix-Sort on the dense larger-oid domain).
    let sorted = radix_sort_oids(join_index.larger(), join_index.smaller(), {
        join_index
            .larger()
            .iter()
            .map(|&o| o as usize + 1)
            .max()
            .unwrap_or(0)
    });
    let larger_in_order = sorted.keys();
    let smaller_in_order = sorted.payloads();

    // ---- Left Jive-Join ----------------------------------------------------
    // Sequential merge with the left table: emit the left half of the result
    // in final order, and scatter (smaller_oid, result_position) into range
    // partitions of the smaller oid domain.
    let mut larger_columns = vec![Vec::with_capacity(n); n_larger_attrs];
    let partitions = 1usize << bits;
    let shift = significant_bits(smaller_cardinality).saturating_sub(bits);
    let mut partitioned: Vec<Vec<(Oid, Oid)>> = vec![Vec::new(); partitions];

    for (r, (&l_oid, &s_oid)) in larger_in_order.iter().zip(smaller_in_order).enumerate() {
        for (a, col) in larger_columns.iter_mut().enumerate() {
            col.push(fetch_larger(l_oid, a));
        }
        let p = ((s_oid as usize) >> shift).min(partitions - 1);
        partitioned[p].push((s_oid, r as Oid));
    }

    // ---- Right Jive-Join ---------------------------------------------------
    // Per partition: sort on the smaller oid ("first sorted for better
    // access"), merge with the right table, write back in result order.
    let mut smaller_columns = vec![vec![0i32; n]; n_smaller_attrs];
    for cluster in &mut partitioned {
        cluster.sort_unstable_by_key(|&(s_oid, _)| s_oid);
        for &(s_oid, result_pos) in cluster.iter() {
            for (b, col) in smaller_columns.iter_mut().enumerate() {
                col[result_pos as usize] = fetch_smaller(s_oid, b);
            }
        }
    }

    JiveResult {
        larger_columns,
        smaller_columns,
    }
}

/// Chooses the right-phase partition count so that one partition's slice of
/// the smaller projection columns fits the cache — the same sizing rule as
/// partial clustering, and the trade-off Figs. 9e/9f explore.
pub fn jive_bits(smaller_cardinality: usize, projected_width: usize, cache_bytes: usize) -> u32 {
    let bytes = smaller_cardinality.saturating_mul(projected_width.max(4));
    let mut bits = 0u32;
    while (bytes >> bits) > cache_bytes && bits < 24 {
        bits += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_dsm::Column;

    fn columns(n: usize, mult: i32) -> Vec<Column<i32>> {
        (0..3)
            .map(|a| Column::from_vec((0..n).map(|i| mult * (i as i32) + a).collect()))
            .collect()
    }

    #[test]
    fn jive_matches_direct_projection() {
        let n_larger = 200;
        let n_smaller = 100;
        let larger_cols = columns(n_larger, 10);
        let smaller_cols = columns(n_smaller, 1000);
        // A join index with duplicates and arbitrary order.
        let ji = JoinIndex::from_pairs(
            (0..n_larger as Oid).map(|l| (l, (l * 13 + 5) % n_smaller as Oid)),
        );

        let out = jive_join_projection(
            &ji,
            2,
            |oid, a| larger_cols[a].value(oid as usize),
            2,
            |oid, b| smaller_cols[b].value(oid as usize),
            n_smaller,
            3,
        );

        // Expected: result ordered by larger oid.
        let mut pairs: Vec<(Oid, Oid)> = ji.iter().collect();
        pairs.sort_unstable();
        for (r, &(l, s)) in pairs.iter().enumerate() {
            for (col, vals) in larger_cols.iter().zip(&out.larger_columns) {
                assert_eq!(vals[r], col.value(l as usize));
            }
            for (col, vals) in smaller_cols.iter().zip(&out.smaller_columns) {
                assert_eq!(vals[r], col.value(s as usize));
            }
        }
    }

    #[test]
    fn works_with_zero_bits_single_partition() {
        let larger_cols = columns(50, 2);
        let smaller_cols = columns(50, 3);
        let ji = JoinIndex::from_pairs((0..50).map(|i| (i as Oid, i as Oid)));
        let out = jive_join_projection(
            &ji,
            1,
            |oid, a| larger_cols[a].value(oid as usize),
            1,
            |oid, b| smaller_cols[b].value(oid as usize),
            50,
            0,
        );
        assert_eq!(out.larger_columns[0].len(), 50);
        assert_eq!(out.smaller_columns[0][7], smaller_cols[0].value(7));
    }

    #[test]
    fn empty_join_index() {
        let out = jive_join_projection(&JoinIndex::new(), 1, |_, _| 0, 1, |_, _| 0, 10, 2);
        assert!(out.larger_columns[0].is_empty());
        assert!(out.smaller_columns[0].is_empty());
    }

    #[test]
    fn jive_bits_sizes_partitions_to_cache() {
        assert_eq!(jive_bits(1000, 4, 512 * 1024), 0);
        let bits = jive_bits(8_000_000, 16, 512 * 1024);
        assert!((8_000_000usize * 16) >> bits <= 512 * 1024);
    }
}
