//! # rdx-core — Cache-conscious Radix-Decluster projections
//!
//! The paper's algorithms, built on the `rdx-dsm` / `rdx-nsm` storage
//! substrates:
//!
//! * [`hash`] — the integer hash used to derive radix bits from join keys
//!   (oids are clustered without hashing, as the paper prescribes).
//! * [`cluster`] — **Radix-Cluster**: multi-pass partitioning on `B` radix
//!   bits with `P` passes, the *partial* variant that ignores the lowermost
//!   `I` bits (§3.1), Radix-Sort as the all-bits special case, and
//!   `radix_count` for recovering cluster boundaries.
//! * [`join`] — bucket-chained Hash-Join and the cache-conscious
//!   **Partitioned Hash-Join** (§2.1), producing a [`rdx_dsm::JoinIndex`].
//! * [`positional`] — the Positional-Join variants (unsorted / sorted /
//!   clustered / sparse) used by every post-projection strategy (§3).
//! * [`decluster`] — **Radix-Decluster** (§3.2, Fig. 5/6), the paper's main
//!   contribution, plus the §5 buffer-manager variant for variable-size
//!   values (Fig. 12) and a traced variant that replays its access pattern
//!   through the `rdx-cache` simulator (Fig. 7a).
//! * [`jive`] — the Jive-Join baseline \[LR99\] (§4.2).
//! * [`strategy`] — the end-to-end projected-join strategies compared in §4:
//!   DSM post-projection (u/s/c/d), DSM pre-projection, NSM pre-projection
//!   (naive and partitioned hash join), and NSM post-projection
//!   (Radix-Decluster and Jive-Join).
//! * [`error`] — the workspace-wide [`RdxError`] hierarchy: every fallible
//!   path (budget checks, catalog lookups, projection-spec validation, the
//!   ticket front, deadlines, cancellation, worker panics) reports this one
//!   type.
//! * [`fault`] — the deterministic fault-injection harness
//!   ([`FaultPlan`] / [`FaultInjector`]) and the drive-step-measured
//!   [`RetryPolicy`]: scripted panics, slowdowns, grant denials and cache
//!   evictions, so every degradation path is a pure function of a script.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cluster;
pub mod decluster;
pub mod error;
pub mod fault;
pub mod hash;
pub mod jive;
pub mod join;
pub mod positional;
pub mod strategy;
pub mod trace;

pub use budget::{BudgetError, MemoryBudget};
pub use cluster::{
    plan_cluster_passes, radix_cluster, radix_cluster_oids_with_scratch,
    radix_cluster_with_scratch, radix_count, radix_sort_oids, scatter_cursor_budget,
    ClusterScratch, Clustered, RadixClusterSpec, ScatterMode,
};
pub use decluster::chunks::{ChunkCursorState, ChunkCursors, ChunkRuns};
pub use decluster::{
    choose_window_bytes, radix_decluster, radix_decluster_into, radix_decluster_windows,
    radix_decluster_windows_with_scratch, window_elems, DeclusterScratch,
};
pub use error::{DeadlineError, RdxError, Side, TenantQuotaKind};
pub use fault::{FaultAction, FaultInjector, FaultPlan, RetryPolicy};
pub use join::{hash_join, partitioned_hash_join};
pub use strategy::{DsmPostProjection, ProjectionCode, QuerySpec};
