//! Vertically fragmented relations: a key column plus ω attribute columns.

use crate::{Column, Oid, VarColumn};

/// A DSM relation: one join-key column plus `ω` fixed-width attribute columns
/// (and optionally variable-size columns), all of the same cardinality and all
/// addressed by the same implicit oid sequence `0..N`.
///
/// This is what the paper's example query joins:
/// `SELECT larger.a1,…, smaller.b1,… FROM larger, smaller WHERE larger.key = smaller.key`.
/// Only the key column participates in the join phase; attribute columns are
/// touched exclusively by the projection phase ("the unused columns stay
/// untouched", §4.1).
#[derive(Debug, Clone, Default)]
pub struct DsmRelation {
    key: Column<u64>,
    attrs: Vec<Column<i32>>,
    var_attrs: Vec<VarColumn>,
}

impl DsmRelation {
    /// Creates a relation from its key column alone (ω = 0).
    pub fn from_key(key: Column<u64>) -> Self {
        DsmRelation {
            key,
            attrs: Vec::new(),
            var_attrs: Vec::new(),
        }
    }

    /// Creates a relation from a key column and attribute columns.
    ///
    /// # Panics
    /// Panics if any attribute column's length differs from the key column's.
    pub fn new(key: Column<u64>, attrs: Vec<Column<i32>>) -> Self {
        for (i, a) in attrs.iter().enumerate() {
            assert_eq!(
                a.len(),
                key.len(),
                "attribute column {i} has {} tuples, key column has {}",
                a.len(),
                key.len()
            );
        }
        DsmRelation {
            key,
            attrs,
            var_attrs: Vec::new(),
        }
    }

    /// Adds a fixed-width attribute column.
    ///
    /// # Panics
    /// Panics on cardinality mismatch.
    pub fn push_attr(&mut self, col: Column<i32>) {
        assert_eq!(col.len(), self.key.len(), "attribute cardinality mismatch");
        self.attrs.push(col);
    }

    /// Adds a variable-size attribute column.
    ///
    /// # Panics
    /// Panics on cardinality mismatch.
    pub fn push_var_attr(&mut self, col: VarColumn) {
        assert_eq!(col.len(), self.key.len(), "attribute cardinality mismatch");
        self.var_attrs.push(col);
    }

    /// Number of tuples `N`.
    pub fn cardinality(&self) -> usize {
        self.key.len()
    }

    /// Number of fixed-width attribute columns `ω` (excluding the key).
    pub fn width(&self) -> usize {
        self.attrs.len()
    }

    /// The join-key column.
    pub fn key(&self) -> &Column<u64> {
        &self.key
    }

    /// The fixed-width attribute columns.
    pub fn attrs(&self) -> &[Column<i32>] {
        &self.attrs
    }

    /// Attribute column `i`.
    pub fn attr(&self, i: usize) -> &Column<i32> {
        &self.attrs[i]
    }

    /// The variable-size attribute columns.
    pub fn var_attrs(&self) -> &[VarColumn] {
        &self.var_attrs
    }

    /// Key value of tuple `oid`.
    #[inline]
    pub fn key_at(&self, oid: Oid) -> u64 {
        self.key[oid as usize]
    }
}

/// The materialized result of a projected join: one column per projected
/// attribute, in query order (larger-side columns first, then smaller-side),
/// each of length `|join result|`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultRelation {
    columns: Vec<Column<i32>>,
    var_columns: Vec<VarColumn>,
}

impl ResultRelation {
    /// Creates an empty result.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a materialized fixed-width result column.
    pub fn push_column(&mut self, col: Column<i32>) {
        self.columns.push(col);
    }

    /// Appends a materialized variable-size result column.
    pub fn push_var_column(&mut self, col: VarColumn) {
        self.var_columns.push(col);
    }

    /// The fixed-width result columns.
    pub fn columns(&self) -> &[Column<i32>] {
        &self.columns
    }

    /// The variable-size result columns.
    pub fn var_columns(&self) -> &[VarColumn] {
        &self.var_columns
    }

    /// Number of result tuples (0 if no column has been produced yet).
    pub fn cardinality(&self) -> usize {
        self.columns
            .first()
            .map(|c| c.len())
            .or_else(|| self.var_columns.first().map(|c| c.len()))
            .unwrap_or(0)
    }

    /// Total number of result columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len() + self.var_columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> DsmRelation {
        DsmRelation::new(
            Column::from_vec(vec![10, 20, 30]),
            vec![
                Column::from_vec(vec![1, 2, 3]),
                Column::from_vec(vec![-1, -2, -3]),
            ],
        )
    }

    #[test]
    fn cardinality_and_width() {
        let r = rel();
        assert_eq!(r.cardinality(), 3);
        assert_eq!(r.width(), 2);
        assert_eq!(r.key_at(1), 20);
        assert_eq!(r.attr(1)[2], -3);
    }

    #[test]
    #[should_panic]
    fn mismatched_attribute_rejected() {
        DsmRelation::new(
            Column::from_vec(vec![1, 2]),
            vec![Column::from_vec(vec![1])],
        );
    }

    #[test]
    fn push_attr_extends_width() {
        let mut r = DsmRelation::from_key(Column::from_vec(vec![5, 6]));
        assert_eq!(r.width(), 0);
        r.push_attr(Column::from_vec(vec![7, 8]));
        assert_eq!(r.width(), 1);
    }

    #[test]
    fn var_attr_roundtrip() {
        let mut r = DsmRelation::from_key(Column::from_vec(vec![5, 6]));
        r.push_var_attr(VarColumn::from_strs(["x", "yz"]));
        assert_eq!(r.var_attrs().len(), 1);
        assert_eq!(r.var_attrs()[0].get_str(1), "yz");
    }

    #[test]
    fn result_relation_cardinality() {
        let mut res = ResultRelation::new();
        assert_eq!(res.cardinality(), 0);
        res.push_column(Column::from_vec(vec![1, 2, 3, 4]));
        res.push_column(Column::from_vec(vec![5, 6, 7, 8]));
        assert_eq!(res.cardinality(), 4);
        assert_eq!(res.num_columns(), 2);
    }
}
