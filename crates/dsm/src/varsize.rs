//! Variable-size (string) columns.
//!
//! "Columns of variable-sized types like string use an extra — separate —
//! memory buffer, where the array simply contains integer offsets into"
//! (paper §3, footnote 3).  The §5 buffer-manager variant of Radix-Decluster
//! (Fig. 12) needs exactly this: values whose byte length varies per tuple.

use crate::Oid;

/// A variable-size column: per-tuple byte strings stored in one contiguous
/// heap, addressed through an offsets array (`offsets.len() == len + 1`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarColumn {
    offsets: Vec<u32>,
    heap: Vec<u8>,
}

impl VarColumn {
    /// Creates an empty variable-size column.
    pub fn new() -> Self {
        VarColumn {
            offsets: vec![0],
            heap: Vec::new(),
        }
    }

    /// Creates an empty column sized for `tuples` values of ≈`avg_len` bytes.
    pub fn with_capacity(tuples: usize, avg_len: usize) -> Self {
        let mut offsets = Vec::with_capacity(tuples + 1);
        offsets.push(0);
        VarColumn {
            offsets,
            heap: Vec::with_capacity(tuples * avg_len),
        }
    }

    /// Builds a column from string slices.
    pub fn from_strs<'a>(values: impl IntoIterator<Item = &'a str>) -> Self {
        let mut col = VarColumn::new();
        for v in values {
            col.push_str(v);
        }
        col
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total heap size in bytes.
    pub fn heap_size(&self) -> usize {
        self.heap.len()
    }

    /// Appends a byte-string value, returning its oid.
    pub fn push_bytes(&mut self, value: &[u8]) -> Oid {
        let oid = self.len() as Oid;
        self.heap.extend_from_slice(value);
        self.offsets.push(self.heap.len() as u32);
        oid
    }

    /// Appends a UTF-8 string value, returning its oid.
    pub fn push_str(&mut self, value: &str) -> Oid {
        self.push_bytes(value.as_bytes())
    }

    /// The raw bytes of value `pos`.
    pub fn get_bytes(&self, pos: usize) -> &[u8] {
        let start = self.offsets[pos] as usize;
        let end = self.offsets[pos + 1] as usize;
        &self.heap[start..end]
    }

    /// The value at `pos` as UTF-8 (panics if it is not valid UTF-8).
    pub fn get_str(&self, pos: usize) -> &str {
        std::str::from_utf8(self.get_bytes(pos)).expect("VarColumn value is not valid UTF-8")
    }

    /// Byte length of value `pos`.
    ///
    /// Phase 1 of the Fig. 12 buffer-manager decluster records exactly these
    /// lengths ("records the lengths of the variable-size values in an extra
    /// integer array").  The paper stores `strlen + 1`; we store the exact
    /// byte length and let the page layer add any terminator it wants.
    pub fn value_len(&self, pos: usize) -> usize {
        (self.offsets[pos + 1] - self.offsets[pos]) as usize
    }

    /// Iterate over the values as byte slices.
    pub fn iter_bytes(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |i| self.get_bytes(i))
    }

    /// Positional gather: collects `self[oids[i]]` into a new column.
    pub fn gather(&self, oids: &[Oid]) -> VarColumn {
        let total: usize = oids.iter().map(|&o| self.value_len(o as usize)).sum();
        let mut out = VarColumn::with_capacity(oids.len(), total / oids.len().max(1));
        for &oid in oids {
            out.push_bytes(self.get_bytes(oid as usize));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut col = VarColumn::new();
        assert_eq!(col.push_str("fast"), 0);
        assert_eq!(col.push_str("hashing"), 1);
        assert_eq!(col.push_str(""), 2);
        assert_eq!(col.len(), 3);
        assert_eq!(col.get_str(0), "fast");
        assert_eq!(col.get_str(1), "hashing");
        assert_eq!(col.get_str(2), "");
    }

    #[test]
    fn value_len_matches_byte_length() {
        let col = VarColumn::from_strs(["efficient", "great", "fast", "hashing", "effective"]);
        assert_eq!(col.value_len(0), 9);
        assert_eq!(col.value_len(2), 4);
        assert_eq!(col.heap_size(), 9 + 5 + 4 + 7 + 9);
    }

    #[test]
    fn gather_preserves_values() {
        let col = VarColumn::from_strs(["a", "bb", "ccc", "dddd"]);
        let out = col.gather(&[3, 1, 1, 0]);
        assert_eq!(out.len(), 4);
        assert_eq!(out.get_str(0), "dddd");
        assert_eq!(out.get_str(1), "bb");
        assert_eq!(out.get_str(2), "bb");
        assert_eq!(out.get_str(3), "a");
    }

    #[test]
    fn iter_bytes_yields_all_values() {
        let col = VarColumn::from_strs(["xy", "z"]);
        let vals: Vec<&[u8]> = col.iter_bytes().collect();
        assert_eq!(vals, vec![b"xy".as_slice(), b"z".as_slice()]);
    }

    #[test]
    fn empty_column() {
        let col = VarColumn::new();
        assert!(col.is_empty());
        assert_eq!(col.heap_size(), 0);
    }
}
