//! # rdx-dsm — Decomposition Storage Model substrate
//!
//! The paper's experimentation platform, MonetDB, stores every relational
//! column as a separate `[void, value]` table: the head is a *void* column — a
//! densely ascending object-id (oid) sequence `0, 1, 2, …` that takes no
//! physical storage — and the tail is a plain array of values.  This crate
//! reproduces that storage substrate:
//!
//! * [`Oid`] — object identifiers from a dense domain `[0, N)`.
//! * [`Column`] — a `[void, value]` table, i.e. a dense array indexed by oid.
//! * [`VarColumn`] — a variable-size (string) column: an offset array into a
//!   shared byte heap, mirroring MonetDB's string heaps (paper §3, footnote 3).
//! * [`JoinIndex`] — the `[oid, oid]` result of a key join (Valduriez-style
//!   join index), the input of every post-projection strategy.
//! * [`mark`] — MonetDB's `mark()` operator: attach a fresh densely ascending
//!   void head to a column (paper §3.1 / §3.2, used to create the
//!   `JOIN_LARGER`, `JOIN_SMALLER`, `CLUST_RESULT`, `CLUST_SMALLER` views).
//! * [`DsmRelation`] — a bundle of equally long columns (one key column plus
//!   ω attribute columns), the unit the workload generator produces.
//! * [`Selection`] — an oid list into a base table, used for the sparse
//!   projection experiments (paper §4.1, Fig. 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod join_index;
pub mod relation;
pub mod selection;
pub mod varsize;

pub use column::{mark, Column};
pub use join_index::JoinIndex;
pub use relation::{DsmRelation, ResultRelation};
pub use selection::Selection;
pub use varsize::VarColumn;

/// An object identifier: a position in a dense domain `[0, N)`.
///
/// In MonetDB oids are "virtual": a void column stores only its seqbase.  We
/// use `u32` (the paper's relations top out at 16M tuples; `u32` keeps the
/// join index at 8 bytes per pair, matching the paper's 4-byte oid width used
/// throughout the cost models).
pub type Oid = u32;

/// Width, in bytes, of an [`Oid`] — the `R̄` of the cost models for oid columns.
pub const OID_BYTES: usize = std::mem::size_of::<Oid>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_is_four_bytes() {
        // The Appendix-A cost models and the radix-bit formulas in §3.1 assume
        // 4-byte oids; widening Oid silently would skew every B/I computation.
        assert_eq!(OID_BYTES, 4);
    }
}
