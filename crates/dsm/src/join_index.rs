//! Join indices: `[oid, oid]` tables produced by the join phase.

use crate::Oid;

/// A join index \[Val87\]: the list of matching `(larger_oid, smaller_oid)`
/// pairs produced by joining the key columns of two relations.
///
/// All post-projection strategies of the paper start from this structure
/// ("1. Make a join-index … 2. Do column projections", §3).  The two sides are
/// stored as separate dense arrays rather than an array of pairs so that the
/// clustering operators can treat either side as a plain oid column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinIndex {
    larger: Vec<Oid>,
    smaller: Vec<Oid>,
}

impl JoinIndex {
    /// Creates an empty join index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty join index with room for `capacity` pairs.
    pub fn with_capacity(capacity: usize) -> Self {
        JoinIndex {
            larger: Vec::with_capacity(capacity),
            smaller: Vec::with_capacity(capacity),
        }
    }

    /// Builds a join index from parallel oid vectors.
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn from_columns(larger: Vec<Oid>, smaller: Vec<Oid>) -> Self {
        assert_eq!(
            larger.len(),
            smaller.len(),
            "join index sides must have equal length"
        );
        JoinIndex { larger, smaller }
    }

    /// Builds a join index from `(larger, smaller)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Oid, Oid)>) -> Self {
        let mut ji = JoinIndex::new();
        for (l, s) in pairs {
            ji.push(l, s);
        }
        ji
    }

    /// Appends one matching pair.
    #[inline]
    pub fn push(&mut self, larger_oid: Oid, smaller_oid: Oid) {
        self.larger.push(larger_oid);
        self.smaller.push(smaller_oid);
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.larger.len()
    }

    /// `true` if the join produced no matches.
    pub fn is_empty(&self) -> bool {
        self.larger.is_empty()
    }

    /// The oids pointing into the *larger* relation.
    pub fn larger(&self) -> &[Oid] {
        &self.larger
    }

    /// The oids pointing into the *smaller* relation.
    pub fn smaller(&self) -> &[Oid] {
        &self.smaller
    }

    /// Consumes the index, returning `(larger, smaller)` oid vectors.
    pub fn into_columns(self) -> (Vec<Oid>, Vec<Oid>) {
        (self.larger, self.smaller)
    }

    /// Iterate over `(larger_oid, smaller_oid)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Oid)> + '_ {
        self.larger
            .iter()
            .copied()
            .zip(self.smaller.iter().copied())
    }

    /// Checks that every oid lies inside its relation's domain.
    ///
    /// Used by tests and by the strategy planner as a debug assertion; a join
    /// index violating this would make every positional join read garbage.
    pub fn is_valid_for(&self, larger_card: usize, smaller_card: usize) -> bool {
        self.larger.iter().all(|&o| (o as usize) < larger_card)
            && self.smaller.iter().all(|&o| (o as usize) < smaller_card)
    }

    /// Reorders the pairs so that the *larger* oids are ascending.
    ///
    /// This is the "(standard) improvement" of §3.1 in its full-sort form; the
    /// cache-conscious replacement is `rdx-core::cluster::partial` (Radix-Sort
    /// stopping early).  Kept here as the reference implementation the
    /// property tests compare against.
    pub fn sort_by_larger(&mut self) {
        let mut perm: Vec<usize> = (0..self.len()).collect();
        perm.sort_by_key(|&i| (self.larger[i], self.smaller[i]));
        self.apply_permutation(&perm);
    }

    /// Reorders the pairs so that the *smaller* oids are ascending.
    pub fn sort_by_smaller(&mut self) {
        let mut perm: Vec<usize> = (0..self.len()).collect();
        perm.sort_by_key(|&i| (self.smaller[i], self.larger[i]));
        self.apply_permutation(&perm);
    }

    fn apply_permutation(&mut self, perm: &[usize]) {
        let larger = perm.iter().map(|&i| self.larger[i]).collect();
        let smaller = perm.iter().map(|&i| self.smaller[i]).collect();
        self.larger = larger;
        self.smaller = smaller;
    }

    /// Returns the multiset of pairs in a canonical (sorted) order, for
    /// order-insensitive equality in tests.
    pub fn canonical_pairs(&self) -> Vec<(Oid, Oid)> {
        let mut pairs: Vec<_> = self.iter().collect();
        pairs.sort_unstable();
        pairs
    }
}

impl FromIterator<(Oid, Oid)> for JoinIndex {
    fn from_iter<I: IntoIterator<Item = (Oid, Oid)>>(iter: I) -> Self {
        JoinIndex::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JoinIndex {
        JoinIndex::from_pairs([(5, 1), (2, 0), (5, 3), (0, 2)])
    }

    #[test]
    fn push_and_len() {
        let mut ji = JoinIndex::new();
        assert!(ji.is_empty());
        ji.push(3, 7);
        ji.push(1, 2);
        assert_eq!(ji.len(), 2);
        assert_eq!(ji.larger(), &[3, 1]);
        assert_eq!(ji.smaller(), &[7, 2]);
    }

    #[test]
    #[should_panic]
    fn from_columns_rejects_length_mismatch() {
        let _ = JoinIndex::from_columns(vec![1, 2], vec![3]);
    }

    #[test]
    fn sort_by_larger_orders_left_side() {
        let mut ji = sample();
        ji.sort_by_larger();
        assert_eq!(ji.larger(), &[0, 2, 5, 5]);
        // pairs stay intact
        assert_eq!(ji.canonical_pairs(), sample().canonical_pairs());
    }

    #[test]
    fn sort_by_smaller_orders_right_side() {
        let mut ji = sample();
        ji.sort_by_smaller();
        assert_eq!(ji.smaller(), &[0, 1, 2, 3]);
        assert_eq!(ji.canonical_pairs(), sample().canonical_pairs());
    }

    #[test]
    fn validity_check() {
        let ji = sample();
        assert!(ji.is_valid_for(6, 4));
        assert!(!ji.is_valid_for(5, 4)); // larger oid 5 out of range
        assert!(!ji.is_valid_for(6, 3)); // smaller oid 3 out of range
    }

    #[test]
    fn iter_and_collect_roundtrip() {
        let ji = sample();
        let rebuilt: JoinIndex = ji.iter().collect();
        assert_eq!(rebuilt, ji);
    }

    #[test]
    fn into_columns_returns_both_sides() {
        let (l, s) = sample().into_columns();
        assert_eq!(l, vec![5, 2, 5, 0]);
        assert_eq!(s, vec![1, 0, 3, 2]);
    }
}
