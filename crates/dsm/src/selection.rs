//! Selections over base tables, for the sparse-projection experiments.

use crate::{Column, Oid};

/// The result of a selection on a base table: the list of qualifying oids, in
/// ascending order, pointing into a base table of `base_cardinality` tuples.
///
/// When one join input is such a selection, the projection columns live in the
/// (larger) base table and the positional joins become *sparse*: only a
/// fraction `selectivity()` of each cache line holding base-table values is
/// actually used (paper §4.1 "Sparse Projections", Fig. 11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    oids: Vec<Oid>,
    base_cardinality: usize,
}

impl Selection {
    /// Creates a selection from qualifying oids (must be ascending and within
    /// `[0, base_cardinality)`).
    ///
    /// # Panics
    /// Panics if the oids are not strictly ascending or out of range.
    pub fn new(oids: Vec<Oid>, base_cardinality: usize) -> Self {
        for w in oids.windows(2) {
            assert!(w[0] < w[1], "selection oids must be strictly ascending");
        }
        if let Some(&last) = oids.last() {
            assert!(
                (last as usize) < base_cardinality,
                "selection oid {last} outside base table of {base_cardinality} tuples"
            );
        }
        Selection {
            oids,
            base_cardinality,
        }
    }

    /// A selection that keeps every tuple of the base table (selectivity 1).
    pub fn all(base_cardinality: usize) -> Self {
        Selection {
            oids: (0..base_cardinality as Oid).collect(),
            base_cardinality,
        }
    }

    /// Number of selected tuples.
    pub fn len(&self) -> usize {
        self.oids.len()
    }

    /// `true` if nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }

    /// Cardinality of the underlying base table.
    pub fn base_cardinality(&self) -> usize {
        self.base_cardinality
    }

    /// Fraction of the base table that qualified, `|selection| / |base|`.
    pub fn selectivity(&self) -> f64 {
        if self.base_cardinality == 0 {
            0.0
        } else {
            self.len() as f64 / self.base_cardinality as f64
        }
    }

    /// The qualifying oids (ascending).
    pub fn oids(&self) -> &[Oid] {
        &self.oids
    }

    /// Translates *positions within the selection* to *base-table oids*.
    ///
    /// A join computed against the selection produces oids in `[0, len())`;
    /// before projecting from the base table those must be mapped back to base
    /// oids, which is what makes the subsequent positional join sparse.
    pub fn rebase(&self, selection_oids: &[Oid]) -> Vec<Oid> {
        selection_oids
            .iter()
            .map(|&o| self.oids[o as usize])
            .collect()
    }

    /// Materializes the selected key values from a base-table key column.
    pub fn project_key(&self, base_key: &Column<u64>) -> Column<u64> {
        base_key.gather(&self.oids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_everything() {
        let s = Selection::all(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.selectivity(), 1.0);
        assert_eq!(s.oids(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn selectivity_fraction() {
        let s = Selection::new(vec![3, 17, 42], 100);
        assert_eq!(s.len(), 3);
        assert!((s.selectivity() - 0.03).abs() < 1e-12);
        assert_eq!(s.base_cardinality(), 100);
    }

    #[test]
    #[should_panic]
    fn rejects_non_ascending() {
        Selection::new(vec![5, 5], 10);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        Selection::new(vec![5, 12], 10);
    }

    #[test]
    fn rebase_maps_to_base_oids() {
        let s = Selection::new(vec![10, 20, 30, 40], 50);
        assert_eq!(s.rebase(&[0, 3, 1]), vec![10, 40, 20]);
    }

    #[test]
    fn project_key_gathers_selected_values() {
        let base = Column::from_vec((0..10u64).map(|i| i * 100).collect());
        let s = Selection::new(vec![1, 4, 9], 10);
        assert_eq!(s.project_key(&base).as_slice(), &[100, 400, 900]);
    }

    #[test]
    fn empty_selection() {
        let s = Selection::new(vec![], 10);
        assert!(s.is_empty());
        assert_eq!(s.selectivity(), 0.0);
    }
}
