//! Fixed-width DSM columns (`[void, value]` tables).

use crate::Oid;

/// A `[void, value]` table: a dense array of fixed-width values whose head is
/// an implicit, densely ascending oid sequence starting at [`Column::seqbase`].
///
/// This is the MonetDB BAT with a void head.  All positional operators in
/// `rdx-core` (positional join, Radix-Decluster) address a `Column` purely by
/// position, which is what makes them "pointer-based joins … with negligible
/// CPU cost" (paper §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column<T> {
    seqbase: Oid,
    data: Vec<T>,
}

impl<T> Default for Column<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Column<T> {
    /// Creates an empty column with seqbase 0.
    pub fn new() -> Self {
        Column {
            seqbase: 0,
            data: Vec::new(),
        }
    }

    /// Creates an empty column with room for `capacity` values.
    pub fn with_capacity(capacity: usize) -> Self {
        Column {
            seqbase: 0,
            data: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing vector of values (seqbase 0).
    pub fn from_vec(data: Vec<T>) -> Self {
        Column { seqbase: 0, data }
    }

    /// Wraps an existing vector with an explicit void seqbase.
    pub fn with_seqbase(seqbase: Oid, data: Vec<T>) -> Self {
        Column { seqbase, data }
    }

    /// First oid of the void head.
    pub fn seqbase(&self) -> Oid {
        self.seqbase
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the value payload in bytes (`‖R‖` in the cost models).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Width of a single value in bytes (`R̄` in the cost models).
    pub fn value_width(&self) -> usize {
        std::mem::size_of::<T>()
    }

    /// Value stored at *position* `pos` (not oid-adjusted).
    pub fn get(&self, pos: usize) -> Option<&T> {
        self.data.get(pos)
    }

    /// Value addressed by oid, honouring the void seqbase.
    ///
    /// Returns `None` if the oid lies outside `[seqbase, seqbase + len)`.
    pub fn lookup(&self, oid: Oid) -> Option<&T> {
        let pos = oid.checked_sub(self.seqbase)? as usize;
        self.data.get(pos)
    }

    /// Borrow the values as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Borrow the values as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Appends a value, returning the oid it received.
    pub fn push(&mut self, value: T) -> Oid {
        let oid = self.seqbase + self.data.len() as Oid;
        self.data.push(value);
        oid
    }

    /// Iterate over `(oid, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (self.seqbase + i as Oid, v))
    }

    /// Consumes the column, returning the raw value vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Copy> Column<T> {
    /// Positional gather: `out[i] = self[oids[i]]` for every oid in `oids`.
    ///
    /// This is the DSM *Positional-Join* of paper §3 in its simplest (unsorted)
    /// form; the cache-conscious variants in `rdx-core::positional` produce the
    /// same values but with different access patterns.
    ///
    /// # Panics
    /// Panics if any oid is out of range — a join index referring to oids that
    /// do not exist in the projection column is a logic error, never data.
    pub fn gather(&self, oids: &[Oid]) -> Column<T> {
        let mut out = Vec::with_capacity(oids.len());
        for &oid in oids {
            out.push(self.data[(oid - self.seqbase) as usize]);
        }
        Column::from_vec(out)
    }

    /// Copies `self[pos]`, panicking on out-of-range positions.
    #[inline]
    pub fn value(&self, pos: usize) -> T {
        self.data[pos]
    }
}

impl<T> std::ops::Index<usize> for Column<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        &self.data[index]
    }
}

impl<T> FromIterator<T> for Column<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Column::from_vec(iter.into_iter().collect())
    }
}

/// MonetDB's `mark()` operator: attach a fresh densely ascending void head
/// (starting at `seqbase`) to a tail of values.
///
/// In the paper this is how the `JOIN_LARGER` / `JOIN_SMALLER` /
/// `CLUST_RESULT` / `CLUST_SMALLER` views are created from the (partially
/// clustered) join index (§3.1, §3.2, Figs. 3–4): the clustered oid column
/// becomes the tail, and the new void head numbers the join-result tuples.
pub fn mark<T>(tail: Vec<T>, seqbase: Oid) -> Column<T> {
    Column::with_seqbase(seqbase, tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_dense_oids() {
        let mut col = Column::new();
        assert_eq!(col.push(10), 0);
        assert_eq!(col.push(20), 1);
        assert_eq!(col.push(30), 2);
        assert_eq!(col.len(), 3);
        assert_eq!(col.as_slice(), &[10, 20, 30]);
    }

    #[test]
    fn lookup_respects_seqbase() {
        let col = Column::with_seqbase(100, vec![7_i32, 8, 9]);
        assert_eq!(col.lookup(100), Some(&7));
        assert_eq!(col.lookup(102), Some(&9));
        assert_eq!(col.lookup(99), None);
        assert_eq!(col.lookup(103), None);
    }

    #[test]
    fn gather_fetches_by_oid() {
        let col = Column::from_vec(vec![0_i32, 10, 20, 30, 40]);
        let out = col.gather(&[4, 0, 2, 2]);
        assert_eq!(out.as_slice(), &[40, 0, 20, 20]);
    }

    #[test]
    fn gather_respects_seqbase() {
        let col = Column::with_seqbase(10, vec![5_i32, 6, 7]);
        let out = col.gather(&[12, 10]);
        assert_eq!(out.as_slice(), &[7, 5]);
    }

    #[test]
    #[should_panic]
    fn gather_panics_on_out_of_range_oid() {
        let col = Column::from_vec(vec![1_i32, 2]);
        let _ = col.gather(&[5]);
    }

    #[test]
    fn mark_attaches_fresh_void_head() {
        let view = mark(vec![3_u32, 1, 2], 0);
        assert_eq!(view.seqbase(), 0);
        assert_eq!(
            view.iter().collect::<Vec<_>>(),
            vec![(0, &3), (1, &1), (2, &2)]
        );
    }

    #[test]
    fn byte_size_and_width() {
        let col = Column::from_vec(vec![1_i32; 100]);
        assert_eq!(col.value_width(), 4);
        assert_eq!(col.byte_size(), 400);
    }

    #[test]
    fn iter_yields_oid_value_pairs() {
        let col = Column::with_seqbase(5, vec!['a', 'b']);
        let pairs: Vec<_> = col.iter().collect();
        assert_eq!(pairs, vec![(5, &'a'), (6, &'b')]);
    }

    #[test]
    fn from_iterator_collects() {
        let col: Column<u64> = (0..4).collect();
        assert_eq!(col.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn index_operator_addresses_by_position() {
        let col = Column::with_seqbase(50, vec![9_i32, 8]);
        assert_eq!(col[0], 9);
        assert_eq!(col[1], 8);
    }
}
