//! Measurement routines shared by the `figures` binary and the Criterion
//! benches: one function per experiment family, each returning plain numbers
//! so callers can print, plot or assert on them.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rdx_cache::{CacheParams, MemorySystem};
use rdx_core::cluster::{radix_cluster_oids, RadixClusterSpec};
use rdx_core::decluster::traced::radix_decluster_traced;
use rdx_core::decluster::{choose_window_bytes, radix_decluster};
use rdx_core::jive::{jive_bits, jive_join_projection};
use rdx_core::join::{hash_join, join_cluster_spec, partitioned_hash_join};
use rdx_core::positional::{clustered_positional_join, positional_join, sparse_positional_join};
use rdx_core::strategy::{
    dsm_pre_projection, nsm_post_projection_decluster, nsm_post_projection_jive,
    nsm_pre_projection_hash, nsm_pre_projection_phash, DsmPostProjection, ProjectionCode,
    QuerySpec, SecondSideCode,
};
use rdx_dsm::{Column, JoinIndex, Oid};
use rdx_workload::{HitRate, JoinWorkload, JoinWorkloadBuilder, SparseWorkload};
use std::time::Instant;

/// Times a closure, returning `(result, milliseconds)`.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

/// The CLUST_VALUES / CLUST_RESULT / CLUST_BORDERS triple that feeds
/// Radix-Decluster, generated the way the Fig. 4 pipeline would produce it.
#[derive(Debug, Clone)]
pub struct DeclusterInput {
    /// Projected values in clustered order.
    pub values: Vec<i32>,
    /// Final result position of each clustered tuple.
    pub positions: Vec<Oid>,
    /// Cluster borders.
    pub bounds: Vec<usize>,
}

/// Builds a decluster input of `n` tuples clustered on `bits` radix bits.
///
/// The clustering uses the *uppermost* significant bits (ignoring the rest),
/// as the §3.1 partial Radix-Cluster does, so each cluster's oids cover a
/// contiguous range of the source column.
pub fn make_decluster_input(n: usize, bits: u32, seed: u64) -> DeclusterInput {
    let mut smaller: Vec<Oid> = (0..n as Oid).collect();
    smaller.shuffle(&mut StdRng::seed_from_u64(seed));
    let result_positions: Vec<Oid> = (0..n as Oid).collect();
    let significant = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(bits);
    let clustered = radix_cluster_oids(
        &smaller,
        &result_positions,
        RadixClusterSpec::partial(bits, if bits > 11 { 2 } else { 1 }, significant - bits),
    );
    DeclusterInput {
        values: clustered.keys().iter().map(|&o| o as i32).collect(),
        positions: clustered.payloads().to_vec(),
        bounds: clustered.bounds().to_vec(),
    }
}

/// One point of the Fig. 7a insertion-window sweep.
#[derive(Debug, Clone, Copy)]
pub struct WindowPoint {
    /// Insertion-window size in bytes.
    pub window_bytes: usize,
    /// Simulated L1 / L2 / TLB misses (None when simulation was skipped).
    pub l1_misses: Option<u64>,
    /// Simulated L2 misses.
    pub l2_misses: Option<u64>,
    /// Simulated TLB misses.
    pub tlb_misses: Option<u64>,
    /// Measured wall-clock milliseconds of the untraced algorithm.
    pub millis: f64,
    /// The Appendix-A cost-model prediction in milliseconds (paper platform).
    pub model_millis: f64,
}

/// Fig. 7a: Radix-Decluster in isolation over a range of window sizes.
///
/// `simulate` additionally replays the access pattern through the cache
/// simulator to obtain miss counts (slower; the figure harness enables it,
/// the Criterion bench does not).
pub fn decluster_window_sweep(
    input: &DeclusterInput,
    bits: u32,
    windows: &[usize],
    params: &CacheParams,
    simulate: bool,
) -> Vec<WindowPoint> {
    windows
        .iter()
        .map(|&window_bytes| {
            let (_, millis) = time_ms(|| {
                radix_decluster(&input.values, &input.positions, &input.bounds, window_bytes)
            });
            let (l1, l2, tlb) = if simulate {
                let mut mem = MemorySystem::new(params);
                let (_, counts) = radix_decluster_traced(
                    &input.values,
                    &input.positions,
                    &input.bounds,
                    window_bytes,
                    &mut mem,
                );
                (
                    Some(counts.l1_misses),
                    Some(counts.l2_misses),
                    Some(counts.tlb_misses),
                )
            } else {
                (None, None, None)
            };
            let model_millis = rdx_cost::algorithms::radix_decluster(
                input.values.len(),
                4,
                bits,
                window_bytes,
                params,
            )
            .millis(params);
            WindowPoint {
                window_bytes,
                l1_misses: l1,
                l2_misses: l2,
                tlb_misses: tlb,
                millis,
                model_millis,
            }
        })
        .collect()
}

/// One point of the Fig. 7b component sweep.
#[derive(Debug, Clone, Copy)]
pub struct ComponentPoint {
    /// Radix bits used for the smaller-side clustering.
    pub bits: u32,
    /// Partial Radix-Cluster of the join index, ms.
    pub cluster_ms: f64,
    /// Clustered Positional-Join producing CLUST_VALUES, ms.
    pub positional_ms: f64,
    /// Radix-Decluster into final order, ms.
    pub decluster_ms: f64,
    /// Sum of the three phases, ms.
    pub total_ms: f64,
    /// Cost-model total for the same configuration (paper platform), ms.
    pub model_total_ms: f64,
}

/// Fig. 7b: the interplay of Radix-Cluster, Positional-Join and
/// Radix-Decluster as a function of the number of radix bits.
pub fn decluster_components_sweep(
    n: usize,
    bits_list: &[u32],
    params: &CacheParams,
) -> Vec<ComponentPoint> {
    // The smaller-side oids in final result order, plus the projection column.
    let mut smaller: Vec<Oid> = (0..n as Oid).collect();
    smaller.shuffle(&mut StdRng::seed_from_u64(42));
    let column: Column<i32> = (0..n).map(|i| i as i32).collect();
    let result_positions: Vec<Oid> = (0..n as Oid).collect();

    bits_list
        .iter()
        .map(|&bits| {
            let passes = if bits > 11 { 2 } else { 1 };
            let (clustered, cluster_ms) = time_ms(|| {
                radix_cluster_oids(
                    &smaller,
                    &result_positions,
                    RadixClusterSpec::new(bits, passes),
                )
            });
            let (clust_values, positional_ms) = time_ms(|| {
                clustered_positional_join(clustered.keys(), clustered.bounds(), &column)
            });
            let window = choose_window_bytes(4, clustered.num_clusters(), params);
            let (_, decluster_ms) = time_ms(|| {
                radix_decluster(
                    clust_values.as_slice(),
                    clustered.payloads(),
                    clustered.bounds(),
                    window,
                )
            });
            let model_total_ms = rdx_cost::algorithms::radix_cluster(
                rdx_cost::DataRegion::new(n, 8),
                bits,
                passes,
                params,
            )
            .millis(params)
                + rdx_cost::algorithms::positional_join_clustered(
                    n,
                    rdx_cost::DataRegion::new(n, 4),
                    4,
                    bits,
                    params,
                )
                .millis(params)
                + rdx_cost::algorithms::radix_decluster(n, 4, bits, window, params).millis(params);
            ComponentPoint {
                bits,
                cluster_ms,
                positional_ms,
                decluster_ms,
                total_ms: cluster_ms + positional_ms + decluster_ms,
                model_total_ms,
            }
        })
        .collect()
}

/// Fig. 8: time the projection phase of one side (π columns of one source
/// table of `n` tuples) under a one-letter code `u`/`s`/`c`/`d`.
/// The join index is a random permutation of the source (hit rate 1).
pub fn dsm_post_projection_phase_ms(code: char, n: usize, pi: usize, params: &CacheParams) -> f64 {
    let mut oids: Vec<Oid> = (0..n as Oid).collect();
    oids.shuffle(&mut StdRng::seed_from_u64(7));
    let columns: Vec<Column<i32>> = (0..pi)
        .map(|a| (0..n).map(|i| (i + a) as i32).collect())
        .collect();
    let result_positions: Vec<Oid> = (0..n as Oid).collect();
    let spec = RadixClusterSpec::optimal_partial(n, 4, params.cache_capacity());

    let (_, ms) = time_ms(|| match code {
        'u' => {
            for col in &columns {
                std::hint::black_box(positional_join(&oids, col));
            }
        }
        's' => {
            let sorted = rdx_core::cluster::radix_sort_oids(&oids, &result_positions, n);
            for col in &columns {
                std::hint::black_box(positional_join(sorted.keys(), col));
            }
        }
        'c' => {
            let clustered = radix_cluster_oids(&oids, &result_positions, spec);
            for col in &columns {
                std::hint::black_box(clustered_positional_join(
                    clustered.keys(),
                    clustered.bounds(),
                    col,
                ));
            }
        }
        'd' => {
            let clustered = radix_cluster_oids(&oids, &result_positions, spec);
            let window = choose_window_bytes(4, clustered.num_clusters(), params);
            for col in &columns {
                let clust_values =
                    clustered_positional_join(clustered.keys(), clustered.bounds(), col);
                std::hint::black_box(radix_decluster(
                    clust_values.as_slice(),
                    clustered.payloads(),
                    clustered.bounds(),
                    window,
                ));
            }
        }
        other => panic!("unknown projection code {other}"),
    });
    ms
}

/// Measured-vs-modeled pair for one Fig. 9 panel point.
#[derive(Debug, Clone, Copy)]
pub struct ModelPoint {
    /// Radix bits.
    pub bits: u32,
    /// Measured wall-clock milliseconds on this host.
    pub measured_ms: f64,
    /// Appendix-A model prediction (paper platform), milliseconds.
    pub modeled_ms: f64,
}

/// Fig. 9a: Radix-Cluster of an `[oid,oid]` join index of `n` tuples.
pub fn fig9_radix_cluster(n: usize, bits: u32, params: &CacheParams) -> ModelPoint {
    let mut oids: Vec<Oid> = (0..n as Oid).collect();
    oids.shuffle(&mut StdRng::seed_from_u64(1));
    let payload: Vec<Oid> = (0..n as Oid).collect();
    let (_, measured_ms) = time_ms(|| {
        std::hint::black_box(radix_cluster_oids(
            &oids,
            &payload,
            RadixClusterSpec::single_pass(bits),
        ))
    });
    let modeled_ms =
        rdx_cost::algorithms::radix_cluster(rdx_cost::DataRegion::new(n, 8), bits, 1, params)
            .millis(params);
    ModelPoint {
        bits,
        measured_ms,
        modeled_ms,
    }
}

/// Fig. 9b: Partitioned Hash-Join of two relations of `n` keys, pre-clustered
/// on `bits` bits (bits = 0 means the naive Hash-Join).
pub fn fig9_partitioned_hash_join(n: usize, bits: u32, params: &CacheParams) -> ModelPoint {
    let keys = |seed: u64| -> Vec<u64> {
        let mut k: Vec<u64> = (0..n as u64).collect();
        k.shuffle(&mut StdRng::seed_from_u64(seed));
        k
    };
    let larger = keys(1);
    let smaller = keys(2);
    let (_, measured_ms) = time_ms(|| {
        std::hint::black_box(partitioned_hash_join(
            &larger,
            &smaller,
            RadixClusterSpec::new(bits, if bits > 11 { 2 } else { 1 }),
        ))
    });
    let region = rdx_cost::DataRegion::new(n, 8);
    let modeled_ms = if bits == 0 {
        rdx_cost::algorithms::hash_join(region, region, n, params).millis(params)
    } else {
        rdx_cost::algorithms::partitioned_hash_join(region, region, bits, n, params).millis(params)
    };
    ModelPoint {
        bits,
        measured_ms,
        modeled_ms,
    }
}

/// Fig. 9c: Clustered Positional-Join through a join index of `n` entries
/// clustered on `bits` bits (bits = 0 is the unclustered case).
pub fn fig9_clustered_positional_join(n: usize, bits: u32, params: &CacheParams) -> ModelPoint {
    let input = make_decluster_input(n, bits, 3);
    let column: Column<i32> = (0..n).map(|i| i as i32).collect();
    let (_, measured_ms) = time_ms(|| {
        std::hint::black_box(clustered_positional_join(
            // keys of the clustering are the source oids
            &input.values.iter().map(|&v| v as Oid).collect::<Vec<_>>(),
            &input.bounds,
            &column,
        ))
    });
    let modeled_ms = rdx_cost::algorithms::positional_join_clustered(
        n,
        rdx_cost::DataRegion::new(n, 4),
        4,
        bits,
        params,
    )
    .millis(params);
    ModelPoint {
        bits,
        measured_ms,
        modeled_ms,
    }
}

/// Fig. 9d: Radix-Decluster with the `w = 32` window rule, vs. radix bits.
pub fn fig9_radix_decluster(n: usize, bits: u32, params: &CacheParams) -> ModelPoint {
    let input = make_decluster_input(n, bits, 4);
    let window = choose_window_bytes(4, 1usize << bits, params);
    let (_, measured_ms) = time_ms(|| {
        std::hint::black_box(radix_decluster(
            &input.values,
            &input.positions,
            &input.bounds,
            window,
        ))
    });
    let modeled_ms =
        rdx_cost::algorithms::radix_decluster(n, 4, bits, window, params).millis(params);
    ModelPoint {
        bits,
        measured_ms,
        modeled_ms,
    }
}

/// Figs. 9e/9f: the two Jive-Join phases, measured together but modeled
/// separately; `left` selects which model the point carries.
pub fn fig9_jive(n: usize, bits: u32, left: bool, params: &CacheParams) -> ModelPoint {
    let pi = 1usize;
    let larger_col: Column<i32> = (0..n).map(|i| i as i32).collect();
    let smaller_col: Column<i32> = (0..n).map(|i| (i * 2) as i32).collect();
    let mut smaller_oids: Vec<Oid> = (0..n as Oid).collect();
    smaller_oids.shuffle(&mut StdRng::seed_from_u64(5));
    let ji = JoinIndex::from_columns((0..n as Oid).collect(), smaller_oids);
    let (_, measured_ms) = time_ms(|| {
        std::hint::black_box(jive_join_projection(
            &ji,
            pi,
            |oid, _| larger_col.value(oid as usize),
            pi,
            |oid, _| smaller_col.value(oid as usize),
            n,
            bits,
        ))
    });
    let table = rdx_cost::DataRegion::new(n, 4);
    let modeled_ms = if left {
        rdx_cost::algorithms::jive_join_left(n, table, 4, bits, params).millis(params)
    } else {
        rdx_cost::algorithms::jive_join_right(n, table, 4, bits, params).millis(params)
    };
    ModelPoint {
        bits,
        measured_ms,
        modeled_ms,
    }
}

/// Which overall strategies (Fig. 10) to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverallStrategy {
    /// DSM post-projection with the planner's codes.
    DsmPostDecluster,
    /// DSM pre-projection with Partitioned Hash-Join.
    DsmPrePhash,
    /// NSM pre-projection with Partitioned Hash-Join.
    NsmPrePhash,
    /// NSM pre-projection with the naive Hash-Join.
    NsmPreHash,
    /// NSM post-projection with Radix-Decluster.
    NsmPostDecluster,
    /// NSM post-projection with Jive-Join.
    NsmPostJive,
}

impl OverallStrategy {
    /// Every strategy of the Fig. 10 comparison.
    pub const ALL: [OverallStrategy; 6] = [
        OverallStrategy::DsmPostDecluster,
        OverallStrategy::DsmPrePhash,
        OverallStrategy::NsmPrePhash,
        OverallStrategy::NsmPreHash,
        OverallStrategy::NsmPostDecluster,
        OverallStrategy::NsmPostJive,
    ];

    /// The Fig. 10 legend label.
    pub fn label(&self) -> &'static str {
        match self {
            OverallStrategy::DsmPostDecluster => "DSM-post-decluster",
            OverallStrategy::DsmPrePhash => "DSM-pre-phash",
            OverallStrategy::NsmPrePhash => "NSM-pre-phash",
            OverallStrategy::NsmPreHash => "NSM-pre-hash",
            OverallStrategy::NsmPostDecluster => "NSM-post-decluster",
            OverallStrategy::NsmPostJive => "NSM-post-jive",
        }
    }
}

/// Runs one overall strategy on a generated workload, returning total ms and
/// (for DSM post-projection) the planner's code label.
pub fn run_overall_strategy(
    strategy: OverallStrategy,
    workload: &JoinWorkload,
    spec: &QuerySpec,
    params: &CacheParams,
) -> (f64, Option<String>) {
    match strategy {
        OverallStrategy::DsmPostDecluster => {
            let plan = DsmPostProjection::plan(&workload.larger, &workload.smaller, params);
            let out = plan.execute(&workload.larger, &workload.smaller, spec, params);
            (out.timings.total_millis(), Some(plan.label()))
        }
        OverallStrategy::DsmPrePhash => {
            let out = dsm_pre_projection(&workload.larger, &workload.smaller, spec, params);
            (out.timings.total_millis(), None)
        }
        OverallStrategy::NsmPrePhash => {
            let out =
                nsm_pre_projection_phash(&workload.larger_nsm, &workload.smaller_nsm, spec, params);
            (out.timings.total_millis(), None)
        }
        OverallStrategy::NsmPreHash => {
            let out = nsm_pre_projection_hash(&workload.larger_nsm, &workload.smaller_nsm, spec);
            (out.timings.total_millis(), None)
        }
        OverallStrategy::NsmPostDecluster => {
            let out = nsm_post_projection_decluster(
                &workload.larger_nsm,
                &workload.smaller_nsm,
                spec,
                params,
            );
            (out.timings.total_millis(), None)
        }
        OverallStrategy::NsmPostJive => {
            let out =
                nsm_post_projection_jive(&workload.larger_nsm, &workload.smaller_nsm, spec, params);
            (out.timings.total_millis(), None)
        }
    }
}

/// Generates the Fig. 10 workload: two relations of `n` tuples, ω stored
/// columns, the given hit rate.
pub fn fig10_workload(n: usize, omega: usize, hit_rate: f64, seed: u64) -> JoinWorkload {
    JoinWorkloadBuilder::equal(n, omega)
        .hit_rate(HitRate(hit_rate))
        .seed(seed)
        .build()
}

/// Fig. 10 "error bars": the DSM post-projection strategy where the smaller
/// side is a `selectivity` selection over a larger base table, measuring only
/// the sparse smaller-side projection phase differences.
pub fn dsm_post_sparse_ms(n: usize, pi: usize, selectivity: f64, params: &CacheParams) -> f64 {
    let sparse = SparseWorkload::generate(n, selectivity, pi, 19);
    let mut oids: Vec<Oid> = (0..n as Oid).collect();
    oids.shuffle(&mut StdRng::seed_from_u64(20));
    let spec =
        RadixClusterSpec::optimal_partial(sparse.base.cardinality(), 4, params.cache_capacity());
    let result_positions: Vec<Oid> = (0..n as Oid).collect();
    let (_, ms) = time_ms(|| {
        let clustered = radix_cluster_oids(&oids, &result_positions, spec);
        let window = choose_window_bytes(4, clustered.num_clusters(), params);
        for a in 0..pi {
            let clust_values =
                sparse_positional_join(clustered.keys(), &sparse.selection, sparse.base.attr(a));
            std::hint::black_box(radix_decluster(
                clust_values.as_slice(),
                clustered.payloads(),
                clustered.bounds(),
                window,
            ));
        }
    });
    ms
}

/// Fig. 11: sparse Clustered Positional-Join — `selected` oids drawn through a
/// selection of the given `selectivity`, clustered on `bits` bits, projecting
/// one column from the base table.
pub fn sparse_clustered_positional_ms(
    selected: usize,
    selectivity: f64,
    bits: u32,
    params: &CacheParams,
) -> f64 {
    let _ = params;
    let sparse = SparseWorkload::generate(selected, selectivity, 1, 23);
    let mut oids: Vec<Oid> = (0..selected as Oid).collect();
    oids.shuffle(&mut StdRng::seed_from_u64(24));
    let payload: Vec<Oid> = (0..selected as Oid).collect();
    let clustered = radix_cluster_oids(
        &oids,
        &payload,
        RadixClusterSpec::new(bits, if bits > 11 { 2 } else { 1 }),
    );
    let (_, ms) = time_ms(|| {
        std::hint::black_box(sparse_positional_join(
            clustered.keys(),
            &sparse.selection,
            sparse.base.attr(0),
        ))
    });
    ms
}

/// A small correctness check used by the harness before timing anything: the
/// planned DSM post-projection and NSM pre-projection must agree on a small
/// workload (guards against benchmarking a broken build).
pub fn sanity_check() -> bool {
    use rdx_core::strategy::reference::{reference_rows, result_rows};
    let w = JoinWorkloadBuilder::equal(2_000, 2).seed(99).build();
    let spec = QuerySpec::symmetric(2);
    let params = CacheParams::paper_pentium4();
    let expected = reference_rows(&w.larger, &w.smaller, &spec);
    let a =
        DsmPostProjection::with_codes(ProjectionCode::PartialCluster, SecondSideCode::Decluster)
            .execute(&w.larger, &w.smaller, &spec, &params);
    let b = nsm_pre_projection_phash(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
    result_rows(&a.result) == expected && result_rows(&b.result) == expected
}

/// Fallback naive join used in the harness's own tests.
pub fn naive_join_len(n: usize) -> usize {
    let keys: Vec<u64> = (0..n as u64).collect();
    hash_join(&keys, &keys).len()
}

/// Picks the Jive partition bits the same way the NSM-post-jive strategy does
/// (re-exported for the Fig. 9e/f sweeps).
pub fn default_jive_bits(n: usize, params: &CacheParams) -> u32 {
    jive_bits(n, 4, params.cache_capacity())
}

/// Picks the Partitioned Hash-Join clustering the same way the strategies do.
pub fn default_join_bits(n: usize, params: &CacheParams) -> u32 {
    join_cluster_spec(n, params.cache_capacity()).bits
}

/// One cell of the deterministic perf-proxy gate: a named simulated count.
///
/// Unlike wall-clock, these values are pure functions of the code and the
/// simulated cache geometry — byte-identical across containers, load levels
/// and CPU generations — so a committed baseline can gate on them exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct MissProxyCell {
    /// Stable metric name, e.g. `"decluster.n16384.b6.l2_misses"`.
    pub name: String,
    /// Unit label (`"misses"`, `"accesses"` or `"cycles"`).
    pub unit: &'static str,
    /// The simulated count.
    pub value: f64,
}

fn push_counts(
    out: &mut Vec<MissProxyCell>,
    prefix: &str,
    counts: &rdx_cache::EventCounts,
    params: &CacheParams,
) {
    let cell = |name: &str, unit: &'static str, value: f64| MissProxyCell {
        name: format!("{prefix}.{name}"),
        unit,
        value,
    };
    out.push(cell("accesses", "accesses", counts.accesses as f64));
    out.push(cell("l1_misses", "misses", counts.l1_misses as f64));
    out.push(cell("l2_misses", "misses", counts.l2_misses as f64));
    out.push(cell("tlb_misses", "misses", counts.tlb_misses as f64));
    out.push(cell(
        "stall_cycles",
        "cycles",
        counts.stall_cycles(params).round(),
    ));
}

/// The deterministic miss-count measurement mode: replays the Radix-Decluster
/// kernel and a profiled end-to-end pipeline through the cache simulator and
/// reports every count as a named cell.
///
/// `detune_window` deliberately runs the kernel cells with the insertion
/// window collapsed to a single last-level cache line — the left edge of
/// paper Fig. 7a, where every window of output costs a fresh scan over all
/// cluster heads.  The gate's comparator must classify those cells as
/// regressed against a tuned baseline, which is how the harness proves the
/// gate can actually fail.
pub fn miss_count_proxies(params: &CacheParams, detune_window: bool) -> Vec<MissProxyCell> {
    let mut cells = Vec::new();

    // Kernel cells: the traced Radix-Decluster at two (N, bits) shapes.
    for &(n, bits) in &[(1usize << 14, 6u32), (1 << 16, 8)] {
        let input = make_decluster_input(n, bits, 17);
        let tuned = choose_window_bytes(4, input.bounds.len(), params);
        let window = if detune_window {
            params.last_level().line_size
        } else {
            tuned
        };
        let mut mem = MemorySystem::new(params);
        let (_, counts) = radix_decluster_traced(
            &input.values,
            &input.positions,
            &input.bounds,
            window,
            &mut mem,
        );
        push_counts(
            &mut cells,
            &format!("decluster.n{n}.b{bits}"),
            &counts,
            params,
        );
    }

    // End-to-end cell: a profiled pipeline run through the front door, with
    // the per-chunk replay totals read back from the `profile.*` counters.
    let w = JoinWorkloadBuilder::equal(4_000, 2).seed(7).build();
    let mut session = rdx_api::Session::new(rdx_serve::ServeConfig {
        params: params.clone(),
        global_budget: rdx_core::budget::MemoryBudget::bytes(64 * 1024),
        max_concurrent: 1,
        threads_per_query: 1,
        observability: true,
        profiled: true,
        ..rdx_serve::ServeConfig::default()
    });
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    session
        .query(larger, smaller)
        .project(QuerySpec::symmetric(2))
        .codes(DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        ))
        .run()
        .expect("profiled proxy query");
    let metrics = session.metrics().expect("observability on");
    for (name, unit) in [
        ("accesses", "accesses"),
        ("l1_misses", "misses"),
        ("l2_misses", "misses"),
        ("tlb_misses", "misses"),
        ("stall_cycles", "cycles"),
    ] {
        let value = metrics
            .counter(&format!("profile.{name}"))
            .expect("profile counters recorded") as f64;
        cells.push(MissProxyCell {
            name: format!("pipeline.e2e.{name}"),
            unit,
            value,
        });
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanity_check_passes() {
        assert!(sanity_check());
    }

    #[test]
    fn decluster_input_is_consistent() {
        let input = make_decluster_input(2_000, 4, 1);
        assert_eq!(input.values.len(), 2_000);
        assert_eq!(*input.bounds.last().unwrap(), 2_000);
        assert!(rdx_core::decluster::validate_inputs(
            &input.positions,
            &input.bounds
        ));
    }

    #[test]
    fn window_sweep_produces_monotone_model_near_the_knee() {
        let params = CacheParams::paper_pentium4();
        let input = make_decluster_input(100_000, 6, 2);
        let points = decluster_window_sweep(
            &input,
            6,
            &[16 * 1024, 256 * 1024, 8 * 1024 * 1024],
            &params,
            false,
        );
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.millis >= 0.0));
        // The model charges the oversized window more than the tuned one.
        assert!(points[2].model_millis > points[1].model_millis);
    }

    #[test]
    fn projection_phase_codes_all_run() {
        let params = CacheParams::paper_pentium4();
        for code in ['u', 's', 'c', 'd'] {
            let ms = dsm_post_projection_phase_ms(code, 20_000, 2, &params);
            assert!(ms >= 0.0, "code {code}");
        }
    }

    #[test]
    fn fig9_points_have_positive_values() {
        let params = CacheParams::paper_pentium4();
        let p = fig9_radix_cluster(50_000, 4, &params);
        assert!(p.measured_ms >= 0.0 && p.modeled_ms > 0.0);
        let p = fig9_partitioned_hash_join(20_000, 4, &params);
        assert!(p.measured_ms > 0.0 && p.modeled_ms > 0.0);
        let p = fig9_clustered_positional_join(20_000, 4, &params);
        assert!(p.modeled_ms > 0.0);
        let p = fig9_radix_decluster(20_000, 4, &params);
        assert!(p.modeled_ms > 0.0);
        let p = fig9_jive(20_000, 4, true, &params);
        assert!(p.modeled_ms > 0.0);
    }

    #[test]
    fn overall_strategies_run_on_a_small_workload() {
        let params = CacheParams::paper_pentium4();
        let w = fig10_workload(5_000, 4, 1.0, 3);
        let spec = QuerySpec::symmetric(2);
        for s in OverallStrategy::ALL {
            let (ms, label) = run_overall_strategy(s, &w, &spec, &params);
            assert!(ms >= 0.0, "{}", s.label());
            if s == OverallStrategy::DsmPostDecluster {
                assert!(label.is_some());
            }
        }
    }

    #[test]
    fn sparse_measurements_run() {
        let params = CacheParams::paper_pentium4();
        assert!(sparse_clustered_positional_ms(10_000, 0.1, 4, &params) >= 0.0);
        assert!(dsm_post_sparse_ms(10_000, 1, 0.1, &params) >= 0.0);
    }
}
