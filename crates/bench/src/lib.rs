//! # rdx-bench — shared pieces of the figure-reproduction harness
//!
//! The `figures` binary (one subcommand per table/figure of the paper's
//! evaluation, see DESIGN.md §4) and the Criterion benches both build on the
//! helpers here: scale presets, timed single-figure measurement routines and a
//! small fixed-width table printer.
//!
//! Absolute milliseconds will differ from the paper's 2.2 GHz Pentium 4; what
//! the harness reproduces is the *shape* of every figure — who wins, where the
//! knees sit relative to the cache parameters, and by roughly what factor.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod measure;
pub mod scale;
pub mod stats;
pub mod table;

pub use baseline::{Baseline, BaselineMetric, EnvMeta, BASELINE_SCHEMA};
pub use measure::*;
pub use scale::Scale;
pub use stats::{bootstrap_median_ci, classify, BootstrapCi, Comparison, MIN_SAMPLES};
pub use table::Table;
