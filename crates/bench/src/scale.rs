//! Scale presets for the figure harness.
//!
//! The paper's largest configurations (16M tuples × ω = 64 columns in NSM)
//! need several GB per relation; the default preset shrinks cardinalities so
//! every figure finishes in minutes on a laptop while keeping every
//! cardinality comfortably past the cache capacity (which is what the
//! cache-consciousness story is about).  `--scale paper` restores the paper's
//! sizes where memory allows.

/// Workload scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast default: largest runs ≈ 1M tuples.
    Small,
    /// Intermediate: largest runs ≈ 4M tuples.
    Medium,
    /// The paper's cardinalities (memory permitting).
    Paper,
}

impl Scale {
    /// Parses `small` / `medium` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The cardinality used by the Radix-Decluster isolation experiments
    /// (Figs. 7a/7b use N = 8M in the paper).
    pub fn decluster_cardinality(&self) -> usize {
        match self {
            Scale::Small => 1_000_000,
            Scale::Medium => 4_000_000,
            Scale::Paper => 8_000_000,
        }
    }

    /// The two cardinalities of the Fig. 8 strategy sweep (paper: 500K, 8M).
    pub fn fig8_cardinalities(&self) -> [usize; 2] {
        match self {
            Scale::Small => [125_000, 1_000_000],
            Scale::Medium => [500_000, 4_000_000],
            Scale::Paper => [500_000, 8_000_000],
        }
    }

    /// The cardinality pairs of the Fig. 9 join-phase panels
    /// (paper: 16M/4M for the cluster/join/decluster panels, 1M/250K for the
    /// positional-join panels).
    pub fn fig9_cardinalities(&self) -> ([usize; 2], [usize; 2]) {
        match self {
            Scale::Small => ([1_000_000, 250_000], [500_000, 125_000]),
            Scale::Medium => ([4_000_000, 1_000_000], [1_000_000, 250_000]),
            Scale::Paper => ([16_000_000, 4_000_000], [1_000_000, 250_000]),
        }
    }

    /// Cardinality and stored width ω for the Fig. 10a/b overall comparison
    /// (paper: N = 500K, ω = 64).
    pub fn fig10_base(&self) -> (usize, usize) {
        match self {
            Scale::Small => (125_000, 16),
            Scale::Medium => (500_000, 64),
            Scale::Paper => (500_000, 64),
        }
    }

    /// The cardinality sweep of Fig. 10c (paper: 15K … 16M).
    pub fn fig10c_cardinalities(&self) -> Vec<usize> {
        match self {
            Scale::Small => vec![15_000, 62_000, 250_000, 1_000_000],
            Scale::Medium => vec![15_000, 62_000, 250_000, 1_000_000, 4_000_000],
            Scale::Paper => vec![15_000, 62_000, 250_000, 1_000_000, 4_000_000, 16_000_000],
        }
    }

    /// Number of selected tuples for the Fig. 11 sparse positional join
    /// (paper: N = 1M).
    pub fn fig11_selected(&self) -> usize {
        match self {
            Scale::Small => 250_000,
            Scale::Medium | Scale::Paper => 1_000_000,
        }
    }

    /// Radix-bit sweep used by the bit-dependent figures (paper: 0..25; we
    /// stop where cluster counts exceed the cardinality anyway).
    pub fn bit_sweep(&self, max: u32) -> Vec<u32> {
        (0..=max).step_by(2).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_values() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Small.decluster_cardinality() < Scale::Paper.decluster_cardinality());
        assert!(Scale::Small.fig10_base().0 <= Scale::Paper.fig10_base().0);
        assert_eq!(Scale::Paper.fig8_cardinalities()[1], 8_000_000);
    }

    #[test]
    fn bit_sweep_is_even_steps() {
        assert_eq!(Scale::Small.bit_sweep(8), vec![0, 2, 4, 6, 8]);
    }
}
