//! # Bootstrap confidence intervals and CI-overlap comparison
//!
//! Wall-clock benchmark numbers from a shared container are noisy; a single
//! median tells you nothing about whether a 3% delta is signal.  This module
//! provides the statistical floor under every wall-clock claim the harness
//! makes:
//!
//! * [`bootstrap_median_ci`] — a percentile-bootstrap confidence interval for
//!   the median of a sample set, fully deterministic (seeded resampling via
//!   the workspace's deterministic `StdRng`).
//! * [`classify`] — baseline-vs-candidate comparison from CI overlap alone:
//!   only non-overlapping intervals may claim [`Comparison::Improved`] or
//!   [`Comparison::Regressed`]; everything else is honest
//!   [`Comparison::Inconclusive`].
//!
//! The harness convention is **lower is better** (milliseconds, miss counts,
//! stall cycles).  Deterministic metrics (simulated miss counts) produce
//! zero-width intervals, so the same classifier doubles as an exact gate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum sample count the harness accepts for a wall-clock CI.  Below this
/// the bootstrap distribution of the median is too lumpy to mean anything.
pub const MIN_SAMPLES: usize = 30;

/// A percentile-bootstrap confidence interval around a sample median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Median of the observed samples.
    pub point: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// Number of bootstrap resamples the bounds were taken from.
    pub resamples: usize,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl BootstrapCi {
    /// Interval width `hi - lo`; zero for deterministic metrics.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True if `v` lies inside the closed interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// Outcome of a baseline-vs-candidate comparison (lower is better).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Candidate CI lies entirely below the baseline CI.
    Improved,
    /// Candidate CI lies entirely above the baseline CI.
    Regressed,
    /// The intervals overlap — no claim either way.
    Inconclusive,
}

impl Comparison {
    /// Stable lower-case label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Comparison::Improved => "improved",
            Comparison::Regressed => "regressed",
            Comparison::Inconclusive => "inconclusive",
        }
    }
}

/// Median of `samples` (mean of the middle pair for even counts).
/// Panics on an empty slice.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    mid(&sorted)
}

/// Median of an already-sorted slice.
fn mid(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Linear-interpolated percentile of an already-sorted slice, `p` in `[0,1]`.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile-bootstrap CI for the median of `samples`.
///
/// Resampling is driven by `StdRng::seed_from_u64(seed)`, so the interval is
/// a pure function of `(samples, resamples, level, seed)` — rerunning the
/// harness on the same sample file reproduces the bounds bit-for-bit.
///
/// Panics if `samples` is empty, `resamples` is zero, or `level` is outside
/// `(0, 1)`.
pub fn bootstrap_median_ci(
    samples: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> BootstrapCi {
    assert!(!samples.is_empty(), "bootstrap over an empty sample set");
    assert!(resamples > 0, "need at least one bootstrap resample");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1)"
    );
    let n = samples.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut medians = Vec::with_capacity(resamples);
    let mut resample = vec![0.0f64; n];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = samples[rng.gen_range(0..n as u64) as usize];
        }
        resample.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        medians.push(mid(&resample));
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("NaN resample median"));
    let alpha = (1.0 - level) / 2.0;
    BootstrapCi {
        point: median(samples),
        lo: percentile_sorted(&medians, alpha),
        hi: percentile_sorted(&medians, 1.0 - alpha),
        resamples,
        level,
    }
}

/// Classifies `candidate` against `baseline` from CI overlap (lower is
/// better).  Deterministic metrics yield zero-width intervals, where this
/// reduces to an exact three-way compare.
pub fn classify(baseline: &BootstrapCi, candidate: &BootstrapCi) -> Comparison {
    if candidate.hi < baseline.lo {
        Comparison::Improved
    } else if candidate.lo > baseline.hi {
        Comparison::Regressed
    } else {
        Comparison::Inconclusive
    }
}

/// Collects `iters` timing samples (milliseconds) of `f`, discarding one
/// unrecorded warm-up call first.
pub fn measure_ms_samples<F: FnMut()>(iters: usize, mut f: F) -> Vec<f64> {
    f(); // warm-up: first call pays allocator/page-fault costs
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = std::time::Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A constant sample set has a degenerate bootstrap distribution: every
    /// resample median equals the constant, so the CI is exactly zero-width.
    #[test]
    fn constant_samples_give_zero_width_ci() {
        let samples = vec![7.25; 40];
        let ci = bootstrap_median_ci(&samples, 500, 0.95, 1);
        assert_eq!(ci.point, 7.25);
        assert_eq!(ci.lo, 7.25);
        assert_eq!(ci.hi, 7.25);
        assert_eq!(ci.width(), 0.0);
    }

    /// A balanced bimodal sample (half 1.0, half 2.0) is the worst case for
    /// a median: resamples flip between the modes, so the CI must span a
    /// large fraction of the gap — pinned here as width >= 0.5.
    #[test]
    fn bimodal_samples_give_wide_ci() {
        let mut samples = vec![1.0; 20];
        samples.extend(vec![2.0; 20]);
        let ci = bootstrap_median_ci(&samples, 500, 0.95, 2);
        assert!(ci.width() >= 0.5, "bimodal CI should be wide, got {:?}", ci);
        assert!(ci.lo >= 1.0 && ci.hi <= 2.0, "bounds within data: {ci:?}");
    }

    /// A heavy right tail (one sample 100x the rest) must not drag the
    /// median CI upward — the median is robust, so the interval stays near
    /// the body of the distribution.
    #[test]
    fn heavy_tail_does_not_inflate_median_ci() {
        let mut samples: Vec<f64> = (0..39).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        samples.push(1000.0);
        let ci = bootstrap_median_ci(&samples, 500, 0.95, 3);
        assert!(ci.point < 11.0, "median near body: {ci:?}");
        assert!(ci.hi < 11.0, "upper bound unmoved by outlier: {ci:?}");
        assert!(ci.width() <= 0.5, "tight CI despite outlier: {ci:?}");
    }

    /// Same inputs, same seed => bit-identical interval; different seed may
    /// move bounds but never the point estimate.
    #[test]
    fn bootstrap_is_deterministic_in_the_seed() {
        let samples: Vec<f64> = (0..35).map(|i| (i * 37 % 11) as f64).collect();
        let a = bootstrap_median_ci(&samples, 300, 0.95, 42);
        let b = bootstrap_median_ci(&samples, 300, 0.95, 42);
        assert_eq!(a, b);
        let c = bootstrap_median_ci(&samples, 300, 0.95, 43);
        assert_eq!(a.point, c.point);
    }

    #[test]
    fn classify_uses_overlap_only() {
        let ci = |lo: f64, hi: f64| BootstrapCi {
            point: (lo + hi) / 2.0,
            lo,
            hi,
            resamples: 100,
            level: 0.95,
        };
        let base = ci(10.0, 12.0);
        assert_eq!(classify(&base, &ci(7.0, 9.0)), Comparison::Improved);
        assert_eq!(classify(&base, &ci(13.0, 15.0)), Comparison::Regressed);
        assert_eq!(classify(&base, &ci(11.0, 14.0)), Comparison::Inconclusive);
        assert_eq!(classify(&base, &ci(9.0, 10.5)), Comparison::Inconclusive);
        // Zero-width (deterministic) intervals reduce to exact comparison.
        assert_eq!(
            classify(&ci(5.0, 5.0), &ci(5.0, 5.0)),
            Comparison::Inconclusive
        );
        assert_eq!(
            classify(&ci(5.0, 5.0), &ci(6.0, 6.0)),
            Comparison::Regressed
        );
        assert_eq!(classify(&ci(5.0, 5.0), &ci(4.0, 4.0)), Comparison::Improved);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The bootstrap CI must contain the observed sample median: the
        /// median is itself a resample statistic, so percentile bounds at
        /// any level bracket it for non-degenerate sample sets.
        #[test]
        fn ci_contains_the_sample_median(
            raw in proptest::collection::vec(0u64..1000, 30..80),
            seed in 0u64..1000,
        ) {
            let samples: Vec<f64> = raw.iter().map(|&v| v as f64 * 0.5).collect();
            let ci = bootstrap_median_ci(&samples, 200, 0.95, seed);
            prop_assert!(ci.contains(ci.point), "CI {:?} excludes its own median", ci);
            prop_assert!(ci.lo <= ci.hi);
        }

        /// More data => no wider interval: quadrupling the sample count (by
        /// repeating the same empirical distribution) must not widen the CI.
        #[test]
        fn ci_width_shrinks_with_sample_count(
            raw in proptest::collection::vec(1u64..100, 30..50),
            seed in 0u64..1000,
        ) {
            let small: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
            let mut large = Vec::with_capacity(small.len() * 4);
            for _ in 0..4 {
                large.extend_from_slice(&small);
            }
            let ci_small = bootstrap_median_ci(&small, 200, 0.95, seed);
            let ci_large = bootstrap_median_ci(&large, 200, 0.95, seed);
            prop_assert!(
                ci_large.width() <= ci_small.width() + 1e-9,
                "CI widened with more data: {:?} -> {:?}", ci_small, ci_large
            );
        }
    }
}
