//! A tiny fixed-width table printer for the figure harness.

/// Collects rows of strings and prints them with aligned columns, the way the
/// paper's tables/series are reported in EXPERIMENTS.md.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have as many cells as the header).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a millisecond value with three significant decimals.
pub fn ms(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["n", "strategy", "ms"]);
        t.row(vec!["1000", "u/u", "0.5"]);
        t.row(vec!["1000000", "c/d", "123.456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("strategy"));
        assert!(lines[3].contains("c/d"));
        // All rows have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_row_width() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(1.23456), "1.235");
    }
}
