//! # perf_proxy — the deterministic cache-truth perf gate
//!
//! Wall-clock perf gates flap in CI because containers are noisy neighbours.
//! This gate instead measures what the paper actually optimises — cache and
//! TLB miss counts — through the workspace's cache simulator, which makes
//! every number a pure function of the code: two consecutive runs are
//! byte-identical, so any delta against the committed baseline is a real
//! behavioural change, not scheduler weather.
//!
//! ```text
//! cargo run -p rdx-bench --bin perf_proxy                    # gate vs BASELINE_perf_proxy.json
//! cargo run -p rdx-bench --bin perf_proxy -- --write-baseline  # (re)record the baseline
//! cargo run -p rdx-bench --bin perf_proxy -- --detune          # negative test: must report regressed
//! ```
//!
//! Exit codes: `0` pass, `1` at least one metric regressed, `2` usage or
//! baseline-file errors.  Classification goes through the same CI-overlap
//! comparator as the wall-clock harness ([`rdx_bench::stats::classify`]);
//! deterministic counts carry zero-width intervals, so the gate is exact.

use rdx_bench::baseline::{Baseline, BaselineMetric, EnvMeta, BASELINE_SCHEMA};
use rdx_bench::measure::miss_count_proxies;
use rdx_bench::stats::{classify, Comparison};
use rdx_cache::CacheParams;
use std::path::Path;
use std::process::ExitCode;

/// The committed baseline, next to the `BENCH_*.json` trajectory files.
const BASELINE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BASELINE_perf_proxy.json"
);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write_baseline = false;
    let mut detune = false;
    for arg in &args {
        match arg.as_str() {
            "--write-baseline" => write_baseline = true,
            "--detune" => detune = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_proxy [--write-baseline] [--detune]");
                return ExitCode::from(2);
            }
        }
    }

    let params = CacheParams::paper_pentium4();
    let cells = miss_count_proxies(&params, detune);
    let metrics: Vec<BaselineMetric> = cells
        .iter()
        .map(|c| BaselineMetric::exact(c.name.clone(), c.unit, c.value))
        .collect();

    if write_baseline {
        if detune {
            eprintln!("refusing to write a baseline from a detuned run");
            return ExitCode::from(2);
        }
        let baseline = Baseline {
            schema: BASELINE_SCHEMA,
            bench: "perf_proxy".into(),
            env: EnvMeta::capture(&params, 0),
            metrics,
        };
        let path = Path::new(BASELINE_PATH);
        if let Err(e) = baseline.store(path) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} metrics)",
            path.display(),
            baseline.metrics.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(Path::new(BASELINE_PATH)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("run `cargo run -p rdx-bench --bin perf_proxy -- --write-baseline` first");
            return ExitCode::from(2);
        }
    };

    println!(
        "perf_proxy gate vs baseline @ {} (l1 {} B, l2 {} B, tlb {} entries)",
        baseline.env.commit, baseline.env.l1_bytes, baseline.env.l2_bytes, baseline.env.tlb_entries,
    );
    println!(
        "{:<36} {:>16} {:>16} {:>9}  verdict",
        "metric", "baseline", "candidate", "delta %"
    );

    let mut regressed = 0usize;
    let mut improved = 0usize;
    let mut new = 0usize;
    for m in &metrics {
        match baseline.metric(&m.name) {
            Some(base) => {
                let verdict = classify(&base.ci(), &m.ci());
                let delta = if base.point != 0.0 {
                    (m.point - base.point) / base.point * 100.0
                } else if m.point == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                };
                println!(
                    "{:<36} {:>16} {:>16} {:>8.2}%  {}",
                    m.name,
                    base.point,
                    m.point,
                    delta,
                    verdict.label()
                );
                match verdict {
                    Comparison::Regressed => regressed += 1,
                    Comparison::Improved => improved += 1,
                    Comparison::Inconclusive => {}
                }
            }
            None => {
                println!(
                    "{:<36} {:>16} {:>16} {:>9}  new (no baseline)",
                    m.name, "-", m.point, "-"
                );
                new += 1;
            }
        }
    }
    for base in &baseline.metrics {
        if !metrics.iter().any(|m| m.name == base.name) {
            eprintln!(
                "metric \"{}\" is in the baseline but was not measured",
                base.name
            );
            regressed += 1;
        }
    }

    println!(
        "{} metrics: {improved} improved, {regressed} regressed, {new} new",
        metrics.len()
    );
    if regressed > 0 {
        eprintln!("FAIL: miss-count regression vs committed baseline");
        if improved > 0 || new > 0 {
            eprintln!("(if intentional, refresh with --write-baseline and commit the file)");
        }
        ExitCode::from(1)
    } else {
        println!("PASS");
        ExitCode::SUCCESS
    }
}
