//! Figure-reproduction harness: one subcommand per table/figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index).
//!
//! ```text
//! cargo run --release -p rdx-bench --bin figures -- <figure> [--scale small|medium|paper] [--sparse]
//!     figure ∈ { fig7a, fig7b, fig8, fig9a, fig9b, fig9c, fig9d, fig9e, fig9f,
//!                fig10a, fig10b, fig10c, fig11, fig12, all }
//! ```
//!
//! Every subcommand prints the same rows/series the corresponding paper figure
//! plots.  Absolute milliseconds belong to this host; the shapes (orderings,
//! crossovers, knee positions) are what EXPERIMENTS.md compares against the
//! paper.

use rdx_bench::measure::*;
use rdx_bench::table::ms;
use rdx_bench::{Scale, Table};
use rdx_cache::CacheParams;
use rdx_core::cluster::{radix_cluster_oids, RadixClusterSpec};
use rdx_core::decluster::paged::radix_decluster_paged;
use rdx_core::strategy::QuerySpec;
use rdx_dsm::{Oid, VarColumn};
use rdx_nsm::BufferManager;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let figure = args.first().map(String::as_str).unwrap_or("help");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Small);
    let sparse = args.iter().any(|a| a == "--sparse");
    let params = CacheParams::paper_pentium4();

    if figure == "help" || figure == "--help" {
        eprintln!(
            "usage: figures <fig7a|fig7b|fig8|fig9a..fig9f|fig10a|fig10b|fig10c|fig11|fig12|all> \
             [--scale small|medium|paper] [--sparse]"
        );
        return;
    }

    assert!(
        sanity_check(),
        "sanity check failed: strategies disagree on a small workload"
    );
    println!("# scale = {scale:?}, cache model = paper Pentium 4 (512 KB L2, 64-entry TLB)");
    println!();

    let run_all = figure == "all";
    let want = |f: &str| run_all || figure == f;

    if want("fig7a") {
        fig7a(scale, &params);
    }
    if want("fig7b") {
        fig7b(scale, &params);
    }
    if want("fig8") {
        fig8(scale, &params);
    }
    for (name, panel) in [
        ("fig9a", Fig9Panel::RadixCluster),
        ("fig9b", Fig9Panel::PartitionedHashJoin),
        ("fig9c", Fig9Panel::ClusteredPositionalJoin),
        ("fig9d", Fig9Panel::RadixDecluster),
        ("fig9e", Fig9Panel::LeftJive),
        ("fig9f", Fig9Panel::RightJive),
    ] {
        if want(name) {
            fig9(name, panel, scale, &params);
        }
    }
    if want("fig10a") {
        fig10a(scale, sparse, &params);
    }
    if want("fig10b") {
        fig10b(scale, &params);
    }
    if want("fig10c") {
        fig10c(scale, &params);
    }
    if want("fig11") {
        fig11(scale, &params);
    }
    if want("fig12") {
        fig12(scale, &params);
    }
}

/// Fig. 7a — Radix-Decluster in isolation: insertion-window sweep with
/// simulated L1/L2/TLB misses and measured + modeled elapsed time.
fn fig7a(scale: Scale, params: &CacheParams) {
    let n = scale.decluster_cardinality();
    let bits = 8;
    println!("## Figure 7a — Radix-Decluster window sweep (N = {n}, B = {bits}, pi = 1)");
    let input = make_decluster_input(n, bits, 1);
    // 1 KB … 32 MB in powers of 4 (powers of 2 at paper scale).
    let step = if scale == Scale::Paper { 2 } else { 4 };
    let mut windows = Vec::new();
    let mut w = 1024usize;
    while w <= 32 * 1024 * 1024 {
        windows.push(w);
        w *= step;
    }
    // Simulating every window at full N is slow; simulate on a 1/8 sample of N
    // (the knee positions depend on the window vs. cache size, not on N).
    let sim_input = make_decluster_input(n / 8, bits, 2);
    let sim_points = decluster_window_sweep(&sim_input, bits, &windows, params, true);
    let timed_points = decluster_window_sweep(&input, bits, &windows, params, false);

    let mut t = Table::new(vec![
        "window[B]",
        "L1 misses",
        "L2 misses",
        "TLB misses",
        "measured[ms]",
        "model[ms]",
    ]);
    for (sim, timed) in sim_points.iter().zip(&timed_points) {
        t.row(vec![
            format!("{}", timed.window_bytes),
            format!("{}", sim.l1_misses.unwrap_or(0)),
            format!("{}", sim.l2_misses.unwrap_or(0)),
            format!("{}", sim.tlb_misses.unwrap_or(0)),
            ms(timed.millis),
            ms(timed.model_millis),
        ]);
    }
    t.print();
    println!(
        "(miss counts simulated on N/8 = {} tuples; times measured on the full N)\n",
        n / 8
    );
}

/// Fig. 7b — components (Radix-Cluster, Positional-Join, Radix-Decluster) and
/// total cost of the smaller-side projection vs. radix bits.
fn fig7b(scale: Scale, params: &CacheParams) {
    let n = scale.decluster_cardinality();
    println!("## Figure 7b — projection components vs radix bits (N = {n}, pi = 1)");
    let max_bits = (usize::BITS - n.leading_zeros()).min(20);
    let bits_list = scale.bit_sweep(max_bits);
    let points = decluster_components_sweep(n, &bits_list, params);
    let mut t = Table::new(vec![
        "bits",
        "radix-cluster[ms]",
        "positional-join[ms]",
        "radix-decluster[ms]",
        "total[ms]",
        "model-total[ms]",
    ]);
    for p in points {
        t.row(vec![
            format!("{}", p.bits),
            ms(p.cluster_ms),
            ms(p.positional_ms),
            ms(p.decluster_ms),
            ms(p.total_ms),
            ms(p.model_total_ms),
        ]);
    }
    t.print();
    println!();
}

/// Fig. 8 — DSM post-projection strategies (u/s/c/d) vs. projectivity, for two
/// cardinalities.
fn fig8(scale: Scale, params: &CacheParams) {
    println!("## Figure 8 — DSM post-projection strategies vs projectivity");
    for n in scale.fig8_cardinalities() {
        println!("### cardinality N = {n}");
        let mut t = Table::new(vec![
            "pi",
            "unsorted[ms]",
            "sorted[ms]",
            "p.-clustered[ms]",
            "declustered[ms]",
        ]);
        for pi in [1usize, 4, 16, 64] {
            let row: Vec<String> = ['u', 's', 'c', 'd']
                .iter()
                .map(|&code| ms(dsm_post_projection_phase_ms(code, n, pi, params)))
                .collect();
            t.row(vec![
                format!("{pi}"),
                row[0].clone(),
                row[1].clone(),
                row[2].clone(),
                row[3].clone(),
            ]);
        }
        t.print();
        println!();
    }
}

#[derive(Clone, Copy)]
enum Fig9Panel {
    RadixCluster,
    PartitionedHashJoin,
    ClusteredPositionalJoin,
    RadixDecluster,
    LeftJive,
    RightJive,
}

/// Fig. 9a–f — modeled vs. measured cost of the individual join phases as a
/// function of the radix bits, for two cardinalities per panel.
fn fig9(name: &str, panel: Fig9Panel, scale: Scale, params: &CacheParams) {
    let (big, small) = scale.fig9_cardinalities();
    let cards = match panel {
        Fig9Panel::ClusteredPositionalJoin | Fig9Panel::RightJive => small,
        _ => big,
    };
    let title = match panel {
        Fig9Panel::RadixCluster => "Radix-Cluster",
        Fig9Panel::PartitionedHashJoin => "Partitioned Hash-Join",
        Fig9Panel::ClusteredPositionalJoin => "Clustered Positional-Join",
        Fig9Panel::RadixDecluster => "Radix-Decluster",
        Fig9Panel::LeftJive => "Left Jive-Join",
        Fig9Panel::RightJive => "Right Jive-Join",
    };
    println!("## Figure {name} — {title}: modeled vs measured (pi = 1)");
    let mut t = Table::new(vec!["N", "bits", "measured[ms]", "model[ms]"]);
    for &n in &cards {
        let max_bits = (usize::BITS - n.leading_zeros()).min(18);
        for bits in scale.bit_sweep(max_bits) {
            let p = match panel {
                Fig9Panel::RadixCluster => fig9_radix_cluster(n, bits, params),
                Fig9Panel::PartitionedHashJoin => fig9_partitioned_hash_join(n, bits, params),
                Fig9Panel::ClusteredPositionalJoin => {
                    fig9_clustered_positional_join(n, bits, params)
                }
                Fig9Panel::RadixDecluster => fig9_radix_decluster(n, bits, params),
                Fig9Panel::LeftJive => fig9_jive(n, bits, true, params),
                Fig9Panel::RightJive => fig9_jive(n, bits, false, params),
            };
            t.row(vec![
                format!("{n}"),
                format!("{bits}"),
                ms(p.measured_ms),
                ms(p.modeled_ms),
            ]);
        }
    }
    t.print();
    println!();
}

/// Fig. 10a — overall join performance vs. projectivity.
fn fig10a(scale: Scale, sparse: bool, params: &CacheParams) {
    let (n, omega) = scale.fig10_base();
    println!(
        "## Figure 10a — overall strategies vs projectivity (N = {n}, omega = {omega}, h = 1:1)"
    );
    let pis: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&p| p <= omega)
        .collect();
    let mut header = vec!["strategy".to_string()];
    header.extend(pis.iter().map(|p| format!("pi={p} [ms]")));
    let mut t = Table::new(header);
    for strategy in OverallStrategy::ALL {
        let mut cells = vec![strategy.label().to_string()];
        for &pi in &pis {
            let workload = fig10_workload(n, omega, 1.0, 31);
            let spec = QuerySpec::symmetric(pi);
            let (total_ms, _) = run_overall_strategy(strategy, &workload, &spec, params);
            cells.push(ms(total_ms));
        }
        t.row(cells);
    }
    t.print();
    if sparse {
        println!();
        println!("### sparse DSM post-projection (error bars): smaller-side projection phase only");
        let mut t = Table::new(vec!["selectivity", "pi=4 [ms]"]);
        for s in [1.0, 0.1, 0.01] {
            t.row(vec![
                format!("{:.0}%", s * 100.0),
                ms(dsm_post_sparse_ms(n, 4, s, params)),
            ]);
        }
        t.print();
    }
    println!();
}

/// Fig. 10b — overall join performance vs. join hit rate.
fn fig10b(scale: Scale, params: &CacheParams) {
    let (n, omega) = scale.fig10_base();
    println!(
        "## Figure 10b — overall strategies vs join hit rate (N = {n}, omega = {omega}, pi = 4)"
    );
    let spec = QuerySpec::symmetric(4.min(omega));
    let mut t = Table::new(vec!["strategy", "h=1:3 [ms]", "h=1:1 [ms]", "h=3:1 [ms]"]);
    for strategy in OverallStrategy::ALL {
        let mut cells = vec![strategy.label().to_string()];
        for h in [1.0 / 3.0, 1.0, 3.0] {
            let workload = fig10_workload(n, omega, h, 37);
            let (total_ms, _) = run_overall_strategy(strategy, &workload, &spec, params);
            cells.push(ms(total_ms));
        }
        t.row(cells);
    }
    t.print();
    println!();
}

/// Fig. 10c — overall join performance vs. cardinality; the DSM post column
/// also reports which projection codes the planner chose.
fn fig10c(scale: Scale, params: &CacheParams) {
    let (_, omega) = scale.fig10_base();
    println!(
        "## Figure 10c — overall strategies vs cardinality (omega = {omega}, pi = 4, h = 1:1)"
    );
    let spec = QuerySpec::symmetric(4.min(omega));
    let mut t = Table::new(vec![
        "N",
        "DSM-post [ms] (codes)",
        "DSM-pre [ms]",
        "NSM-pre-phash [ms]",
        "NSM-pre-hash [ms]",
        "NSM-post-decl [ms]",
        "NSM-post-jive [ms]",
    ]);
    for n in scale.fig10c_cardinalities() {
        let workload = fig10_workload(n, omega, 1.0, 41);
        let (dsm_post_ms, codes) =
            run_overall_strategy(OverallStrategy::DsmPostDecluster, &workload, &spec, params);
        let others: Vec<f64> = [
            OverallStrategy::DsmPrePhash,
            OverallStrategy::NsmPrePhash,
            OverallStrategy::NsmPreHash,
            OverallStrategy::NsmPostDecluster,
            OverallStrategy::NsmPostJive,
        ]
        .into_iter()
        .map(|s| run_overall_strategy(s, &workload, &spec, params).0)
        .collect();
        t.row(vec![
            format!("{n}"),
            format!("{} ({})", ms(dsm_post_ms), codes.unwrap_or_default()),
            ms(others[0]),
            ms(others[1]),
            ms(others[2]),
            ms(others[3]),
            ms(others[4]),
        ]);
    }
    t.print();
    println!();
}

/// Fig. 11 — sparse Clustered Positional-Join vs. radix bits, for three
/// selectivities.
fn fig11(scale: Scale, params: &CacheParams) {
    let selected = scale.fig11_selected();
    println!("## Figure 11 — sparse clustered positional join (N = {selected} selected tuples)");
    let mut t = Table::new(vec!["bits", "s=100% [ms]", "s=10% [ms]", "s=1% [ms]"]);
    let max_bits = (usize::BITS - selected.leading_zeros()).min(16);
    for bits in scale.bit_sweep(max_bits) {
        t.row(vec![
            format!("{bits}"),
            ms(sparse_clustered_positional_ms(selected, 1.0, bits, params)),
            ms(sparse_clustered_positional_ms(selected, 0.1, bits, params)),
            ms(sparse_clustered_positional_ms(selected, 0.01, bits, params)),
        ]);
    }
    t.print();
    println!();
}

/// Fig. 12 / §5 — three-phase Radix-Decluster of variable-size values into
/// buffer-manager pages.
fn fig12(scale: Scale, params: &CacheParams) {
    let n = scale.decluster_cardinality() / 8;
    let page_size = 8 * 1024;
    println!("## Figure 12 — buffer-manager Radix-Decluster with variable-size values (N = {n})");
    let strings: Vec<String> = (0..n)
        .map(|i| format!("record-{i}-{}", "x".repeat(i % 29)))
        .collect();
    let smaller_oids: Vec<Oid> = (0..n as u64)
        .map(|r| (r.wrapping_mul(2654435761) % n as u64) as Oid)
        .collect();
    let result_positions: Vec<Oid> = (0..n as Oid).collect();
    let spec = RadixClusterSpec::optimal_partial(n, 32, params.cache_capacity());
    let clustered = radix_cluster_oids(&smaller_oids, &result_positions, spec);
    let mut clust_values = VarColumn::new();
    for &oid in clustered.keys() {
        clust_values.push_str(&strings[oid as usize]);
    }
    let window = rdx_core::decluster::choose_window_bytes(4, clustered.num_clusters(), params);

    let mut bm = BufferManager::new(page_size);
    let (placed, total_ms) = time_ms(|| {
        radix_decluster_paged(
            &clust_values,
            clustered.payloads(),
            clustered.bounds(),
            window,
            &mut bm,
        )
    });
    // Verify a sample.
    let mut checked = 0;
    for r in (0..n).step_by((n / 500).max(1)) {
        let expected = &strings[smaller_oids[r] as usize];
        assert_eq!(placed.read(&bm, r, expected.len()), expected.as_bytes());
        checked += 1;
    }
    let payload: usize = strings.iter().map(|s| s.len()).sum();
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["tuples".to_string(), format!("{n}")]);
    t.row(vec![
        "clusters".to_string(),
        format!("{}", clustered.num_clusters()),
    ]);
    t.row(vec![
        "insertion window [KB]".to_string(),
        format!("{}", window / 1024),
    ]);
    t.row(vec![
        "pages allocated".to_string(),
        format!("{}", bm.num_pages()),
    ]);
    t.row(vec![
        "page utilisation".to_string(),
        format!(
            "{:.1}%",
            100.0 * payload as f64 / (bm.num_pages() * page_size) as f64
        ),
    ]);
    t.row(vec!["three-phase decluster [ms]".to_string(), ms(total_ms)]);
    t.row(vec!["verified samples".to_string(), format!("{checked}")]);
    t.print();
    println!();
}
