//! # Persisted per-bench baselines
//!
//! A benchmark number is only meaningful next to the number it is being
//! compared against.  This module defines the schema'd JSON file that holds
//! that reference point — one [`Baseline`] per bench, committed at the
//! workspace root next to the `BENCH_*.json` trajectory files — plus the env
//! metadata stamp ([`EnvMeta`]) that makes any baseline self-describing:
//! which machine shape, which cache geometry, how many samples, which commit.
//!
//! Serialisation is a hand-rolled writer and a minimal recursive-descent JSON
//! reader (objects / arrays / strings / numbers / literals), keeping the
//! bench crate zero-dependency like the rest of the workspace.

use rdx_cache::CacheParams;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Schema version written into every baseline file; bump on breaking layout
/// changes so stale committed baselines fail loudly instead of misparsing.
pub const BASELINE_SCHEMA: u64 = 1;

/// Environment stamp carried by every baseline and `BENCH_*.json` emitter:
/// enough to tell whether two measurement files are comparable at all.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvMeta {
    /// Logical CPUs visible to the process.
    pub nproc: usize,
    /// Simulated L1 capacity in bytes (from the run's [`CacheParams`]).
    pub l1_bytes: usize,
    /// Simulated last-level capacity in bytes.
    pub l2_bytes: usize,
    /// Simulated TLB entry count.
    pub tlb_entries: usize,
    /// Git commit the numbers were taken at, or `"unknown"`.
    pub commit: String,
    /// Samples per metric (0 for deterministic single-shot metrics).
    pub samples: usize,
}

impl EnvMeta {
    /// Captures the current environment: host parallelism, the simulated
    /// cache geometry in `params`, and the workspace's `HEAD` commit.
    pub fn capture(params: &CacheParams, samples: usize) -> Self {
        EnvMeta {
            nproc: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            l1_bytes: params.l1().capacity,
            l2_bytes: params.last_level().capacity,
            tlb_entries: params.tlb.entries,
            commit: head_commit().unwrap_or_else(|| "unknown".to_string()),
            samples,
        }
    }

    /// Renders this stamp as a JSON object fragment (no trailing comma).
    pub fn to_json(&self, indent: &str) -> String {
        format!(
            "{indent}\"env\": {{\"nproc\": {}, \"l1_bytes\": {}, \"l2_bytes\": {}, \
             \"tlb_entries\": {}, \"commit\": \"{}\", \"samples\": {}}}",
            self.nproc,
            self.l1_bytes,
            self.l2_bytes,
            self.tlb_entries,
            escape(&self.commit),
            self.samples,
        )
    }
}

/// Resolves the workspace `HEAD` commit by reading `.git` directly — no
/// subprocess, so it works in sandboxes without a `git` binary on `PATH`.
fn head_commit() -> Option<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let head = std::fs::read_to_string(root.join(".git/HEAD")).ok()?;
    let head = head.trim();
    let hash = if let Some(reference) = head.strip_prefix("ref: ") {
        std::fs::read_to_string(root.join(".git").join(reference))
            .ok()?
            .trim()
            .to_string()
    } else {
        head.to_string()
    };
    (hash.len() >= 7 && hash.chars().all(|c| c.is_ascii_hexdigit())).then_some(hash)
}

/// One gated metric inside a baseline: a named scalar with its CI bounds.
/// Deterministic metrics (simulated miss counts) carry `lo == point == hi`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineMetric {
    /// Stable metric name, e.g. `"decluster.n16384.b8.w2048.l2_misses"`.
    pub name: String,
    /// Unit label, e.g. `"misses"`, `"ms"`, `"cycles"`.
    pub unit: String,
    /// Point estimate (sample median, or the exact deterministic value).
    pub point: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
}

impl BaselineMetric {
    /// Builds a zero-width metric for a deterministic count.
    pub fn exact(name: impl Into<String>, unit: impl Into<String>, value: f64) -> Self {
        BaselineMetric {
            name: name.into(),
            unit: unit.into(),
            point: value,
            lo: value,
            hi: value,
        }
    }

    /// View as a [`crate::stats::BootstrapCi`] for overlap classification.
    pub fn ci(&self) -> crate::stats::BootstrapCi {
        crate::stats::BootstrapCi {
            point: self.point,
            lo: self.lo,
            hi: self.hi,
            resamples: 0,
            level: 0.95,
        }
    }
}

/// A committed reference point for one bench: schema version, env stamp, and
/// the list of gated metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Schema version (see [`BASELINE_SCHEMA`]).
    pub schema: u64,
    /// Bench name, e.g. `"perf_proxy"`.
    pub bench: String,
    /// Environment the numbers were taken in.
    pub env: EnvMeta,
    /// Gated metrics, in a stable emission order.
    pub metrics: Vec<BaselineMetric>,
}

impl Baseline {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&BaselineMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serialises to the committed JSON layout.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"bench\": \"{}\",", escape(&self.bench));
        out.push_str(&self.env.to_json("  "));
        out.push_str(",\n  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"unit\": \"{}\", \"point\": {}, \"lo\": {}, \"hi\": {}}}",
                escape(&m.name),
                escape(&m.unit),
                fmt_num(m.point),
                fmt_num(m.lo),
                fmt_num(m.hi),
            );
            out.push_str(if i + 1 < self.metrics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the baseline to `path`.
    pub fn store(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads and validates a baseline from `path`.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Baseline::from_json(&text)
    }

    /// Parses the committed JSON layout, rejecting schema mismatches.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let value = parse_json(text)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        let schema = get_num(obj, "schema")? as u64;
        if schema != BASELINE_SCHEMA {
            return Err(format!(
                "baseline schema {schema} != expected {BASELINE_SCHEMA}; regenerate with --write-baseline"
            ));
        }
        let env_obj = obj
            .get("env")
            .and_then(|v| v.as_object())
            .ok_or("missing env object")?;
        let env = EnvMeta {
            nproc: get_num(env_obj, "nproc")? as usize,
            l1_bytes: get_num(env_obj, "l1_bytes")? as usize,
            l2_bytes: get_num(env_obj, "l2_bytes")? as usize,
            tlb_entries: get_num(env_obj, "tlb_entries")? as usize,
            commit: get_str(env_obj, "commit")?,
            samples: get_num(env_obj, "samples")? as usize,
        };
        let metrics = obj
            .get("metrics")
            .and_then(|v| v.as_array())
            .ok_or("missing metrics array")?
            .iter()
            .map(|v| {
                let m = v.as_object().ok_or("metric must be an object")?;
                Ok(BaselineMetric {
                    name: get_str(m, "name")?,
                    unit: get_str(m, "unit")?,
                    point: get_num(m, "point")?,
                    lo: get_num(m, "lo")?,
                    hi: get_num(m, "hi")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Baseline {
            schema,
            bench: get_str(obj, "bench")?,
            env,
            metrics,
        })
    }
}

/// Formats a number the way the writer emits it: integers bare, fractions
/// with enough digits to round-trip the gate comparisons.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the baseline layout.
// ---------------------------------------------------------------------------

/// A parsed JSON value.  Object keys use a `BTreeMap` so iteration (and the
/// derived `Debug`) is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String (escapes resolved).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object view, if this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Array view, if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric view, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn get_num(obj: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("missing numeric field \"{key}\""))
}

fn get_str(obj: &BTreeMap<String, Json>, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field \"{key}\""))
}

/// Parses a complete JSON document, requiring all input to be consumed.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape '\\{}'", other as char)),
                });
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            schema: BASELINE_SCHEMA,
            bench: "perf_proxy".into(),
            env: EnvMeta {
                nproc: 8,
                l1_bytes: 16 * 1024,
                l2_bytes: 512 * 1024,
                tlb_entries: 64,
                commit: "abc123def".into(),
                samples: 0,
            },
            metrics: vec![
                BaselineMetric::exact("decluster.l2_misses", "misses", 1234.0),
                BaselineMetric {
                    name: "pipeline.wall".into(),
                    unit: "ms".into(),
                    point: 10.5,
                    lo: 9.75,
                    hi: 11.25,
                },
            ],
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let b = sample();
        let parsed = Baseline::from_json(&b.to_json()).expect("parse");
        assert_eq!(parsed, b);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample()
            .to_json()
            .replace("\"schema\": 1", "\"schema\": 99");
        let err = Baseline::from_json(&text).unwrap_err();
        assert!(err.contains("schema 99"), "got: {err}");
    }

    #[test]
    fn parser_handles_nested_structures_and_escapes() {
        let v = parse_json(r#"{"a": [1, 2.5, "x\"y"], "b": {"c": true, "d": null}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj["a"].as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x\"y"));
        assert_eq!(obj["b"].as_object().unwrap()["c"], Json::Bool(true));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{\"a\": }").is_err());
    }

    #[test]
    fn env_capture_reads_real_environment() {
        let env = EnvMeta::capture(&CacheParams::paper_pentium4(), 30);
        assert!(env.nproc >= 1);
        assert_eq!(env.l1_bytes, 16 * 1024);
        assert_eq!(env.l2_bytes, 512 * 1024);
        assert_eq!(env.tlb_entries, 64);
        assert_eq!(env.samples, 30);
        // The repo is git-initialised, so the commit should resolve.
        assert!(env.commit == "unknown" || env.commit.len() >= 7);
    }

    #[test]
    fn exact_metrics_classify_via_zero_width_cis() {
        use crate::stats::{classify, Comparison};
        let base = BaselineMetric::exact("m", "misses", 100.0);
        let worse = BaselineMetric::exact("m", "misses", 101.0);
        let same = BaselineMetric::exact("m", "misses", 100.0);
        assert_eq!(classify(&base.ci(), &worse.ci()), Comparison::Regressed);
        assert_eq!(classify(&base.ci(), &same.ci()), Comparison::Inconclusive);
    }
}
