//! Throughput of the memory-budgeted streaming projection pipeline as a
//! function of the budget.
//!
//! One workload (1M-tuple equal join, π = 1 per side) executed by
//! `ProjectionPipeline` under budgets of 1/4, 1/16 and 1/64 of the value
//! data, plus the unbounded (single-chunk) run and the materialising
//! `DsmPostProjection` baseline.  The interesting read-out is how little
//! throughput a 16× tighter working set costs: the chunk-restart overhead is
//! `O(chunks · 2^B)` cursor repositionings against an `O(N)` pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdx_cache::CacheParams;
use rdx_core::budget::MemoryBudget;
use rdx_core::strategy::sink::RowChunkSink;
use rdx_core::strategy::{DsmPostProjection, ProjectionCode, QuerySpec, SecondSideCode};
use rdx_exec::{ExecPolicy, ProjectionPipeline};
use rdx_workload::BudgetedWorkload;

/// A sink that consumes the stream without retaining it (checksums every
/// value), so the bench measures the pipeline, not a materialising consumer.
#[derive(Default)]
struct ChecksumSink {
    sum: i64,
    rows: usize,
}

impl RowChunkSink for ChecksumSink {
    fn emit(&mut self, _first_row: usize, columns: &[Vec<i32>]) {
        for col in columns {
            for &v in col {
                self.sum = self.sum.wrapping_add(v as i64);
            }
        }
        self.rows += columns.first().map(|c| c.len()).unwrap_or(0);
    }
}

fn bench_streaming_budget(c: &mut Criterion) {
    let n = 1_000_000;
    let preset = BudgetedWorkload::generate(n, 1, 11);
    let w = &preset.workload;
    let spec = QuerySpec::symmetric(1);
    let params = CacheParams::paper_pentium4();
    let plan =
        DsmPostProjection::with_codes(ProjectionCode::PartialCluster, SecondSideCode::Decluster);

    let mut group = c.benchmark_group("streaming_budget_1m");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::from_parameter("materializing_baseline"), |b| {
        b.iter(|| plan.execute(&w.larger, &w.smaller, &spec, &params))
    });

    let mut run = |label: String, budget: MemoryBudget| {
        let policy = ExecPolicy::with_threads(1).budget(budget);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut sink = ChecksumSink::default();
                let stats = ProjectionPipeline::new(plan)
                    .execute(&w.larger, &w.smaller, &spec, &params, &policy, &mut sink);
                assert_eq!(sink.rows, stats.rows_emitted);
                sink.sum
            })
        });
    };

    run("unbounded".into(), MemoryBudget::unbounded());
    for (denom, bytes) in [4usize, 16, 64].into_iter().zip(preset.budgets()) {
        run(format!("budget_1_{denom}"), MemoryBudget::bytes(bytes));
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_budget);
criterion_main!(benches);
