//! The radix-cluster hot path, kernel by kernel: the PR 4 acceptance bench.
//!
//! Compares, at 1M and 4M tuples and B ∈ {6, 10, 14} over **hashed keys**
//! (the join-input case, where the seed kernel hashed every key twice per
//! pass):
//!
//! * `seed` — a faithful replica of the pre-PR `cluster_impl` (two `to_vec`
//!   input copies, two flip-buffer `clone`s, per-segment cursor vectors,
//!   two hashes per key per pass), kept here as the committed baseline so
//!   the improvement is measured inside one build;
//! * `plain` — the scratch engine with a one-shot arena, plain scatter;
//! * `buffered` — one-shot arena, software write-combining scatter;
//! * `scratch_plain` / `scratch_buffered` — the same with a reused arena
//!   (the steady state of the streaming pipeline and the serving layer).
//!
//! Every variant is checked byte-identical to `seed` before timing.  Emits
//! `BENCH_kernels.json` next to `BENCH_serve.json`.
//!
//! Run with `cargo bench -p rdx-bench --bench scatter_kernels [samples]
//! [seed]` (default 9 samples per cell, key-mix seed 17; the median is
//! reported).  With `samples >= 30` each cell additionally carries bootstrap
//! 95% CIs for the seed and planned kernels plus a CI-overlap verdict, so
//! the committed improvement claim is statistical, not a single median.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdx_bench::stats::{bootstrap_median_ci, classify, BootstrapCi, MIN_SAMPLES};
use rdx_bench::EnvMeta;
use rdx_cache::{CacheLevel, CacheParams};
use rdx_core::cluster::{
    plan_cluster_passes, radix_cluster_with_scratch, ClusterScratch, Clustered, RadixClusterSpec,
    ScatterMode,
};
use rdx_core::hash::hash_key;
use std::time::{Duration, Instant};

/// The host's data-cache geometry from sysfs (sizes and line widths are all
/// the pass planner consumes), falling back to the paper's Pentium 4 when
/// sysfs is unavailable.  Latency/bandwidth fields keep nominal values —
/// `plan_cluster_passes` only reads the geometry.
fn host_params() -> CacheParams {
    let read = |idx: usize, file: &str| -> Option<String> {
        std::fs::read_to_string(format!(
            "/sys/devices/system/cpu/cpu0/cache/index{idx}/{file}"
        ))
        .ok()
        .map(|s| s.trim().to_string())
    };
    let parse_size = |s: &str| -> Option<usize> {
        if let Some(k) = s.strip_suffix('K') {
            k.parse::<usize>().ok().map(|v| v * 1024)
        } else if let Some(m) = s.strip_suffix('M') {
            m.parse::<usize>().ok().map(|v| v * 1024 * 1024)
        } else {
            s.parse().ok()
        }
    };
    let mut levels: Vec<CacheLevel> = Vec::new();
    for idx in 0..8 {
        let Some(ty) = read(idx, "type") else { break };
        if ty == "Instruction" {
            continue;
        }
        let (Some(size), Some(line)) = (
            read(idx, "size").and_then(|s| parse_size(&s)),
            read(idx, "coherency_line_size").and_then(|s| s.parse().ok()),
        ) else {
            continue;
        };
        levels.push(CacheLevel {
            capacity: size,
            line_size: line,
            associativity: read(idx, "ways_of_associativity")
                .and_then(|s| s.parse().ok())
                .unwrap_or(8),
            miss_latency_cycles: 100 + 100 * levels.len() as u64,
        });
    }
    if levels.is_empty() {
        return CacheParams::paper_pentium4();
    }
    levels.sort_by_key(|l| l.capacity);
    CacheParams {
        levels,
        ..CacheParams::paper_pentium4()
    }
}

/// Faithful replica of the seed `cluster_impl` (hashed-key form), preserved
/// as the measurement baseline.
fn seed_radix_cluster(
    keys: &[u64],
    payloads: &[u32],
    spec: RadixClusterSpec,
) -> Clustered<u64, u32> {
    let bucket_of = |k: &u64| hash_key(*k);
    let n = keys.len();
    if spec.bits == 0 || n == 0 {
        let mut bounds = vec![0usize; spec.num_clusters()];
        bounds.push(n);
        return Clustered::from_parts(keys.to_vec(), payloads.to_vec(), bounds, spec);
    }
    let mut cur_keys = keys.to_vec();
    let mut cur_pay = payloads.to_vec();
    let mut out_keys = cur_keys.clone();
    let mut out_pay = cur_pay.clone();
    let mut segments: Vec<usize> = vec![0, n];
    let pass_bits = spec.pass_bits();
    let mut bits_remaining = spec.bits;
    for bp in pass_bits {
        bits_remaining -= bp;
        let shift = spec.ignore + bits_remaining;
        let hp = 1usize << bp;
        let mask = (hp - 1) as u64;
        let mut new_segments = Vec::with_capacity((segments.len() - 1) * hp + 1);
        let mut counts = vec![0usize; hp];
        for seg in segments.windows(2) {
            let (s, e) = (seg[0], seg[1]);
            counts.iter_mut().for_each(|c| *c = 0);
            for k in &cur_keys[s..e] {
                let b = ((bucket_of(k) >> shift) & mask) as usize;
                counts[b] += 1;
            }
            let mut cursor = s;
            let mut offsets = vec![0usize; hp];
            for b in 0..hp {
                offsets[b] = cursor;
                new_segments.push(cursor);
                cursor += counts[b];
            }
            for i in s..e {
                let b = ((bucket_of(&cur_keys[i]) >> shift) & mask) as usize;
                let dst = offsets[b];
                offsets[b] += 1;
                out_keys[dst] = cur_keys[i];
                out_pay[dst] = cur_pay[i];
            }
        }
        new_segments.push(n);
        segments = new_segments;
        std::mem::swap(&mut cur_keys, &mut out_keys);
        std::mem::swap(&mut cur_pay, &mut out_pay);
    }
    Clustered::from_parts(cur_keys, cur_pay, segments, spec)
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

/// Times every variant once per round, rounds interleaved, and returns the
/// per-variant sample series — interleaving keeps slow machine-wide drift
/// (this is a shared single-CPU container) from landing on one variant's
/// samples.
fn time_interleaved(
    samples: usize,
    variants: &mut [&mut dyn FnMut() -> usize],
) -> Vec<Vec<Duration>> {
    let mut times: Vec<Vec<Duration>> = variants.iter().map(|_| Vec::new()).collect();
    let mut sink = 0usize;
    for _ in 0..samples {
        for (variant, series) in variants.iter_mut().zip(&mut times) {
            let t = Instant::now();
            sink = sink.wrapping_add(variant());
            series.push(t.elapsed());
        }
    }
    assert!(sink != usize::MAX, "keep the optimizer honest");
    times
}

/// Bootstrap CI over a timing series in milliseconds, only when the series
/// is long enough to mean anything (see [`MIN_SAMPLES`]).
fn series_ci(series: &[Duration]) -> Option<BootstrapCi> {
    if series.len() < MIN_SAMPLES {
        return None;
    }
    let ms: Vec<f64> = series.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    Some(bootstrap_median_ci(&ms, 1_000, 0.95, 23))
}

struct Cell {
    n: usize,
    bits: u32,
    seed_passes: u32,
    planned_passes: u32,
    planned_mode: ScatterMode,
    seed: Duration,
    plain: Duration,
    buffered: Duration,
    scratch_plain: Duration,
    scratch_buffered: Duration,
    planned: Duration,
    seed_ci: Option<BootstrapCi>,
    planned_ci: Option<BootstrapCi>,
}

impl Cell {
    /// The gate comparison: what the planner actually ships (hardware-derived
    /// pass count and scatter mode, reused arena) vs. the pre-PR kernel.
    fn improvement_pct(&self) -> f64 {
        (1.0 - self.planned.as_secs_f64() / self.seed.as_secs_f64()) * 100.0
    }
}

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(9);
    let key_seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(17);
    let params = host_params();
    println!(
        "host hierarchy: {} data-cache levels, last-level {} KiB ({} B lines)",
        params.levels.len(),
        params.cache_capacity() / 1024,
        params.last_level().line_size,
    );
    let mut cells: Vec<Cell> = Vec::new();

    for &n in &[1_000_000usize, 4_000_000] {
        // A key mix with realistic duplication (join keys, hashed by the
        // kernel itself — the hot path the acceptance gate names), drawn
        // from the explicit seed so two runs can be made to agree or differ
        // on purpose.
        let mut rng = StdRng::seed_from_u64(key_seed);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..n as u64)).collect();
        let payloads: Vec<u32> = (0..n as u32).collect();
        for &bits in &[6u32, 10, 14] {
            // The seed pass rule: two passes beyond 2^11 cursors.
            let passes = if bits > 11 { 2 } else { 1 };
            let spec = RadixClusterSpec::partial(bits, passes, 0);
            // What the hardware-aware planner ships for this fan-out —
            // on hosts with large outer caches this is one pass where the
            // seed rule took two.
            let (planned_passes, planned_mode) = plan_cluster_passes(bits, 8 + 4, &params);
            let planned_spec = RadixClusterSpec::partial(bits, planned_passes, 0);

            // Correctness gate before timing: every variant byte-identical.
            let reference = seed_radix_cluster(&keys, &payloads, spec);
            let mut check = ClusterScratch::new();
            for mode in [ScatterMode::Plain, ScatterMode::Buffered] {
                let got = radix_cluster_with_scratch(&keys, &payloads, spec, mode, &mut check);
                assert_eq!(got, reference, "n={n} bits={bits} mode={mode:?}");
            }
            // The planned variant may use a different pass count (same
            // bytes, different spec tag), so compare the arrays.
            let planned_out = radix_cluster_with_scratch(
                &keys,
                &payloads,
                planned_spec,
                planned_mode,
                &mut check,
            );
            assert_eq!(planned_out.keys(), reference.keys());
            assert_eq!(planned_out.payloads(), reference.payloads());
            assert_eq!(planned_out.bounds(), reference.bounds());
            drop((check, planned_out));

            let mut arena = ClusterScratch::new();
            // Warm the arena for the reused-scratch variants (the one-shot
            // variants construct theirs inside the timed region).
            let _ = radix_cluster_with_scratch(
                &keys,
                &payloads,
                spec,
                ScatterMode::Buffered,
                &mut arena,
            );
            let mut seed_f = || seed_radix_cluster(&keys, &payloads, spec).len();
            let mut plain_f = || {
                radix_cluster_with_scratch(
                    &keys,
                    &payloads,
                    spec,
                    ScatterMode::Plain,
                    &mut ClusterScratch::new(),
                )
                .len()
            };
            let mut buffered_f = || {
                radix_cluster_with_scratch(
                    &keys,
                    &payloads,
                    spec,
                    ScatterMode::Buffered,
                    &mut ClusterScratch::new(),
                )
                .len()
            };
            let arena_cell = std::cell::RefCell::new(&mut arena);
            let mut scratch_plain_f = || {
                radix_cluster_with_scratch(
                    &keys,
                    &payloads,
                    spec,
                    ScatterMode::Plain,
                    &mut **arena_cell.borrow_mut(),
                )
                .len()
            };
            let mut scratch_buffered_f = || {
                radix_cluster_with_scratch(
                    &keys,
                    &payloads,
                    spec,
                    ScatterMode::Buffered,
                    &mut **arena_cell.borrow_mut(),
                )
                .len()
            };
            let mut planned_f = || {
                radix_cluster_with_scratch(
                    &keys,
                    &payloads,
                    planned_spec,
                    planned_mode,
                    &mut **arena_cell.borrow_mut(),
                )
                .len()
            };
            let series = time_interleaved(
                samples,
                &mut [
                    &mut seed_f,
                    &mut plain_f,
                    &mut buffered_f,
                    &mut scratch_plain_f,
                    &mut scratch_buffered_f,
                    &mut planned_f,
                ],
            );
            let (seed_ci, planned_ci) = (series_ci(&series[0]), series_ci(&series[5]));
            let medians: Vec<Duration> = series.into_iter().map(median).collect();
            let (seed, plain, buffered, scratch_plain, scratch_buffered, planned) = (
                medians[0], medians[1], medians[2], medians[3], medians[4], medians[5],
            );

            let cell = Cell {
                n,
                bits,
                seed_passes: passes,
                planned_passes,
                planned_mode,
                seed,
                plain,
                buffered,
                scratch_plain,
                scratch_buffered,
                planned,
                seed_ci,
                planned_ci,
            };
            println!(
                "n={:>9} B={:>2}  seed(P={}) {:>8.2?}  plain {:>8.2?}  buffered {:>8.2?}  scratch_p {:>8.2?}  scratch_b {:>8.2?}  planned(P={},{:?}) {:>8.2?}  -{:.1}%",
                cell.n,
                cell.bits,
                cell.seed_passes,
                cell.seed,
                cell.plain,
                cell.buffered,
                cell.scratch_plain,
                cell.scratch_buffered,
                cell.planned_passes,
                cell.planned_mode,
                cell.planned,
                cell.improvement_pct(),
            );
            cells.push(cell);
        }
    }

    // The acceptance gate: ≥ 20% median improvement on the hot path
    // (1M+ tuples, hashed keys, B ≥ 10) against the seed kernel.
    let gate: Vec<&Cell> = cells.iter().filter(|c| c.bits >= 10).collect();
    let worst = gate
        .iter()
        .map(|c| c.improvement_pct())
        .fold(f64::INFINITY, f64::min);
    println!("hot-path (B >= 10) worst-cell improvement vs seed: {worst:.1}%");

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let ci_json = |ci: &Option<BootstrapCi>| match ci {
        Some(ci) => format!(
            "{{\"point\": {:.3}, \"lo\": {:.3}, \"hi\": {:.3}, \"level\": {:.2}}}",
            ci.point, ci.lo, ci.hi, ci.level
        ),
        None => "null".to_string(),
    };
    let mut json = String::from("{\n  \"bench\": \"scatter_kernels\",\n");
    json.push_str(&EnvMeta::capture(&params, samples).to_json("  "));
    json.push_str(",\n");
    json.push_str(&format!(
        "  \"samples\": {samples},\n  \"seed\": {key_seed},\n  \"cells\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        let verdict = match (&c.seed_ci, &c.planned_ci) {
            (Some(s), Some(p)) => format!("\"{}\"", classify(s, p).label()),
            _ => "null".to_string(),
        };
        json.push_str(&format!(
            "    {{\"tuples\": {}, \"bits\": {}, \"seed_passes\": {}, \"planned_passes\": {}, \"planned_mode\": \"{:?}\", \"seed_ms\": {:.3}, \"plain_ms\": {:.3}, \"buffered_ms\": {:.3}, \"scratch_plain_ms\": {:.3}, \"scratch_buffered_ms\": {:.3}, \"planned_ms\": {:.3}, \"planned_improvement_pct\": {:.1}, \"seed_ci\": {}, \"planned_ci\": {}, \"planned_vs_seed\": {}}}{}\n",
            c.n,
            c.bits,
            c.seed_passes,
            c.planned_passes,
            c.planned_mode,
            ms(c.seed),
            ms(c.plain),
            ms(c.buffered),
            ms(c.scratch_plain),
            ms(c.scratch_buffered),
            ms(c.planned),
            c.improvement_pct(),
            ci_json(&c.seed_ci),
            ci_json(&c.planned_ci),
            verdict,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"hot_path_worst_improvement_pct\": {worst:.1}\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
