//! Criterion bench for the Fig. 9 panels: the individual join phases
//! (Radix-Cluster, Partitioned Hash-Join, Clustered Positional-Join,
//! Radix-Decluster, Left/Right Jive-Join) at a representative radix-bit
//! setting each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdx_bench::measure::*;
use rdx_cache::CacheParams;

fn bench_join_phases(c: &mut Criterion) {
    let params = CacheParams::paper_pentium4();
    let n = 500_000;

    let mut group = c.benchmark_group("fig9_join_phases");
    group.sample_size(10);
    for bits in [0u32, 6, 12] {
        group.bench_with_input(
            BenchmarkId::new("radix_cluster", bits),
            &bits,
            |b, &bits| b.iter(|| fig9_radix_cluster(n, bits, &params)),
        );
        group.bench_with_input(
            BenchmarkId::new("partitioned_hash_join", bits),
            &bits,
            |b, &bits| b.iter(|| fig9_partitioned_hash_join(n / 2, bits, &params)),
        );
        group.bench_with_input(
            BenchmarkId::new("clustered_positional_join", bits),
            &bits,
            |b, &bits| b.iter(|| fig9_clustered_positional_join(n / 2, bits, &params)),
        );
        group.bench_with_input(
            BenchmarkId::new("radix_decluster", bits),
            &bits,
            |b, &bits| b.iter(|| fig9_radix_decluster(n / 2, bits, &params)),
        );
        group.bench_with_input(BenchmarkId::new("left_jive", bits), &bits, |b, &bits| {
            b.iter(|| fig9_jive(n / 4, bits, true, &params))
        });
        group.bench_with_input(BenchmarkId::new("right_jive", bits), &bits, |b, &bits| {
            b.iter(|| fig9_jive(n / 4, bits, false, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_phases);
criterion_main!(benches);
