//! Serving-layer throughput and latency: a zipfian multi-tenant query mix
//! executed three ways — serial, interleaved (admission + fair chunk
//! scheduling), and interleaved with the clustered-join-index cache warm —
//! plus a machine-readable `BENCH_serve.json` (throughput, p50/p99) so the
//! serving perf trajectory can be tracked across commits.
//!
//! Run with `cargo bench -p rdx-bench --bench serve_mix [queries] [seed]`
//! (default 32 queries, seed 11).  The seed drives the zipfian mix draw and
//! is stamped into the JSON alongside the env metadata, so a trajectory
//! file always says which workload, which machine shape and which commit
//! produced it.

use rdx_bench::EnvMeta;
use rdx_cache::CacheParams;
use rdx_core::budget::MemoryBudget;
use rdx_core::strategy::QuerySpec;
use rdx_serve::{BatchReport, FairnessPolicy, RdxServer, RelationId, ServeConfig, ServerRequest};
use rdx_workload::{MixConfig, QueryMix};
use std::time::Duration;

struct ModeResult {
    label: &'static str,
    wall: Duration,
    served: usize,
    p50: Duration,
    p99: Duration,
    cache_hits: usize,
    peak_concurrent_bytes: usize,
}

impl ModeResult {
    fn throughput_qps(&self) -> f64 {
        self.served as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn measure(label: &'static str, report: &BatchReport) -> ModeResult {
    let mut latencies: Vec<Duration> = report
        .outcomes
        .iter()
        .filter_map(|o| o.outcome.as_ref().ok())
        .map(|q| q.stats.wait + q.stats.service)
        .collect();
    latencies.sort();
    ModeResult {
        label,
        wall: report.stats.wall,
        served: latencies.len(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        cache_hits: report
            .outcomes
            .iter()
            .filter_map(|o| o.outcome.as_ref().ok())
            .filter(|q| q.stats.cache_hit)
            .count(),
        peak_concurrent_bytes: report.stats.peak_concurrent_bytes,
    }
}

fn requests_for(server: &mut RdxServer, mix: &QueryMix) -> Vec<ServerRequest> {
    let ids: Vec<(RelationId, RelationId)> = mix
        .tenants
        .iter()
        .map(|w| {
            (
                server.register(w.larger.clone()),
                server.register(w.smaller.clone()),
            )
        })
        .collect();
    mix.queries
        .iter()
        .map(|q| {
            let (larger, smaller) = ids[q.tenant];
            ServerRequest::new(larger, smaller, QuerySpec::symmetric(q.project))
        })
        .collect()
}

fn main() {
    let queries = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(11);
    let mix = QueryMix::generate(&MixConfig {
        tenants: vec![(1_000_000, 2), (300_000, 4), (100_000, 1), (30_000, 2)],
        queries,
        zipf_exponent: 1.0,
        seed,
        ..MixConfig::default()
    });
    println!(
        "serve_mix: {queries} queries over 4 tenants, popularity {:?}, repeat factor {:.1}x",
        mix.popularity(),
        mix.repeat_factor()
    );

    let budget = MemoryBudget::bytes(mix.tenant_data_bytes(0) / 4);
    let base = ServeConfig {
        params: CacheParams::paper_pentium4(),
        global_budget: budget,
        max_concurrent: 4,
        threads_per_query: 1,
        cache_bytes: 0,
        fairness: FairnessPolicy::CostWeighted,
        plan_shares: Some(4),
        observability: false,
        profiled: false,
        ..ServeConfig::default()
    };

    let env = EnvMeta::capture(&base.params, 1);
    let mut results: Vec<ModeResult> = Vec::new();

    let mut serial = RdxServer::new(ServeConfig {
        max_concurrent: 1,
        ..base.clone()
    });
    let reqs = requests_for(&mut serial, &mix);
    results.push(measure("serial_cold", &serial.run_batch(&reqs)));

    let mut interleaved = RdxServer::new(base.clone());
    let reqs = requests_for(&mut interleaved, &mix);
    results.push(measure("interleaved_cold", &interleaved.run_batch(&reqs)));

    let mut cached = RdxServer::new(ServeConfig {
        cache_bytes: 512 << 20,
        ..base
    });
    let reqs = requests_for(&mut cached, &mix);
    results.push(measure("cached_first_pass", &cached.run_batch(&reqs)));
    results.push(measure("cached_warm", &cached.run_batch(&reqs)));

    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>10} {:>6} {:>12}",
        "mode", "wall ms", "thr q/s", "p50 ms", "p99 ms", "hits", "peak bytes"
    );
    for r in &results {
        println!(
            "{:<20} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>6} {:>12}",
            r.label,
            r.wall.as_secs_f64() * 1e3,
            r.throughput_qps(),
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.cache_hits,
            r.peak_concurrent_bytes,
        );
    }
    let speedup = |a: &ModeResult, b: &ModeResult| a.wall.as_secs_f64() / b.wall.as_secs_f64();
    let warm_vs_serial = speedup(&results[0], &results[3]);
    let warm_vs_cold = speedup(&results[1], &results[3]);
    println!("cache-hit mix speedup: {warm_vs_serial:.2}x vs serial, {warm_vs_cold:.2}x vs interleaved-cold");

    // Machine-readable output for the perf trajectory.
    let mut json = String::from("{\n  \"bench\": \"serve_mix\",\n");
    json.push_str(&env.to_json("  "));
    json.push_str(",\n");
    json.push_str(&format!("  \"queries\": {queries},\n  \"seed\": {seed},\n"));
    json.push_str(&format!(
        "  \"global_budget_bytes\": {},\n  \"modes\": {{\n",
        budget.limit_bytes()
    ));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"wall_ms\": {:.3}, \"throughput_qps\": {:.3}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"cache_hits\": {}, \"peak_concurrent_bytes\": {}}}{}\n",
            r.label,
            r.wall.as_secs_f64() * 1e3,
            r.throughput_qps(),
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.cache_hits,
            r.peak_concurrent_bytes,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  }},\n  \"speedup_warm_vs_serial\": {warm_vs_serial:.3},\n  \
         \"speedup_warm_vs_interleaved_cold\": {warm_vs_cold:.3}\n}}\n"
    ));
    // Anchored to the workspace root (cargo runs benches from the package
    // dir), so the perf trajectory file lands in a stable, discoverable spot.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
