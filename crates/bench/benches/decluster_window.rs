//! Criterion bench for Fig. 7a: Radix-Decluster elapsed time as a function of
//! the insertion-window size (fixed N, fixed clustering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdx_bench::measure::make_decluster_input;
use rdx_core::decluster::radix_decluster;

fn bench_decluster_window(c: &mut Criterion) {
    let n = 1_000_000;
    let bits = 8;
    let input = make_decluster_input(n, bits, 1);

    let mut group = c.benchmark_group("fig7a_decluster_window");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for window_kb in [4usize, 64, 256, 512, 2048, 8192] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{window_kb}KB")),
            &(window_kb * 1024),
            |b, &window_bytes| {
                b.iter(|| {
                    radix_decluster(&input.values, &input.positions, &input.bounds, window_bytes)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decluster_window);
criterion_main!(benches);
