//! Scaling bench for the `rdx-exec` morsel-driven engine: sequential
//! baselines vs. the parallel kernels at 1/2/4/8 worker threads.
//!
//! Three tiers: the Radix-Decluster kernel alone (the ISSUE's acceptance
//! gate: ≥ 4M tuples), the Radix-Cluster kernel, and the end-to-end parallel
//! DSM post-projection.  Absolute numbers depend on the host's core count —
//! on a single-core container the parallel runs measure scheduling overhead
//! only; on a multi-core host the decluster windows and cluster shards are
//! independent and scale with cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdx_bench::measure::make_decluster_input;
use rdx_cache::CacheParams;
use rdx_core::cluster::{radix_cluster_oids, RadixClusterSpec};
use rdx_core::decluster::{choose_window_bytes, radix_decluster};
use rdx_core::strategy::{DsmPostProjection, ProjectionCode, QuerySpec, SecondSideCode};
use rdx_dsm::Oid;
use rdx_exec::{par_dsm_post_projection, par_radix_cluster_oids, par_radix_decluster, ExecPolicy};
use rdx_workload::JoinWorkloadBuilder;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_decluster(c: &mut Criterion) {
    let n = 4_000_000;
    let bits = 10;
    let params = CacheParams::paper_pentium4();
    let input = make_decluster_input(n, bits, 3);
    let window = choose_window_bytes(4, 1 << bits, &params);

    let mut group = c.benchmark_group("parallel_scaling_decluster_4m");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
        b.iter(|| radix_decluster(&input.values, &input.positions, &input.bounds, window))
    });
    for threads in THREAD_COUNTS {
        let policy = ExecPolicy::with_threads(threads);
        let window = choose_window_bytes(4, 1 << bits, &params.per_core_share(threads));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &policy,
            |b, policy| {
                b.iter(|| {
                    par_radix_decluster(
                        &input.values,
                        &input.positions,
                        &input.bounds,
                        window,
                        policy,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_cluster(c: &mut Criterion) {
    let n = 4_000_000;
    let oids: Vec<Oid> = (0..n as Oid).rev().collect();
    let payload: Vec<Oid> = (0..n as Oid).collect();
    let spec = RadixClusterSpec::new(10, 1);

    let mut group = c.benchmark_group("parallel_scaling_cluster_4m");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
        b.iter(|| radix_cluster_oids(&oids, &payload, spec))
    });
    for threads in THREAD_COUNTS {
        let policy = ExecPolicy::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &policy,
            |b, policy| b.iter(|| par_radix_cluster_oids(&oids, &payload, spec, policy)),
        );
    }
    group.finish();
}

fn bench_parallel_strategy(c: &mut Criterion) {
    let w = JoinWorkloadBuilder::equal(1_000_000, 2).seed(7).build();
    let spec = QuerySpec::symmetric(2);
    let params = CacheParams::paper_pentium4();
    let plan =
        DsmPostProjection::with_codes(ProjectionCode::PartialCluster, SecondSideCode::Decluster);

    let mut group = c.benchmark_group("parallel_scaling_dsm_post_1m");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
        b.iter(|| plan.execute(&w.larger, &w.smaller, &spec, &params))
    });
    for threads in THREAD_COUNTS {
        let policy = ExecPolicy::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &policy,
            |b, policy| {
                b.iter(|| {
                    par_dsm_post_projection(&plan, &w.larger, &w.smaller, &spec, &params, policy)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_decluster,
    bench_parallel_cluster,
    bench_parallel_strategy
);
criterion_main!(benches);
