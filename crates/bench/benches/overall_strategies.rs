//! Criterion bench for Fig. 10: the six end-to-end projected-join strategies
//! on the same workload (N fixed, π = 4, h = 1:1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdx_bench::measure::{fig10_workload, run_overall_strategy, OverallStrategy};
use rdx_cache::CacheParams;
use rdx_core::strategy::QuerySpec;

fn bench_overall_strategies(c: &mut Criterion) {
    let params = CacheParams::paper_pentium4();
    let n = 125_000;
    let omega = 16;
    let workload = fig10_workload(n, omega, 1.0, 31);
    let spec = QuerySpec::symmetric(4);

    let mut group = c.benchmark_group("fig10_overall_strategies");
    group.sample_size(10);
    for strategy in OverallStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| b.iter(|| run_overall_strategy(strategy, &workload, &spec, &params)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overall_strategies);
criterion_main!(benches);
