//! Criterion bench for Fig. 11: sparse Clustered Positional-Join at three
//! selectivities (the join relation is a 100% / 10% / 1% selection of a
//! larger base table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdx_bench::measure::sparse_clustered_positional_ms;
use rdx_cache::CacheParams;

fn bench_sparse_positional(c: &mut Criterion) {
    let params = CacheParams::paper_pentium4();
    let selected = 250_000;
    let bits = 8;

    let mut group = c.benchmark_group("fig11_sparse_positional");
    group.sample_size(10);
    for (label, selectivity) in [("100pct", 1.0), ("10pct", 0.1), ("1pct", 0.01)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &selectivity, |b, &s| {
            b.iter(|| sparse_clustered_positional_ms(selected, s, bits, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_positional);
criterion_main!(benches);
