//! Ablation bench: single-pass vs. multi-pass Radix-Cluster (§2.2).
//!
//! The paper's argument for multi-pass clustering is that a single pass with
//! too many output cursors thrashes the TLB and caches; two passes of B/2 bits
//! each trade an extra sequential sweep for cache-resident cursor sets.  This
//! bench measures exactly that trade-off, plus the `w = 32` window-rule
//! ablation for Radix-Decluster (DESIGN.md calls both out as the design
//! choices worth ablating).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdx_bench::measure::make_decluster_input;
use rdx_cache::CacheParams;
use rdx_core::cluster::{radix_cluster_oids, RadixClusterSpec};
use rdx_core::decluster::radix_decluster;
use rdx_dsm::Oid;

fn bench_cluster_passes(c: &mut Criterion) {
    let n = 2_000_000;
    let oids: Vec<Oid> = (0..n as Oid).rev().collect();
    let payload: Vec<Oid> = (0..n as Oid).collect();

    let mut group = c.benchmark_group("ablation_cluster_passes");
    group.sample_size(10);
    for bits in [8u32, 14, 18] {
        for passes in [1u32, 2, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("bits_{bits}"), format!("passes_{passes}")),
                &(bits, passes),
                |b, &(bits, passes)| {
                    b.iter(|| {
                        radix_cluster_oids(&oids, &payload, RadixClusterSpec::new(bits, passes))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_window_rule(c: &mut Criterion) {
    // Ablation of the w ≥ 32 tuples-per-cluster-per-window rule: windows far
    // below the rule pay per-cluster start-up costs, far above it they exceed
    // the cache.
    let params = CacheParams::paper_pentium4();
    let n = 1_000_000;
    let bits = 10;
    let input = make_decluster_input(n, bits, 9);
    let clusters = 1usize << bits;

    let mut group = c.benchmark_group("ablation_window_rule");
    group.sample_size(10);
    for w_per_cluster in [2usize, 8, 32, 128] {
        let window_bytes = (w_per_cluster * clusters * 4).min(params.cache_capacity());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("w_{w_per_cluster}")),
            &window_bytes,
            |b, &window_bytes| {
                b.iter(|| {
                    radix_decluster(&input.values, &input.positions, &input.bounds, window_bytes)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_passes, bench_window_rule);
criterion_main!(benches);
