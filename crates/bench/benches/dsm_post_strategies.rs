//! Criterion bench for Fig. 8: the four DSM post-projection strategies
//! (u / s / c / d) at varying projectivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdx_bench::measure::dsm_post_projection_phase_ms;
use rdx_cache::CacheParams;

fn bench_dsm_post_strategies(c: &mut Criterion) {
    let n = 500_000;
    let params = CacheParams::paper_pentium4();

    let mut group = c.benchmark_group("fig8_dsm_post_strategies");
    group.sample_size(10);
    for pi in [1usize, 4, 16] {
        for code in ['u', 's', 'c', 'd'] {
            group.bench_with_input(
                BenchmarkId::new(format!("code_{code}"), pi),
                &(code, pi),
                |b, &(code, pi)| b.iter(|| dsm_post_projection_phase_ms(code, n, pi, &params)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dsm_post_strategies);
criterion_main!(benches);
