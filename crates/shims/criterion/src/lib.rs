//! # criterion (offline shim)
//!
//! The build environment has no access to crates.io, so this crate provides a
//! small, API-compatible stand-in for the subset of Criterion 0.5 that the
//! workspace benches use: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`] and [`Bencher::iter`].
//!
//! Methodology: each benchmark is warmed up once, then timed for
//! `sample_size` samples.  Very fast benchmarks are batched so that every
//! sample lasts at least ~1 ms.  The reported statistics are the minimum,
//! median and maximum per-iteration times, printed in a Criterion-like
//! format.  There is no statistical regression analysis and no HTML report —
//! the point is relative comparison in an offline environment.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum target duration of one timing sample; fast closures are batched
/// until a sample takes at least this long.
const MIN_SAMPLE: Duration = Duration::from_millis(1);

/// Top-level benchmark driver (a stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Builder-style default sample count for subsequently created groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(id, sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix, sample count and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id` with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Finishes the group (a reporting no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function/parameter`, either part optional.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Per-iteration work declaration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code under
/// test.
pub struct Bencher {
    /// Measured per-iteration durations, one per sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch calibration: make every sample last >= MIN_SAMPLE.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (MIN_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<60} (no samples: closure never called Bencher::iter)");
        return;
    }
    bencher.samples.sort_unstable();
    let lo = bencher.samples[0];
    let mid = bencher.samples[bencher.samples.len() / 2];
    let hi = *bencher.samples.last().unwrap();
    let mut line = format!(
        "{label:<60} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(mid),
        fmt_duration(hi)
    );
    if let Some(tp) = throughput {
        let per_sec = |work: u64| work as f64 / mid.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.3} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  thrpt: {:.3} MiB/s",
                    per_sec(n) / (1u64 << 20) as f64
                ));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("64KB").to_string(), "64KB");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn groups_run_and_collect_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut ran = 0usize;
        group.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, &x| {
            b.iter(|| x + 1);
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
