//! # rand (offline shim)
//!
//! The build environment has no access to crates.io, so this crate provides a
//! minimal, API-compatible stand-in for the parts of `rand` 0.8 the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is `xoshiro256**` seeded via SplitMix64 — high-quality and
//! fully deterministic, which is all the workload generators and tests need.
//! Streams do **not** bit-match the real `rand` crate; everything in this
//! workspace only relies on determinism, never on specific stream values.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core RNG interface: a source of uniform random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "cannot sample from an empty range");
        range.start + uniform_below(self, span)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform value in `[0, bound)` without modulo bias (rejection sampling on
/// the widening multiply, Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= low.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: `xoshiro256**`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as xoshiro's authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{uniform_below, RngCore};

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly using `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..1000).collect();
        v.shuffle(&mut StdRng::seed_from_u64(7));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        // And it actually moved things.
        assert_ne!(v, sorted);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }
}
