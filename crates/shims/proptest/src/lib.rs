//! # proptest (offline shim)
//!
//! The build environment has no access to crates.io, so this crate provides a
//! minimal, API-compatible stand-in for the subset of `proptest` 1.x that the
//! workspace tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, doc comments and
//!   `arg in strategy` bindings;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * integer range strategies (`0u32..50_000`) and
//!   [`collection::vec`] for vectors with a size range;
//! * [`test_runner::Config`] (`ProptestConfig::with_cases(n)`).
//!
//! Inputs are drawn uniformly from a deterministic RNG seeded from the test
//! name, so failures are reproducible.  There is **no shrinking**: a failing
//! case reports the case number and the assertion message only.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can produce values for a property test.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;
        /// Draws one value using `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as u128) - (self.start as u128);
                        let draw = (rng.next_u64() as u128) % span;
                        (self.start as u128 + draw) as $t
                    }
                }

                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range strategy");
                        let span = (end as u128) - (start as u128) + 1;
                        let draw = (rng.next_u64() as u128) % span;
                        (start as u128 + draw) as $t
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// The `Just` strategy: always produces a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The runner's configuration, RNG and failure type.

    /// Per-block configuration; `ProptestConfig` in the prelude.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property is checked with.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property case (no shrinking in the shim).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    /// Deterministic RNG (SplitMix64) seeded from the test name, so every run
    /// of a given test sees the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the generated tests pass their own
        /// function name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {:?} != {:?}: {}",
                            l,
                            r,
                            format!($($fmt)*)
                        ),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: both sides equal {:?}", l)
            }
        }
    };
}

/// The property-test macro: expands every contained function into a `#[test]`
/// that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )*
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds and vec sizes respect the range.
        #[test]
        fn ranges_and_vecs_are_in_bounds(
            x in 10u32..20,
            v in crate::collection::vec(0u64..5, 1..10),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            for e in &v {
                prop_assert!(*e < 5, "element {} out of range", e);
            }
        }

        #[test]
        fn equality_assertions_pass(a in 0usize..100) {
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }

    proptest! {
        /// The no-config form uses the default case count.
        #[test]
        fn default_config_form_works(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_sampling_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
