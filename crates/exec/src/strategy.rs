//! Parallel end-to-end projected-join strategies.
//!
//! These executors mirror the sequential phase structure of
//! [`rdx_core::strategy`] — join → reorder → project first side → project /
//! decluster second side — and report the same [`PhaseTimings`] fields, so
//! the figure harness can compare sequential and parallel runs phase by
//! phase.  Every phase runs on the morsel pool:
//!
//! * the **join** uses [`par_partitioned_hash_join`];
//! * the **reorder** uses the parallel cluster/sort kernels;
//! * the **positional joins** are morsel-parallel gathers into disjoint
//!   output chunks;
//! * the **decluster** runs one insertion-window range per worker, with the
//!   window sized to each core's *share* of the cache
//!   ([`CacheParams::per_core_share`]) — narrower than the sequential
//!   window, because `threads` workers now compete for the same last-level
//!   cache.
//!
//! Results are byte-identical to the sequential executors: each parallel
//! phase reproduces its sequential counterpart's output exactly (window size
//! affects only the access pattern, never the values).

use crate::cluster::{par_radix_cluster_oids_with_scratch, ParClusterScratch};
use crate::decluster::par_radix_decluster;
use crate::join::par_partitioned_hash_join;
use crate::pool::{for_each_output_morsel, ExecPolicy};
use rdx_cache::CacheParams;
use rdx_core::cluster::{
    plan_cluster_passes, plan_partial_cluster, RadixClusterSpec, OID_PAIR_BYTES,
};
use rdx_core::decluster::choose_window_bytes;
use rdx_core::hash::significant_bits;
use rdx_core::join::join_cluster_spec;
use rdx_core::strategy::{
    DsmPostProjection, PhaseTimings, ProjectionCode, QuerySpec, SecondSideCode, StrategyOutcome,
};
use rdx_dsm::{Column, DsmRelation, JoinIndex, Oid, ResultRelation};
use rdx_nsm::NsmRelation;
use std::time::Instant;

/// Width of the fixed-size attribute values (the paper's integer columns).
const VALUE_WIDTH: usize = 4;

/// Parallel [`rdx_core::strategy::common::order_join_index`]: reorders the
/// join index per the first-side code using the parallel cluster kernels.
pub fn par_order_join_index(
    join_index: &JoinIndex,
    code: ProjectionCode,
    first_cardinality: usize,
    value_width: usize,
    params: &CacheParams,
    policy: &ExecPolicy,
) -> (Vec<Oid>, Vec<Oid>) {
    match code {
        ProjectionCode::Unsorted => (join_index.larger().to_vec(), join_index.smaller().to_vec()),
        ProjectionCode::Sorted => {
            // Radix-Sort with passes and scatter mode from the same
            // `plan_cluster_passes` rule the cost planner prices.
            let bits = significant_bits(first_cardinality);
            let (passes, mode) = plan_cluster_passes(bits, OID_PAIR_BYTES, params);
            let sorted = par_radix_cluster_oids_with_scratch(
                join_index.larger(),
                join_index.smaller(),
                RadixClusterSpec::partial(bits, passes, 0),
                mode,
                policy,
                &mut ParClusterScratch::new(),
            );
            let (keys, payloads, _) = sorted.into_parts();
            (keys, payloads)
        }
        ProjectionCode::PartialCluster => {
            let (spec, mode) =
                plan_partial_cluster(first_cardinality, value_width, OID_PAIR_BYTES, params);
            let clustered = par_radix_cluster_oids_with_scratch(
                join_index.larger(),
                join_index.smaller(),
                spec,
                mode,
                policy,
                &mut ParClusterScratch::new(),
            );
            let (keys, payloads, _) = clustered.into_parts();
            (keys, payloads)
        }
    }
}

/// Morsel-parallel positional joins: projects `n_attrs` columns by gathering
/// `fetch(oids[r], attr)` for every result row `r`.
pub fn par_project_columns<F>(
    oids: &[Oid],
    n_attrs: usize,
    fetch: F,
    policy: &ExecPolicy,
) -> Vec<Vec<i32>>
where
    F: Fn(Oid, usize) -> i32 + Sync,
{
    let mut columns: Vec<Vec<i32>> = (0..n_attrs).map(|_| Vec::new()).collect();
    par_project_columns_into(oids, fetch, policy, &mut columns);
    columns
}

/// [`par_project_columns`] into reused column buffers: each of `columns` is
/// resized to `oids.len()` (keeping its capacity) and filled in place, so a
/// caller projecting chunk after chunk allocates nothing once the buffers
/// have grown — the streaming pipeline's steady state.  Column `b` is
/// filled with `fetch(oid, b)`.
pub fn par_project_columns_into<F>(
    oids: &[Oid],
    fetch: F,
    policy: &ExecPolicy,
    columns: &mut [Vec<i32>],
) where
    F: Fn(Oid, usize) -> i32 + Sync,
{
    for (attr, column) in columns.iter_mut().enumerate() {
        column.resize(oids.len(), 0);
        for_each_output_morsel(column, policy, |offset, chunk| {
            let oids = &oids[offset..offset + chunk.len()];
            for (slot, &oid) in chunk.iter_mut().zip(oids) {
                *slot = fetch(oid, attr);
            }
        });
    }
}

/// Parallel second-side Radix-Decluster pipeline (Fig. 4): parallel partial
/// cluster, morsel-parallel clustered positional join, parallel decluster.
/// The insertion window is sized to each worker's cache share.
pub fn par_project_second_side_decluster<F>(
    second_oids_in_result_order: &[Oid],
    n_attrs: usize,
    fetch: F,
    second_cardinality: usize,
    value_width: usize,
    params: &CacheParams,
    policy: &ExecPolicy,
) -> (Vec<Vec<i32>>, usize)
where
    F: Fn(Oid, usize) -> i32 + Sync,
{
    let n = second_oids_in_result_order.len();
    let (spec, mode) =
        plan_partial_cluster(second_cardinality, value_width, OID_PAIR_BYTES, params);
    let result_positions: Vec<Oid> = (0..n as Oid).collect();
    let clustered = par_radix_cluster_oids_with_scratch(
        second_oids_in_result_order,
        &result_positions,
        spec,
        mode,
        policy,
        &mut ParClusterScratch::new(),
    );
    let window = choose_window_bytes(
        value_width,
        clustered.num_clusters(),
        &params.per_core_share(policy.worker_threads()),
    );

    let columns = (0..n_attrs)
        .map(|attr| {
            let mut clust_values = vec![0i32; n];
            for_each_output_morsel(&mut clust_values, policy, |offset, chunk| {
                let len = chunk.len();
                let keys = &clustered.keys()[offset..offset + len];
                for (slot, &oid) in chunk.iter_mut().zip(keys) {
                    *slot = fetch(oid, attr);
                }
            });
            par_radix_decluster(
                &clust_values,
                clustered.payloads(),
                clustered.bounds(),
                window,
                policy,
            )
        })
        .collect();
    (columns, clustered.num_clusters())
}

/// Parallel DSM post-projection: the morsel-parallel counterpart of
/// [`DsmPostProjection::execute`], byte-identical results, same
/// [`PhaseTimings`] semantics.
///
/// # Panics
/// Panics if the query asks for more projection columns than a relation has.
pub fn par_dsm_post_projection(
    plan: &DsmPostProjection,
    larger: &DsmRelation,
    smaller: &DsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
    policy: &ExecPolicy,
) -> StrategyOutcome {
    assert!(
        spec.project_larger <= larger.width(),
        "larger side has too few columns"
    );
    assert!(
        spec.project_smaller <= smaller.width(),
        "smaller side has too few columns"
    );
    let mut timings = PhaseTimings::default();

    // Phase 1: join index over the key columns only.
    let t = Instant::now();
    let join_spec = join_cluster_spec(smaller.cardinality(), params.cache_capacity());
    let join_index = par_partitioned_hash_join(
        larger.key().as_slice(),
        smaller.key().as_slice(),
        join_spec,
        policy,
    );
    timings.join = t.elapsed();

    // Phase 2a: reorder for the first side.
    let t = Instant::now();
    let (first_oids, second_oids) = par_order_join_index(
        &join_index,
        plan.first_side,
        larger.cardinality(),
        VALUE_WIDTH,
        params,
        policy,
    );
    timings.reorder = t.elapsed();

    // Phase 2b: project the first side.
    let t = Instant::now();
    let first_columns = par_project_columns(
        &first_oids,
        spec.project_larger,
        |oid, a| larger.attr(a).value(oid as usize),
        policy,
    );
    timings.project_larger = t.elapsed();

    // Phase 3: project the second side.
    let t = Instant::now();
    let second_columns = match plan.second_side {
        SecondSideCode::Unsorted => {
            let cols = par_project_columns(
                &second_oids,
                spec.project_smaller,
                |oid, b| smaller.attr(b).value(oid as usize),
                policy,
            );
            timings.project_smaller = t.elapsed();
            cols
        }
        SecondSideCode::Decluster => {
            let (cols, _clusters) = par_project_second_side_decluster(
                &second_oids,
                spec.project_smaller,
                |oid, b| smaller.attr(b).value(oid as usize),
                smaller.cardinality(),
                VALUE_WIDTH,
                params,
                policy,
            );
            timings.decluster = t.elapsed();
            cols
        }
    };

    let mut result = ResultRelation::new();
    for col in first_columns.into_iter().chain(second_columns) {
        result.push_column(Column::from_vec(col));
    }
    StrategyOutcome { result, timings }
}

/// Parallel NSM post-projection with Radix-Decluster: the morsel-parallel
/// counterpart of [`rdx_core::strategy::nsm_post_projection_decluster`].
///
/// # Panics
/// Panics if the query asks for more projection columns than a relation has
/// beyond its key attribute.
pub fn par_nsm_post_projection_decluster(
    larger: &NsmRelation,
    smaller: &NsmRelation,
    spec: &QuerySpec,
    params: &CacheParams,
    policy: &ExecPolicy,
) -> StrategyOutcome {
    assert!(spec.project_larger < larger.width());
    assert!(spec.project_smaller < smaller.width());
    let mut timings = PhaseTimings::default();

    // Phase 1: scan the key attribute out of the wide records (morsel
    // parallel — the scan is the unavoidable NSM entry fee) and join.
    let t = Instant::now();
    let mut larger_keys = vec![0u64; larger.cardinality()];
    for_each_output_morsel(&mut larger_keys, policy, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = larger.key(offset + i);
        }
    });
    let mut smaller_keys = vec![0u64; smaller.cardinality()];
    for_each_output_morsel(&mut smaller_keys, policy, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = smaller.key(offset + i);
        }
    });
    let join_spec = join_cluster_spec(smaller.cardinality(), params.cache_capacity());
    let join_index = par_partitioned_hash_join(&larger_keys, &smaller_keys, join_spec, policy);
    timings.join = t.elapsed();

    // Phase 2: partial cluster on the larger oids; the effective value width
    // is the full record width, which is what a cache-line fetch drags in.
    let t = Instant::now();
    let (first_oids, second_oids) = par_order_join_index(
        &join_index,
        ProjectionCode::PartialCluster,
        larger.cardinality(),
        larger.tuple_bytes(),
        params,
        policy,
    );
    timings.reorder = t.elapsed();

    let t = Instant::now();
    let first_columns = par_project_columns(
        &first_oids,
        spec.project_larger,
        |oid, a| larger.value(oid as usize, a + 1),
        policy,
    );
    timings.project_larger = t.elapsed();

    let t = Instant::now();
    let (second_columns, _clusters) = par_project_second_side_decluster(
        &second_oids,
        spec.project_smaller,
        |oid, b| smaller.value(oid as usize, b + 1),
        smaller.cardinality(),
        smaller.tuple_bytes(),
        params,
        policy,
    );
    timings.decluster = t.elapsed();

    let mut result = ResultRelation::new();
    for col in first_columns.into_iter().chain(second_columns) {
        result.push_column(Column::from_vec(col));
    }
    StrategyOutcome { result, timings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_core::strategy::nsm_post_projection_decluster;
    use rdx_core::strategy::reference::{reference_rows, result_rows};
    use rdx_workload::JoinWorkloadBuilder;

    #[test]
    fn par_dsm_post_matches_sequential_for_all_codes() {
        let w = JoinWorkloadBuilder::equal(3_000, 2).seed(5).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        for first in [
            ProjectionCode::Unsorted,
            ProjectionCode::Sorted,
            ProjectionCode::PartialCluster,
        ] {
            for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
                let plan = DsmPostProjection::with_codes(first, second);
                let seq = plan.execute(&w.larger, &w.smaller, &spec, &params);
                for threads in [1usize, 4] {
                    let par = par_dsm_post_projection(
                        &plan,
                        &w.larger,
                        &w.smaller,
                        &spec,
                        &params,
                        &ExecPolicy::with_threads(threads),
                    );
                    assert_eq!(
                        result_rows(&par.result),
                        result_rows(&seq.result),
                        "codes {} threads {threads}",
                        plan.label()
                    );
                }
            }
        }
        let expected = reference_rows(&w.larger, &w.smaller, &spec);
        let plan = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        );
        let par = par_dsm_post_projection(
            &plan,
            &w.larger,
            &w.smaller,
            &spec,
            &params,
            &ExecPolicy::with_threads(8),
        );
        assert_eq!(result_rows(&par.result), expected);
    }

    #[test]
    fn par_nsm_post_matches_sequential() {
        let w = JoinWorkloadBuilder::equal(2_000, 3).seed(21).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let seq = nsm_post_projection_decluster(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
        for threads in [2usize, 8] {
            let par = par_nsm_post_projection_decluster(
                &w.larger_nsm,
                &w.smaller_nsm,
                &spec,
                &params,
                &ExecPolicy::with_threads(threads),
            );
            assert_eq!(
                result_rows(&par.result),
                result_rows(&seq.result),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn timings_are_populated() {
        let w = JoinWorkloadBuilder::equal(2_000, 1).build();
        let params = CacheParams::tiny_for_tests();
        let plan = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        );
        let out = par_dsm_post_projection(
            &plan,
            &w.larger,
            &w.smaller,
            &QuerySpec::symmetric(1),
            &params,
            &ExecPolicy::with_threads(2),
        );
        assert!(out.timings.total().as_nanos() > 0);
        assert!(out.timings.join.as_nanos() > 0);
    }
}
