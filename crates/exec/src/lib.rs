//! # rdx-exec — morsel-driven parallel execution engine
//!
//! The paper's kernels are embarrassingly partitionable: Radix-Cluster is a
//! stable counting sort (per-thread histograms merge with a prefix sum),
//! Radix-Decluster's insertion windows tile the result disjointly, and
//! Partitioned Hash-Join's partitions are independent by construction.  This
//! crate exploits that with a *morsel-driven* runtime in the style of
//! HyPer's morsel-driven parallelism: work is cut into contiguous tuple
//! ranges sized to each core's **share** of the cache, idle workers steal
//! the next morsel, and all mutation happens through disjoint `&mut` slices
//! (`split_at_mut` / `chunks_mut`) so the whole engine stays inside
//! `#![forbid(unsafe_code)]`.
//!
//! Layering:
//!
//! * [`pool`] — [`ExecPolicy`] (thread count + morsel size), scoped worker
//!   spawning, the work-stealing [`MorselQueue`], and safe disjoint-slice
//!   distribution helpers.
//! * [`cluster`] — parallel Radix-Cluster / Radix-Sort: per-thread local
//!   clustering, prefix-sum of per-thread histograms, parallel merge into
//!   cluster-border shards.  Byte-identical to the sequential kernels.
//! * [`decluster`] — parallel Radix-Decluster: independent insertion-window
//!   ranges per worker, cursors recovered by binary search.  Byte-identical
//!   to the sequential kernel.
//! * [`join`] — parallel Partitioned Hash-Join over independent partitions.
//! * [`pipeline`] — the memory-budgeted **streaming** projection pipeline:
//!   cluster → decluster → fetch in chunks sized by an explicit
//!   [`rdx_core::budget::MemoryBudget`], emitting through a
//!   [`rdx_core::strategy::RowChunkSink`] instead of materialising the
//!   result; byte-identical to the materialising executors.
//! * [`strategy`] — parallel end-to-end executors
//!   ([`par_dsm_post_projection`], [`par_nsm_post_projection_decluster`])
//!   that mirror the sequential phase structure and report the same
//!   [`rdx_core::strategy::PhaseTimings`].
//!
//! ## Thread count and the cost model
//!
//! `threads` workers share the last-level cache, so every per-core working
//! set — cluster sizes, insertion windows, hash-join build partitions — must
//! shrink to `C / threads`.  [`rdx_cache::CacheParams::per_core_share`]
//! encodes that, and `rdx_core::strategy::planner::plan_by_cost_with_threads`
//! feeds it to the Appendix-A cost model so the chosen codes adapt to the
//! core count, not just the cache size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod decluster;
pub mod join;
pub mod pipeline;
pub mod pool;
pub mod strategy;

pub use cluster::{
    par_radix_cluster, par_radix_cluster_oids, par_radix_cluster_oids_with_scratch,
    par_radix_cluster_with_scratch, par_radix_sort_oids, ParClusterScratch,
};
pub use decluster::{par_radix_decluster, par_radix_decluster_into};
pub use join::par_partitioned_hash_join;
pub use pipeline::{
    cluster_plan_for, cluster_spec_for, dsm_cluster_spec, BoxedFetch, ChunkScratch, DsmPipelineRun,
    PipelineRun, PipelineStats, PreparedProjection, ProjectionPipeline,
};
pub use pool::{ExecPolicy, MorselQueue, WorkerPanic};
pub use strategy::{par_dsm_post_projection, par_nsm_post_projection_decluster};
