//! Parallel Partitioned Hash-Join: the §2.1 algorithm with both the
//! clustering and the per-partition joins spread over workers.
//!
//! After (parallel) radix-clustering both inputs, the partitions are
//! independent: partition `p` of the larger side only ever joins partition
//! `p` of the smaller side.  Workers claim partitions morsel-style, emit
//! per-partition pair buffers, and the buffers are concatenated in partition
//! order — which is exactly the order the sequential loop emits, so the
//! resulting [`JoinIndex`] is byte-identical to
//! [`rdx_core::join::partitioned_hash_join`].

use crate::cluster::par_radix_cluster;
use crate::pool::{run_workers, ExecPolicy, MorselQueue};
use rdx_core::cluster::RadixClusterSpec;
use rdx_core::join::{partitioned_hash_join, HashTable};
use rdx_dsm::{JoinIndex, Oid};

/// Parallel Partitioned Hash-Join; byte-identical to the sequential
/// [`partitioned_hash_join`].
pub fn par_partitioned_hash_join(
    larger_keys: &[u64],
    smaller_keys: &[u64],
    spec: RadixClusterSpec,
    policy: &ExecPolicy,
) -> JoinIndex {
    if spec.bits == 0 || policy.worker_threads() == 1 {
        return partitioned_hash_join(larger_keys, smaller_keys, spec);
    }
    let larger_oids: Vec<Oid> = (0..larger_keys.len() as Oid).collect();
    let smaller_oids: Vec<Oid> = (0..smaller_keys.len() as Oid).collect();
    let larger = par_radix_cluster(larger_keys, &larger_oids, spec, policy);
    let smaller = par_radix_cluster(smaller_keys, &smaller_oids, spec, policy);

    // Workers claim partitions dynamically (join cost is highly skew
    // sensitive) and keep their pair buffers tagged by partition id.
    let queue = MorselQueue::new(spec.num_clusters(), 1);
    let mut tagged: Vec<(usize, Vec<(Oid, Oid)>)> = run_workers(policy.worker_threads(), |_| {
        let mut mine = Vec::new();
        while let Some(range) = queue.claim() {
            for p in range {
                let l_keys = larger.cluster_keys(p);
                let s_keys = smaller.cluster_keys(p);
                if l_keys.is_empty() || s_keys.is_empty() {
                    continue;
                }
                let l_oids = larger.cluster_payloads(p);
                let s_oids = smaller.cluster_payloads(p);
                let table = HashTable::build(s_keys);
                let mut pairs = Vec::new();
                for (i, &key) in l_keys.iter().enumerate() {
                    for pos in table.probe_matches(key, s_keys) {
                        pairs.push((l_oids[i], s_oids[pos as usize]));
                    }
                }
                mine.push((p, pairs));
            }
        }
        mine
    })
    .into_iter()
    .flatten()
    .collect();

    // Concatenate in partition order — the sequential emission order.
    tagged.sort_unstable_by_key(|(p, _)| *p);
    let mut out = JoinIndex::with_capacity(tagged.iter().map(|(_, v)| v.len()).sum());
    for (_, pairs) in tagged {
        for (l, s) in pairs {
            out.push(l, s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, domain: u64, seed: u64) -> Vec<u64> {
        (0..n as u64)
            .map(|i| {
                i.wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    .rotate_left(17)
                    % domain
            })
            .collect()
    }

    #[test]
    fn parallel_join_is_byte_identical_to_sequential() {
        let larger = keys(5_000, 2_000, 1);
        let smaller = keys(2_000, 2_000, 2);
        for bits in [1u32, 4, 7] {
            let spec = RadixClusterSpec::new(bits, 1);
            let expected = partitioned_hash_join(&larger, &smaller, spec);
            for threads in [2usize, 4, 8] {
                let got = par_partitioned_hash_join(
                    &larger,
                    &smaller,
                    spec,
                    &ExecPolicy::with_threads(threads),
                );
                assert_eq!(
                    got.larger(),
                    expected.larger(),
                    "bits={bits} threads={threads}"
                );
                assert_eq!(
                    got.smaller(),
                    expected.smaller(),
                    "bits={bits} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn zero_bits_falls_back_to_sequential() {
        let larger = keys(100, 40, 3);
        let smaller = keys(90, 40, 4);
        let spec = RadixClusterSpec::single_pass(0);
        let seq = partitioned_hash_join(&larger, &smaller, spec);
        let par = par_partitioned_hash_join(&larger, &smaller, spec, &ExecPolicy::with_threads(4));
        assert_eq!(par.larger(), seq.larger());
        assert_eq!(par.smaller(), seq.smaller());
    }
}
