//! The morsel-driven scheduling substrate: scoped worker threads, a
//! work-stealing morsel queue, and safe disjoint-slice distribution.
//!
//! The design follows the morsel-driven query execution model: work is cut
//! into *morsels* — contiguous tuple ranges small enough that a worker's
//! footprint stays inside its per-core cache share — and idle workers pull
//! the next morsel from a shared cursor, so load balances dynamically without
//! any work-item ever being split.  All parallelism is expressed with
//! `std::thread::scope` plus `split_at_mut`-style slice partitioning, so the
//! whole engine stays inside `#![forbid(unsafe_code)]`.

use rdx_core::budget::MemoryBudget;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default morsel granularity in tuples: large enough that queue traffic is
/// noise, small enough that a 4-byte-value morsel sits well inside a per-core
/// L2 share.
pub const DEFAULT_MORSEL_TUPLES: usize = 16 * 1024;

/// How a parallel kernel should run: worker count and morsel granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Number of worker threads; `1` means run inline (no spawning) and `0`
    /// means auto-detect — resolve to the host's available parallelism at
    /// kernel entry (see [`ExecPolicy::worker_threads`]).
    pub threads: usize,
    /// Morsel size in tuples for dynamically scheduled loops.
    pub morsel_tuples: usize,
    /// Memory budget for streaming executors (`rdx_exec::pipeline`): caps the
    /// per-chunk working set of value data.  Ignored by the materialising
    /// kernels; defaults to unbounded.
    pub budget: MemoryBudget,
}

impl ExecPolicy {
    /// A policy running on exactly `threads` workers; `0` requests
    /// auto-detection (one worker per hardware thread, clamped to at least
    /// one on hosts where parallelism cannot be queried).
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads,
            morsel_tuples: DEFAULT_MORSEL_TUPLES,
            budget: MemoryBudget::unbounded(),
        }
    }

    /// The worker count kernels must actually use: `threads`, with `0`
    /// resolved to the host's available parallelism (never below one).
    /// Every kernel in this crate reads the policy through this method, so a
    /// zero-thread policy — built via [`ExecPolicy::with_threads`] or as a
    /// plain struct literal — degrades to auto-detection instead of
    /// panicking.
    pub fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            detected_parallelism()
        } else {
            self.threads
        }
    }

    /// The sequential policy: one worker, everything runs inline.
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// One worker per hardware thread the host exposes.
    pub fn available() -> Self {
        Self::with_threads(detected_parallelism())
    }

    /// Overrides the morsel granularity.
    ///
    /// # Panics
    /// Panics if `morsel_tuples == 0`.
    pub fn morsel_tuples(mut self, morsel_tuples: usize) -> Self {
        assert!(morsel_tuples >= 1, "morsels must hold at least one tuple");
        self.morsel_tuples = morsel_tuples;
        self
    }

    /// Sets the streaming memory budget.
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self::available()
    }
}

/// The host's available parallelism — one worker if it cannot be queried
/// (the auto-detect resolution of `threads == 0`).
pub fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A lock-free work-stealing queue over the index range `0..len`: workers
/// claim morsels (disjoint contiguous subranges) until the range is drained.
#[derive(Debug)]
pub struct MorselQueue {
    next: AtomicUsize,
    len: usize,
    morsel: usize,
}

impl MorselQueue {
    /// A queue over `0..len` handing out morsels of at most `morsel` indices.
    ///
    /// # Panics
    /// Panics if `morsel == 0`.
    pub fn new(len: usize, morsel: usize) -> Self {
        assert!(morsel >= 1, "morsels must hold at least one index");
        MorselQueue {
            next: AtomicUsize::new(0),
            len,
            morsel,
        }
    }

    /// Claims the next unprocessed morsel, or `None` when the queue is dry.
    pub fn claim(&self) -> Option<Range<usize>> {
        // `fetch_add` past `len` is harmless: every overshooting claimer sees
        // `start >= len` and gives up.
        let start = self.next.fetch_add(self.morsel, Ordering::Relaxed);
        if start >= self.len {
            None
        } else {
            Some(start..(start + self.morsel).min(self.len))
        }
    }
}

/// A caught worker panic: which worker's unwind the pool intercepted.
///
/// [`try_run_workers`] returns this instead of aborting the pool, and
/// [`run_workers`] re-raises it via [`std::panic::panic_any`] so upstream
/// unwind-catchers (the serving engine's per-chunk isolation) can downcast
/// the payload back to the worker index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Zero-based index of the worker that panicked (the lowest-indexed one
    /// when several panicked in the same scope).
    pub worker: usize,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rdx-exec worker {} panicked", self.worker)
    }
}

impl std::error::Error for WorkerPanic {}

/// Runs `worker(worker_index)` on `threads` scoped threads, catching worker
/// unwinds: `Ok` carries the per-worker results in worker order, `Err`
/// reports the first worker (by index) that panicked.  With `threads == 1`
/// the closure runs inline on the caller's thread, its unwind caught the
/// same way, so the panic surface is identical at every thread count.
pub fn try_run_workers<R, F>(threads: usize, worker: F) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads >= 1, "at least one worker thread is required");
    if threads == 1 {
        return match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker(0))) {
            Ok(r) => Ok(vec![r]),
            Err(_) => Err(WorkerPanic { worker: 0 }),
        };
    }
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || worker(t)))
            .collect();
        // Join *every* handle before reporting, so no worker outlives the
        // scope and the first panicking worker (by index) wins.
        let mut results = Vec::with_capacity(threads);
        let mut panicked: Option<usize> = None;
        for (t, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results.push(r),
                Err(_) => panicked = panicked.or(Some(t)),
            }
        }
        match panicked {
            None => Ok(results),
            Some(worker) => Err(WorkerPanic { worker }),
        }
    })
}

/// Runs `worker(worker_index)` on `threads` scoped threads and returns the
/// per-worker results in worker order.  With `threads == 1` the closure runs
/// inline on the caller's thread.
///
/// # Panics
/// If a worker panics, re-raises the failure as a [`WorkerPanic`] payload
/// (via [`std::panic::panic_any`]) after all workers have been joined —
/// callers that need to survive worker crashes use [`try_run_workers`] or
/// catch the unwind and downcast the payload.
pub fn run_workers<R, F>(threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match try_run_workers(threads, worker) {
        Ok(results) => results,
        Err(wp) => std::panic::panic_any(wp),
    }
}

/// Morsel-driven parallel fill of an output slice: `fill(offset, chunk)` is
/// called for disjoint chunks of at most `policy.morsel_tuples` elements,
/// where `offset` is the chunk's start index in `out`.  Chunks are claimed
/// dynamically by idle workers (work stealing), so skew in per-chunk cost
/// balances out.
pub fn for_each_output_morsel<T, F>(out: &mut [T], policy: &ExecPolicy, fill: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let morsel = policy.morsel_tuples;
    let threads = policy.worker_threads();
    if threads == 1 || out.len() <= morsel {
        for (i, chunk) in out.chunks_mut(morsel).enumerate() {
            fill(i * morsel, chunk);
        }
        return;
    }
    // `chunks_mut` hands out disjoint `&mut` shards; the Mutex only guards
    // the *iterator*, never the data, so workers hold the lock for one
    // `next()` call and compute unlocked.
    let queue = Mutex::new(out.chunks_mut(morsel).enumerate());
    run_workers(threads, |_| loop {
        let claimed = queue.lock().expect("morsel queue poisoned").next();
        match claimed {
            Some((i, chunk)) => fill(i * morsel, chunk),
            None => break,
        }
    });
}

/// Splits `data` into the `H` disjoint `&mut` shards described by `bounds`
/// (`H + 1` ascending offsets covering `data`), e.g. the cluster borders of a
/// [`rdx_core::cluster::Clustered`].
///
/// # Panics
/// Panics if the bounds are not ascending or do not cover `data` exactly.
pub fn split_by_bounds<'a, T>(mut data: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    assert!(!bounds.is_empty(), "bounds need at least one offset");
    assert_eq!(
        bounds[bounds.len() - 1],
        data.len(),
        "bounds must cover the data"
    );
    let mut shards = Vec::with_capacity(bounds.len() - 1);
    let mut prev = bounds[0];
    assert_eq!(prev, 0, "bounds must start at zero");
    for &b in &bounds[1..] {
        let (head, tail) = data.split_at_mut(b - prev);
        shards.push(head);
        data = tail;
        prev = b;
    }
    shards
}

/// Cuts `0..n` into `parts` contiguous near-equal ranges (some possibly
/// empty when `parts > n`).
pub fn partition_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    (0..parts)
        .map(|p| n * p / parts..n * (p + 1) / parts)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn morsel_queue_covers_range_exactly_once() {
        let q = MorselQueue::new(1000, 64);
        let claims = run_workers(4, |_| {
            let mut mine = Vec::new();
            while let Some(r) = q.claim() {
                mine.push(r);
            }
            mine
        });
        let mut seen = HashSet::new();
        for r in claims.into_iter().flatten() {
            for i in r {
                assert!(seen.insert(i), "index {i} claimed twice");
            }
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn morsel_fill_writes_every_slot() {
        let policy = ExecPolicy::with_threads(4).morsel_tuples(13);
        let mut out = vec![0usize; 10_007];
        for_each_output_morsel(&mut out, &policy, |off, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = off + i + 1;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i + 1);
        }
    }

    #[test]
    fn run_workers_preserves_worker_order() {
        let calls = AtomicUsize::new(0);
        let ids = run_workers(8, |w| {
            calls.fetch_add(1, Ordering::Relaxed);
            w * 10
        });
        assert_eq!(ids, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(calls.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_panic_is_caught_not_fatal() {
        // A real panicking worker on a real multi-thread scope: the pool
        // joins every handle and reports the panicking worker's index.
        let err = try_run_workers(4, |w| {
            if w == 2 {
                panic!("scripted worker crash");
            }
            w
        })
        .unwrap_err();
        assert_eq!(err, WorkerPanic { worker: 2 });
        assert!(err.to_string().contains("worker 2"));
        // The inline single-thread path catches the same way.
        let err = try_run_workers(1, |_| -> usize { panic!("inline crash") }).unwrap_err();
        assert_eq!(err.worker, 0);
        // Healthy workers still come back in order through the Ok arm.
        assert_eq!(try_run_workers(3, |w| w * 2), Ok(vec![0, 2, 4]));
        // run_workers re-raises as a downcastable WorkerPanic payload.
        let unwind = std::panic::catch_unwind(|| run_workers(2, |w| -> usize { panic!("w{w}") }))
            .unwrap_err();
        let wp = unwind.downcast_ref::<WorkerPanic>();
        assert!(wp.is_some(), "payload must downcast to WorkerPanic");
        assert_eq!(wp.map(|w| w.worker), Some(0));
    }

    #[test]
    fn split_by_bounds_yields_disjoint_covering_shards() {
        let mut data: Vec<u32> = (0..10).collect();
        let shards = split_by_bounds(&mut data, &[0, 3, 3, 7, 10]);
        let lens: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![3, 0, 4, 3]);
        assert_eq!(shards[2], &[3, 4, 5, 6]);
    }

    #[test]
    fn partition_ranges_cover_and_are_contiguous() {
        for (n, parts) in [(10, 3), (0, 4), (5, 8), (1000, 7)] {
            let ranges = partition_ranges(n, parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[parts - 1].end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn zero_threads_means_auto_detect() {
        let policy = ExecPolicy::with_threads(0);
        assert_eq!(policy.threads, 0);
        assert!(policy.worker_threads() >= 1);
        assert_eq!(policy.worker_threads(), detected_parallelism());
        // Explicit counts pass through unchanged.
        assert_eq!(ExecPolicy::with_threads(3).worker_threads(), 3);
        // A zero-thread struct literal resolves the same way.
        let literal = ExecPolicy {
            threads: 0,
            morsel_tuples: 8,
            budget: MemoryBudget::unbounded(),
        };
        assert_eq!(literal.worker_threads(), detected_parallelism());
    }
}
