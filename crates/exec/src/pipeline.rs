//! The memory-budgeted **streaming projection pipeline** — cluster →
//! decluster → fetch in chunks sized by an explicit [`MemoryBudget`].
//!
//! Every other executor in the workspace (sequential and parallel)
//! materialises the full projected relation: `O(N · π)` value bytes live in
//! RAM at once, plus a full `CLUST_VALUES` staging column per projected
//! attribute.  That forfeits the paper's own regime of interest — bounded
//! fast memory — one level up the hierarchy.  This pipeline instead streams
//! the result through a [`RowChunkSink`] in contiguous chunks:
//!
//! 1. **join** and **reorder** run exactly as in
//!    [`crate::strategy::par_dsm_post_projection`] (the join index and the
//!    clustered oid/position arrays are the `8 N`-byte irreducible floor, the
//!    Fig. 4 `CLUST_SMALLER`/`CLUST_RESULT` analogue);
//! 2. the result rows are cut into chunks of
//!    [`StreamingPlan::chunk_rows`] = `budget / bytes_per_row` rows;
//! 3. per chunk, [`ChunkCursors`] advances one cursor per cluster
//!    (§3.2's ascending-within-cluster property makes every result prefix a
//!    prefix of every cluster), attribute values are fetched **on demand**
//!    from the base relations into a chunk-local `CLUST_VALUES`, declustered
//!    by the unchanged windowed kernel — morsel-parallel across insertion
//!    windows — and emitted;
//! 4. the sink decides what full-result memory (if any) to pay:
//!    [`MaterializeSink`] rebuilds the materialising executors' output byte
//!    for byte, [`rdx_core::strategy::PagedSink`] spools to buffer-manager
//!    pages (§5).
//!
//! The output is **byte-identical** to [`DsmPostProjection::execute`] with
//! the same codes for every budget, because chunking changes only *when* a
//! result row is produced, never its value or position: each chunk is a
//! self-contained Radix-Decluster problem over rebased positions
//! (`rdx_core::decluster::chunks`).

use crate::cluster::par_radix_cluster_oids;
use crate::decluster::par_radix_decluster;
use crate::join::par_partitioned_hash_join;
use crate::pool::{for_each_output_morsel, ExecPolicy};
use crate::strategy::{par_order_join_index, par_project_columns};
use rdx_cache::CacheParams;
use rdx_core::cluster::Clustered;
use rdx_core::decluster::chunks::ChunkCursors;
use rdx_core::join::join_cluster_spec;
use rdx_core::strategy::planner::{plan_streaming, StreamingPlan};
use rdx_core::strategy::sink::{MaterializeSink, RowChunkSink};
use rdx_core::strategy::{
    DsmPostProjection, PhaseTimings, QuerySpec, SecondSideCode, StrategyOutcome,
};
use rdx_dsm::{DsmRelation, Oid};
use rdx_nsm::NsmRelation;
use std::time::Instant;

/// Width of the fixed-size attribute values (the paper's integer columns).
const VALUE_WIDTH: usize = 4;

/// A planned streaming projection: the `u/s/c × u/d` codes of the underlying
/// DSM post-projection plus chunking derived from the policy's
/// [`MemoryBudget`] at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionPipeline {
    /// Projection codes, as for [`DsmPostProjection`].
    pub plan: DsmPostProjection,
}

/// What one pipeline run did: the chunking it planned, what it actually
/// emitted, and the measured peak chunk working set (value data only; the
/// fixed `8 N`-byte index floor is excluded, matching what
/// [`rdx_core::strategy::planner::streaming_bytes_per_row`] prices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineStats {
    /// The chunking the planner derived from the budget.
    pub streaming: StreamingPlan,
    /// Chunks handed to the sink.
    pub chunks_emitted: usize,
    /// Total result rows handed to the sink.
    pub rows_emitted: usize,
    /// Largest per-chunk working set observed, in bytes.
    pub peak_chunk_bytes: usize,
    /// Phase wall-clock breakdown ([`PhaseTimings`] semantics; chunked
    /// phases accumulate across chunks).
    pub timings: PhaseTimings,
}

impl ProjectionPipeline {
    /// A pipeline running the given projection codes.
    pub fn new(plan: DsmPostProjection) -> Self {
        ProjectionPipeline { plan }
    }

    /// A pipeline with the cost-model-planned codes for this workload and
    /// thread count (`plan_by_cost_with_threads`).
    pub fn planned(
        larger: &DsmRelation,
        smaller: &DsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
    ) -> Self {
        Self::new(rdx_core::strategy::planner::plan_by_cost_with_threads(
            larger,
            smaller,
            spec,
            params,
            policy.worker_threads(),
        ))
    }

    /// Executes over DSM relations, streaming the result into `sink`.
    ///
    /// # Panics
    /// Panics if the query asks for more projection columns than a relation
    /// has.
    pub fn execute(
        &self,
        larger: &DsmRelation,
        smaller: &DsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
        sink: &mut dyn RowChunkSink,
    ) -> PipelineStats {
        assert!(
            spec.project_larger <= larger.width(),
            "larger side has too few columns"
        );
        assert!(
            spec.project_smaller <= smaller.width(),
            "smaller side has too few columns"
        );
        self.execute_with(
            larger.key().as_slice(),
            smaller.key().as_slice(),
            larger.cardinality(),
            smaller.cardinality(),
            VALUE_WIDTH,
            |oid, a| larger.attr(a).value(oid as usize),
            |oid, b| smaller.attr(b).value(oid as usize),
            spec,
            params,
            policy,
            sink,
        )
    }

    /// Executes over NSM relations (attribute 0 is the join key), streaming
    /// the result into `sink`.
    ///
    /// # Panics
    /// Panics if the query asks for more projection columns than a relation
    /// has beyond its key attribute.
    pub fn execute_nsm(
        &self,
        larger: &NsmRelation,
        smaller: &NsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
        sink: &mut dyn RowChunkSink,
    ) -> PipelineStats {
        assert!(spec.project_larger < larger.width());
        assert!(spec.project_smaller < smaller.width());
        // The unavoidable NSM entry fee: scan the key attribute out of the
        // wide records (morsel parallel, as in the materialising executor).
        let scan = Instant::now();
        let mut larger_keys = vec![0u64; larger.cardinality()];
        for_each_output_morsel(&mut larger_keys, policy, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = larger.key(offset + i);
            }
        });
        let mut smaller_keys = vec![0u64; smaller.cardinality()];
        for_each_output_morsel(&mut smaller_keys, policy, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = smaller.key(offset + i);
            }
        });
        let scan_time = scan.elapsed();
        let mut stats = self.execute_with(
            &larger_keys,
            &smaller_keys,
            larger.cardinality(),
            smaller.cardinality(),
            // A cache-line fetch from an NSM relation drags the full record
            // in, so the clustering granularity must be sized to the record
            // width (exactly as par_nsm_post_projection_decluster does).
            smaller.tuple_bytes(),
            |oid, a| larger.value(oid as usize, a + 1),
            |oid, b| smaller.value(oid as usize, b + 1),
            spec,
            params,
            policy,
            sink,
        );
        stats.timings.join += scan_time;
        stats
    }

    /// Convenience: streams into a [`MaterializeSink`] and returns the
    /// materialised [`StrategyOutcome`] — the drop-in replacement for
    /// [`DsmPostProjection::execute`] used by agreement tests.
    pub fn execute_materialized(
        &self,
        larger: &DsmRelation,
        smaller: &DsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
    ) -> (StrategyOutcome, PipelineStats) {
        let mut sink = MaterializeSink::new();
        let stats = self.execute(larger, smaller, spec, params, policy, &mut sink);
        (
            StrategyOutcome {
                result: sink.into_result(),
                timings: stats.timings,
            },
            stats,
        )
    }

    /// The storage-model-generic pipeline body.
    #[allow(clippy::too_many_arguments)]
    fn execute_with<FL, FS>(
        &self,
        larger_keys: &[u64],
        smaller_keys: &[u64],
        larger_cardinality: usize,
        smaller_cardinality: usize,
        smaller_value_width: usize,
        fetch_larger: FL,
        fetch_smaller: FS,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
        sink: &mut dyn RowChunkSink,
    ) -> PipelineStats
    where
        FL: Fn(Oid, usize) -> i32 + Sync,
        FS: Fn(Oid, usize) -> i32 + Sync,
    {
        let mut timings = PhaseTimings::default();
        // Resolve an auto-detect (threads = 0) policy once, so the chunk
        // loop never re-queries the host's parallelism per morsel fill.
        let policy = &ExecPolicy {
            threads: policy.worker_threads(),
            ..*policy
        };

        // Phase 1: join index over the key columns only.
        let t = Instant::now();
        let join_spec = join_cluster_spec(smaller_cardinality, params.cache_capacity());
        let join_index = par_partitioned_hash_join(larger_keys, smaller_keys, join_spec, policy);
        timings.join = t.elapsed();

        // Phase 2: reorder for the first side (determines the result order).
        let t = Instant::now();
        let (first_oids, second_oids) = par_order_join_index(
            &join_index,
            self.plan.first_side,
            larger_cardinality,
            VALUE_WIDTH,
            params,
            policy,
        );
        timings.reorder = t.elapsed();
        drop(join_index);

        let n = first_oids.len();
        let streaming = plan_streaming(
            n,
            smaller_cardinality,
            smaller_value_width,
            spec,
            params,
            policy.budget,
            policy.threads,
        );

        // Second-side partial clustering (the 8 N-byte CLUST_SMALLER /
        // CLUST_RESULT floor the chunks stream over), run on exactly the
        // clustering the plan priced (`StreamingPlan::cluster_spec` is the
        // single source of truth).  Counted as decluster time, matching
        // project_second_side_decluster.
        let t = Instant::now();
        let clustered: Option<Clustered<Oid, Oid>> = match self.plan.second_side {
            SecondSideCode::Decluster => {
                let result_positions: Vec<Oid> = (0..n as Oid).collect();
                Some(par_radix_cluster_oids(
                    &second_oids,
                    &result_positions,
                    streaming.cluster_spec,
                    policy,
                ))
            }
            SecondSideCode::Unsorted => None,
        };
        timings.decluster += t.elapsed();

        let mut cursors = clustered
            .as_ref()
            .map(|c| ChunkCursors::new(c.payloads(), c.bounds()));

        sink.begin(n, spec.total());
        let mut emitted = 0usize;
        let mut chunks_emitted = 0usize;
        let mut peak_chunk_bytes = 0usize;
        while emitted < n {
            let chunk_end = (emitted + streaming.chunk_rows).min(n);
            let rows = chunk_end - emitted;
            let mut columns: Vec<Vec<i32>> = Vec::with_capacity(spec.total());
            let mut chunk_bytes = rows * spec.total() * VALUE_WIDTH;

            // First side: morsel-parallel gather straight into the chunk.
            let t = Instant::now();
            columns.extend(par_project_columns(
                &first_oids[emitted..chunk_end],
                spec.project_larger,
                &fetch_larger,
                policy,
            ));
            timings.project_larger += t.elapsed();

            // Second side.
            let t = Instant::now();
            match (&clustered, &mut cursors) {
                (Some(clustered), Some(cursors)) => {
                    let chunk = cursors.next_chunk(chunk_end);
                    debug_assert_eq!(chunk.result_range, emitted..chunk_end);
                    // Chunk-local CLUST_SMALLER / CLUST_RESULT, shared by all
                    // smaller-side columns of this chunk.
                    let local_oids = chunk.gather(clustered.keys());
                    let local_positions = chunk.rebased_positions(clustered.payloads());
                    let local_bounds = chunk.local_bounds();
                    chunk_bytes += (local_oids.len() + local_positions.len()) * VALUE_WIDTH;
                    let mut staged = vec![0i32; rows];
                    chunk_bytes += staged.len() * VALUE_WIDTH;
                    for b in 0..spec.project_smaller {
                        // On-demand clustered positional join: the chunk's
                        // CLUST_VALUES, never the whole column.
                        for_each_output_morsel(&mut staged, policy, |off, slots| {
                            let oids = &local_oids[off..off + slots.len()];
                            for (slot, &oid) in slots.iter_mut().zip(oids) {
                                *slot = fetch_smaller(oid, b);
                            }
                        });
                        columns.push(par_radix_decluster(
                            &staged,
                            &local_positions,
                            &local_bounds,
                            streaming.window_bytes,
                            policy,
                        ));
                    }
                    timings.decluster += t.elapsed();
                }
                _ => {
                    columns.extend(par_project_columns(
                        &second_oids[emitted..chunk_end],
                        spec.project_smaller,
                        &fetch_smaller,
                        policy,
                    ));
                    timings.project_smaller += t.elapsed();
                }
            }

            peak_chunk_bytes = peak_chunk_bytes.max(chunk_bytes);
            sink.emit(emitted, &columns);
            chunks_emitted += 1;
            emitted = chunk_end;
        }
        sink.finish();

        PipelineStats {
            streaming,
            chunks_emitted,
            rows_emitted: emitted,
            peak_chunk_bytes,
            timings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_core::budget::MemoryBudget;
    use rdx_core::strategy::sink::CountingSink;
    use rdx_core::strategy::ProjectionCode;
    use rdx_workload::JoinWorkloadBuilder;

    fn raw_columns(outcome: &StrategyOutcome) -> Vec<Vec<i32>> {
        outcome
            .result
            .columns()
            .iter()
            .map(|c| c.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn streaming_is_byte_identical_to_dsm_post_for_every_code_and_budget() {
        let w = JoinWorkloadBuilder::equal(3_000, 2).seed(7).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let data_bytes = 2 * 3_000 * 2 * VALUE_WIDTH;
        for first in [
            ProjectionCode::Unsorted,
            ProjectionCode::Sorted,
            ProjectionCode::PartialCluster,
        ] {
            for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
                let plan = DsmPostProjection::with_codes(first, second);
                let expected = raw_columns(&plan.execute(&w.larger, &w.smaller, &spec, &params));
                for denom in [1usize, 16, 64] {
                    let policy = ExecPolicy::with_threads(2)
                        .budget(MemoryBudget::fraction_of(data_bytes, denom));
                    let (out, stats) = ProjectionPipeline::new(plan)
                        .execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
                    assert_eq!(
                        raw_columns(&out),
                        expected,
                        "codes {} denom {denom}",
                        plan.label()
                    );
                    assert_eq!(stats.rows_emitted, w.expected_matches);
                    if denom > 1 {
                        assert!(stats.chunks_emitted > 1, "denom {denom} did not chunk");
                    }
                }
            }
        }
    }

    #[test]
    fn peak_working_set_respects_the_budget() {
        let w = JoinWorkloadBuilder::equal(4_096, 1).seed(3).build();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let plan = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        );
        for budget_bytes in [512usize, 4 * 1024, 64 * 1024] {
            let policy = ExecPolicy::with_threads(2).budget(MemoryBudget::bytes(budget_bytes));
            let mut sink = CountingSink::new(MaterializeSink::new());
            let stats = ProjectionPipeline::new(plan)
                .execute(&w.larger, &w.smaller, &spec, &params, &policy, &mut sink);
            assert!(
                stats.peak_chunk_bytes <= stats.streaming.max_working_set_bytes(),
                "budget {budget_bytes}: peak {} exceeds planned bound {}",
                stats.peak_chunk_bytes,
                stats.streaming.max_working_set_bytes()
            );
            assert!(
                stats.peak_chunk_bytes <= budget_bytes,
                "budget {budget_bytes}: peak {}",
                stats.peak_chunk_bytes
            );
            assert_eq!(sink.chunks, stats.chunks_emitted);
            assert_eq!(
                sink.max_chunk_rows,
                stats.streaming.chunk_rows.min(sink.rows)
            );
        }
    }

    #[test]
    fn nsm_streaming_matches_dsm_streaming() {
        let w = JoinWorkloadBuilder::equal(1_500, 2).seed(19).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let plan = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        );
        let policy = ExecPolicy::with_threads(2).budget(MemoryBudget::bytes(2048));
        let pipeline = ProjectionPipeline::new(plan);
        let (dsm_out, _) =
            pipeline.execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
        let mut sink = MaterializeSink::new();
        pipeline.execute_nsm(
            &w.larger_nsm,
            &w.smaller_nsm,
            &spec,
            &params,
            &policy,
            &mut sink,
        );
        assert_eq!(raw_columns(&dsm_out), {
            let nsm_result = sink.into_result();
            nsm_result
                .columns()
                .iter()
                .map(|c| c.as_slice().to_vec())
                .collect::<Vec<_>>()
        });
    }

    #[test]
    fn empty_join_emits_no_chunks() {
        use rdx_dsm::Column;
        // Disjoint key domains by construction: the join is empty.
        let rel = |base: u64| {
            rdx_dsm::DsmRelation::new(
                Column::from_vec((base..base + 64).collect()),
                vec![Column::from_vec((0..64).collect())],
            )
        };
        let (larger, smaller) = (rel(1_000), rel(0));
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let policy = ExecPolicy::with_threads(2).budget(MemoryBudget::bytes(256));
        let plan =
            DsmPostProjection::with_codes(ProjectionCode::Unsorted, SecondSideCode::Decluster);
        let (out, stats) = ProjectionPipeline::new(plan)
            .execute_materialized(&larger, &smaller, &spec, &params, &policy);
        assert_eq!(stats.chunks_emitted, 0);
        assert_eq!(stats.rows_emitted, 0);
        assert_eq!(out.result.cardinality(), 0);
        assert_eq!(out.result.num_columns(), 2);
    }

    #[test]
    fn planned_pipeline_matches_planned_executor() {
        let w = JoinWorkloadBuilder::equal(2_000, 1).seed(23).build();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::bytes(1024));
        let pipeline = ProjectionPipeline::planned(&w.larger, &w.smaller, &spec, &params, &policy);
        let (out, _) =
            pipeline.execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
        let expected = pipeline.plan.execute(&w.larger, &w.smaller, &spec, &params);
        assert_eq!(raw_columns(&out), raw_columns(&expected));
    }
}
