//! The memory-budgeted **streaming projection pipeline** — cluster →
//! decluster → fetch in chunks sized by an explicit
//! [`MemoryBudget`].
//!
//! Every other executor in the workspace (sequential and parallel)
//! materialises the full projected relation: `O(N · π)` value bytes live in
//! RAM at once, plus a full `CLUST_VALUES` staging column per projected
//! attribute.  That forfeits the paper's own regime of interest — bounded
//! fast memory — one level up the hierarchy.  This pipeline instead streams
//! the result through a [`RowChunkSink`] in contiguous chunks:
//!
//! 1. **join** and **reorder** run exactly as in
//!    [`crate::strategy::par_dsm_post_projection`] (the join index and the
//!    clustered oid/position arrays are the `8 N`-byte irreducible floor, the
//!    Fig. 4 `CLUST_SMALLER`/`CLUST_RESULT` analogue); this whole prefix is
//!    factored out as [`PreparedProjection`] — a self-contained, *shareable*
//!    product (the serving layer caches it across queries under an `Arc`);
//! 2. the result rows are cut into chunks of
//!    [`StreamingPlan::chunk_rows`] = `budget / bytes_per_row` rows;
//! 3. per chunk, a [`ChunkCursorState`] advances one cursor per cluster
//!    (§3.2's ascending-within-cluster property makes every result prefix a
//!    prefix of every cluster), attribute values are fetched **on demand**
//!    from the base relations into a chunk-local `CLUST_VALUES`, declustered
//!    by the unchanged windowed kernel — morsel-parallel across insertion
//!    windows — and emitted;
//! 4. the sink decides what full-result memory (if any) to pay:
//!    [`MaterializeSink`] rebuilds the materialising executors' output byte
//!    for byte, [`rdx_core::strategy::PagedSink`] spools to buffer-manager
//!    pages (§5).
//!
//! The chunk loop itself is a **resumable** [`PipelineRun`]: each
//! [`PipelineRun::step`] emits exactly one chunk and returns, so a scheduler
//! can interleave chunks from many concurrent queries — chunk boundaries are
//! natural preemption points, which is what makes the multi-query serving
//! layer (`rdx-serve`) possible.  [`ProjectionPipeline::execute`] is simply
//! `prepare` + `step` until done.
//!
//! The output is **byte-identical** to [`DsmPostProjection::execute`] with
//! the same codes for every budget and any step interleaving, because
//! chunking changes only *when* a result row is produced, never its value or
//! position: each chunk is a self-contained Radix-Decluster problem over
//! rebased positions (`rdx_core::decluster::chunks`).

use crate::cluster::{par_radix_cluster_oids_with_scratch, ParClusterScratch};
use crate::decluster::par_radix_decluster_into;
use crate::join::par_partitioned_hash_join;
use crate::pool::{for_each_output_morsel, ExecPolicy};
use crate::strategy::{par_order_join_index, par_project_columns_into};
use rdx_cache::{AddressSpace, CacheParams, EventCounts, MemorySystem, Region};
use rdx_core::budget::MemoryBudget;
use rdx_core::cluster::{plan_partial_cluster, Clustered, RadixClusterSpec, ScatterMode};
use rdx_core::decluster::chunks::{ChunkCursorState, ChunkRuns};
use rdx_core::decluster::traced::radix_decluster_traced;
use rdx_core::decluster::DeclusterScratch;
use rdx_core::error::RdxError;
use rdx_core::join::join_cluster_spec;
use rdx_core::strategy::adapt::{
    resplit_budget, AdaptiveController, AdaptiveDecision, AdaptivePolicy, FeedbackSource,
    SharedMissCounts,
};
use rdx_core::strategy::planner::{
    plan_streaming, plan_streaming_checked, predict_streaming_cost, StreamingPlan,
};
use rdx_core::strategy::sink::{MaterializeSink, RowChunkSink};
use rdx_core::strategy::{
    DsmPostProjection, PhaseTimings, QuerySpec, SecondSideCode, StrategyOutcome,
};
use rdx_dsm::{DsmRelation, Oid};
use rdx_nsm::NsmRelation;
use rdx_obs::{EventKind, MissCounts, Obs, Phase, QueryId};
use std::sync::Arc;
use std::time::Instant;

/// Width of the fixed-size attribute values (the paper's integer columns).
const VALUE_WIDTH: usize = 4;

/// The second-side clustering spec the streaming pipeline uses for a
/// smaller relation of `smaller_tuples` tuples whose cache-relevant value
/// width is `smaller_value_width` (4 for DSM columns, the record width for
/// NSM) — the §3.1 `optimal_partial` rule against the given cache.
///
/// Exposed so layers that must *name* the clustering without building it —
/// the serving layer's clustered-index cache key — derive it from the same
/// function [`ProjectionPipeline::prepare_keys`] uses, and cannot drift.
pub fn cluster_spec_for(
    smaller_tuples: usize,
    smaller_value_width: usize,
    params: &CacheParams,
) -> RadixClusterSpec {
    cluster_plan_for(smaller_tuples, smaller_value_width, params).0
}

/// [`cluster_spec_for`] together with the scatter mode the clustering runs
/// with (plain cursors vs. software write-combining), both derived by
/// [`plan_partial_cluster`] — the same call `plan_streaming` makes, so the
/// executed clustering, the priced one and the serving layer's cache keys
/// all agree.
pub fn cluster_plan_for(
    smaller_tuples: usize,
    smaller_value_width: usize,
    params: &CacheParams,
) -> (RadixClusterSpec, ScatterMode) {
    plan_partial_cluster(
        smaller_tuples,
        smaller_value_width.max(1),
        rdx_core::cluster::OID_PAIR_BYTES,
        params,
    )
}

/// [`cluster_spec_for`] with the DSM column width filled in.
pub fn dsm_cluster_spec(smaller_tuples: usize, params: &CacheParams) -> RadixClusterSpec {
    cluster_spec_for(smaller_tuples, VALUE_WIDTH, params)
}

/// A planned streaming projection: the `u/s/c × u/d` codes of the underlying
/// DSM post-projection plus chunking derived from the policy's
/// [`MemoryBudget`] at execution time.
///
/// [`MemoryBudget`]: rdx_core::budget::MemoryBudget
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionPipeline {
    /// Projection codes, as for [`DsmPostProjection`].
    pub plan: DsmPostProjection,
}

/// The query-independent prefix of a streaming projection, ready to stream
/// chunks from: the join index (already reordered for the first side) and
/// the second-side partial clustering.
///
/// This is the expensive `O(N)` part — partitioned hash join, reorder,
/// radix-cluster — and it depends only on the two relations, the projection
/// codes and the clustering spec, **not** on the memory budget, the thread
/// count or the sink.  It is therefore the unit of *cross-query reuse*: the
/// serving layer keeps these in a byte-budgeted LRU keyed by
/// `(relations, codes, cluster spec)` and starts every cache-hit query
/// directly at the chunk loop.  Fig. 4's `CLUST_SMALLER`/`CLUST_RESULT`
/// arrays, made a first-class shareable value.
#[derive(Debug, Clone)]
pub struct PreparedProjection {
    plan: DsmPostProjection,
    first_oids: Vec<Oid>,
    second_oids: Vec<Oid>,
    clustered: Option<Clustered<Oid, Oid>>,
    smaller_cardinality: usize,
    smaller_value_width: usize,
    timings: PhaseTimings,
}

impl PreparedProjection {
    /// The projection codes this prefix was built for.
    pub fn plan(&self) -> DsmPostProjection {
        self.plan
    }

    /// Result cardinality (join-index length).
    pub fn result_rows(&self) -> usize {
        self.first_oids.len()
    }

    /// Cardinality of the smaller relation the clustering was sized for.
    pub fn smaller_cardinality(&self) -> usize {
        self.smaller_cardinality
    }

    /// Value width the second-side clustering granularity was sized for
    /// (4 for DSM columns, the record width for NSM).
    pub fn smaller_value_width(&self) -> usize {
        self.smaller_value_width
    }

    /// Wall-clock spent building this prefix (join + reorder + cluster).
    pub fn timings(&self) -> PhaseTimings {
        self.timings
    }

    /// Resident heap bytes of this prefix — what a byte-budgeted cache
    /// charges for keeping it: the two reordered oid arrays plus, when the
    /// second side declusters, the clustered `(oid, position)` pairs and the
    /// `H + 1` cluster borders.
    pub fn resident_bytes(&self) -> usize {
        let oids = (self.first_oids.len() + self.second_oids.len()) * std::mem::size_of::<Oid>();
        let clustered = self.clustered.as_ref().map_or(0, |c| {
            c.len() * 2 * std::mem::size_of::<Oid>() + std::mem::size_of_val(c.bounds())
        });
        oids + clustered
    }
}

/// What one pipeline run did: the chunking it planned, what it actually
/// emitted, and the measured peak chunk working set (value data only; the
/// fixed `8 N`-byte index floor is excluded, matching what
/// [`rdx_core::strategy::planner::streaming_bytes_per_row`] prices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineStats {
    /// The chunking the planner derived from the budget.
    pub streaming: StreamingPlan,
    /// Chunks handed to the sink.
    pub chunks_emitted: usize,
    /// Total result rows handed to the sink.
    pub rows_emitted: usize,
    /// Largest per-chunk working set observed, in bytes.
    pub peak_chunk_bytes: usize,
    /// Mid-flight re-splits the adaptive controller fired (0 unless
    /// [`PipelineRun::attach_adaptive`] was called).
    pub adaptive_replans: usize,
    /// Phase wall-clock breakdown ([`PhaseTimings`] semantics; chunked
    /// phases accumulate across chunks).
    pub timings: PhaseTimings,
}

/// The reusable per-run working memory of the streaming chunk loop: the
/// output columns handed to the sink, the chunk-local
/// `CLUST_SMALLER`/`CLUST_RESULT` staging arrays, the staged clustered
/// values, the run list of the current chunk, and the decluster cursor
/// scratch.
///
/// Every buffer grows to the chunk high-water mark on the first chunk and
/// is reused afterwards, which is what makes a steady-state
/// [`PipelineRun::step`] **allocation-free** on a single-threaded policy
/// (multi-threaded chunks still pay their scoped thread spawns).  The
/// serving layer pools these across queries in a batch
/// ([`PipelineRun::attach_scratch`] / [`PipelineRun::take_scratch`]), so a
/// stream of short queries stops paying per-query warm-up allocations too.
#[derive(Debug, Default)]
pub struct ChunkScratch {
    columns: Vec<Vec<i32>>,
    chunk: ChunkRuns,
    local_oids: Vec<Oid>,
    local_positions: Vec<Oid>,
    local_bounds: Vec<usize>,
    staged: Vec<i32>,
    decluster: DeclusterScratch,
}

impl ChunkScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resident heap bytes currently held (capacity, not length).
    pub fn resident_bytes(&self) -> usize {
        let cols: usize = self
            .columns
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<i32>())
            .sum();
        cols + (self.local_oids.capacity() + self.local_positions.capacity()) * 4
            + self.local_bounds.capacity() * std::mem::size_of::<usize>()
            + self.staged.capacity() * 4
    }
}

/// The per-run observability state a [`PipelineRun`] carries when tracing
/// is enabled: the query id its chunk events are keyed by, the cost
/// model's per-chunk prediction, and the two histograms it records into —
/// resolved **once** at attach time, so the chunk loop's recording is
/// atomics plus one short trace-ring lock, with no registry lookups and no
/// allocations.
struct RunObs {
    obs: Obs,
    query: QueryId,
    predicted_chunk_ns: u64,
    chunk_ns: rdx_obs::Histogram,
    ratio_permille: rdx_obs::Histogram,
    adaptive_replans: rdx_obs::Counter,
    resplit_delta: rdx_obs::Histogram,
}

/// The adaptive-execution state a [`PipelineRun`] carries when a policy is
/// attached: the EWMA controller, the feedback source it listens to, the
/// cache parameters re-plans re-price against, and the current (possibly
/// correction-folded) per-chunk prediction.  All of it is allocated once at
/// [`PipelineRun::attach_adaptive`]; observing a chunk and *holding* — the
/// steady state — allocates nothing.
struct RunAdapt {
    controller: AdaptiveController,
    source: Box<dyn FeedbackSource + Send>,
    params: CacheParams,
    predicted_chunk_ns: u64,
    /// Cumulative observed-vs-model correction in permille.  Each re-plan's
    /// EWMA is measured against the *already corrected* prediction, so the
    /// total mispricing is the product of the fired EWMAs — this is what
    /// [`resplit_budget`] shrinks the grant by, letting sustained slow
    /// feedback tighten chunks further on every fired re-plan instead of
    /// re-deriving the same plan.
    correction_permille: u64,
    replans: usize,
}

/// The cache-truth profiling state a [`PipelineRun`] carries when the
/// profiled mode is on: a persistent [`MemorySystem`] the run replays every
/// chunk's memory-access pattern through, the simulated regions standing
/// for the operand arrays, the pre-resolved [`rdx_obs::Profile`]
/// instruments, and the [`SharedMissCounts`] mailbox a
/// [`MissCountFeedback`](rdx_core::strategy::adapt::MissCountFeedback)
/// reads from.
///
/// Profiling never touches the output path — the chunk is computed by the
/// normal kernels and the replay only *simulates* the same accesses — so
/// profiled output is byte-identical to unprofiled output by construction.
/// The replay allocates (the traced decluster builds its reference result),
/// which is why profiling is opt-in: the unprofiled steady state keeps its
/// zero-allocation guarantee untouched.
struct RunProfile {
    profile: rdx_obs::Profile,
    obs: Obs,
    query: QueryId,
    mem: MemorySystem,
    shared: SharedMissCounts,
    space: AddressSpace,
    first_oids_region: Region,
    second_oids_region: Region,
    larger_cols: Vec<Region>,
    smaller_cols: Vec<Region>,
    chunk_oids: Region,
    chunk_out: Region,
    chunk_capacity: usize,
}

/// What the second side of one chunk did, for the profiled replay.
enum SecondSideReplay<'a> {
    /// Straight positional fetch from `second_oids[emitted..]`.
    Unsorted { rows: usize },
    /// Cluster-side gather + windowed decluster over the chunk-local
    /// arrays (the Fig. 5 access pattern).
    Decluster {
        local_oids: &'a [Oid],
        local_positions: &'a [Oid],
        local_bounds: &'a [usize],
        staged: &'a [i32],
        window_bytes: usize,
        declustered: &'a [i32],
    },
}

impl RunProfile {
    /// Grows the chunk-local regions to hold `rows` elements (fresh
    /// addresses model a re-grown scratch buffer; reached only when a
    /// re-plan raises the chunk size past every previous chunk).
    fn ensure_chunk_capacity(&mut self, rows: usize) {
        if rows > self.chunk_capacity {
            self.chunk_oids = self.space.alloc(rows, 4);
            self.chunk_out = self.space.alloc(rows, VALUE_WIDTH);
            self.chunk_capacity = rows;
        }
    }

    /// Replays one emitted chunk's logical memory accesses through the
    /// simulator and returns the miss counts it charged: per projected
    /// column, the sequential oid-stream read, the random positional read
    /// into the base relation and the sequential staging write; plus, for
    /// declustering chunks, one traced windowed decluster scaled to the
    /// smaller-side column count (the decluster's address pattern is
    /// value-independent, so every column replays identically).
    fn replay_chunk(
        &mut self,
        emitted: usize,
        chunk_first_oids: &[Oid],
        second: SecondSideReplay<'_>,
    ) -> EventCounts {
        let rows = chunk_first_oids.len();
        self.ensure_chunk_capacity(rows);
        let before = self.mem.counts();
        for col in 0..self.larger_cols.len() {
            let region = self.larger_cols[col];
            for (i, &oid) in chunk_first_oids.iter().enumerate() {
                self.mem.read(self.first_oids_region.addr(emitted + i), 4);
                self.mem
                    .read(region.addr(oid as usize), region.elem_width());
                self.mem.write(self.chunk_out.addr(i), VALUE_WIDTH);
            }
        }
        let mut scaled = EventCounts::zero();
        match second {
            SecondSideReplay::Unsorted { rows } => {
                for col in 0..self.smaller_cols.len() {
                    let region = self.smaller_cols[col];
                    for i in 0..rows {
                        self.mem.read(self.second_oids_region.addr(emitted + i), 4);
                        // The replay charges the average positional read; the
                        // oid itself is irrelevant to the address *pattern*
                        // class (uniform random into the column), so we model
                        // it with the stream position folded into the region.
                        self.mem
                            .read(region.addr(i % region.elems()), region.elem_width());
                        self.mem.write(self.chunk_out.addr(i), VALUE_WIDTH);
                    }
                }
            }
            SecondSideReplay::Decluster {
                local_oids,
                local_positions,
                local_bounds,
                staged,
                window_bytes,
                declustered,
            } => {
                for col in 0..self.smaller_cols.len() {
                    let region = self.smaller_cols[col];
                    for (i, &oid) in local_oids.iter().enumerate() {
                        self.mem.read(self.chunk_oids.addr(i), 4);
                        self.mem
                            .read(region.addr(oid as usize), region.elem_width());
                        self.mem.write(self.chunk_out.addr(i), VALUE_WIDTH);
                    }
                }
                if !self.smaller_cols.is_empty() {
                    let (replayed, counts) = radix_decluster_traced(
                        staged,
                        local_positions,
                        local_bounds,
                        window_bytes,
                        &mut self.mem,
                    );
                    debug_assert_eq!(
                        replayed, declustered,
                        "traced decluster diverged from the emitted chunk"
                    );
                    // Columns beyond the first replay the identical address
                    // pattern; charge them without re-running the kernel.
                    for _ in 1..self.smaller_cols.len() {
                        scaled.accumulate(&counts);
                    }
                }
            }
        }
        let after = self.mem.counts();
        let mut delta = EventCounts {
            accesses: after.accesses - before.accesses,
            l1_misses: after.l1_misses - before.l1_misses,
            l2_misses: after.l2_misses - before.l2_misses,
            tlb_misses: after.tlb_misses - before.tlb_misses,
        };
        delta.accumulate(&scaled);
        delta
    }
}

/// The cost model's per-chunk prediction for `plan` covering `result_rows`
/// rows, in nanoseconds — [`predict_streaming_cost`] (whole-run millis)
/// divided across the plan's chunks.
fn per_chunk_prediction_ns(
    plan: &StreamingPlan,
    smaller_tuples: usize,
    result_rows: usize,
    spec: &QuerySpec,
    params: &CacheParams,
) -> u64 {
    let total_ms = predict_streaming_cost(plan, smaller_tuples, result_rows, spec, params);
    ((total_ms / plan.num_chunks.max(1) as f64) * 1e6) as u64
}

/// A boxed attribute fetcher `(oid, attr) → value`, the type-erased form the
/// serving layer uses so runs over different storage models are homogeneous.
pub type BoxedFetch<'a> = Box<dyn Fn(Oid, usize) -> i32 + Sync + 'a>;

/// A [`PipelineRun`] over boxed fetchers (what [`PipelineRun::over_dsm`]
/// returns).
pub type DsmPipelineRun<'a> = PipelineRun<BoxedFetch<'a>, BoxedFetch<'a>>;

/// One in-flight streaming projection, resumable chunk by chunk.
///
/// A run owns its cursor state and chunk position but only *shares* the
/// expensive [`PreparedProjection`] prefix (via `Arc`, so a cross-query
/// cache can hand the same prefix to many concurrent runs).  Each call to
/// [`PipelineRun::step`] emits exactly one chunk into the sink and returns;
/// between calls the run is a plain parked value, which is what lets a fair
/// scheduler interleave many queries at chunk granularity.  Stepping a run
/// to completion produces output byte-identical to the one-shot
/// [`ProjectionPipeline::execute`], independent of how steps interleave
/// with other runs.
pub struct PipelineRun<FL, FS> {
    prepared: Arc<PreparedProjection>,
    fetch_larger: FL,
    fetch_smaller: FS,
    spec: QuerySpec,
    policy: ExecPolicy,
    streaming: StreamingPlan,
    cursors: Option<ChunkCursorState>,
    scratch: ChunkScratch,
    emitted: usize,
    chunks_emitted: usize,
    peak_chunk_bytes: usize,
    timings: PhaseTimings,
    begun: bool,
    finished: bool,
    obs: Option<Box<RunObs>>,
    adapt: Option<Box<RunAdapt>>,
    profile: Option<Box<RunProfile>>,
}

impl<FL, FS> PipelineRun<FL, FS>
where
    FL: Fn(Oid, usize) -> i32 + Sync,
    FS: Fn(Oid, usize) -> i32 + Sync,
{
    /// A run over a prepared prefix, with the chunking planned from the
    /// policy's budget.
    ///
    /// # Panics
    /// Panics if the query asks for more projection columns than the fetch
    /// closures can serve (checked by the callers that know the relations).
    pub fn new(
        prepared: Arc<PreparedProjection>,
        fetch_larger: FL,
        fetch_smaller: FS,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
    ) -> Self {
        // Resolve an auto-detect (threads = 0) policy once, so the chunk
        // loop never re-queries the host's parallelism per morsel fill.
        let policy = ExecPolicy {
            threads: policy.worker_threads(),
            ..*policy
        };
        let streaming = plan_streaming(
            prepared.result_rows(),
            prepared.smaller_cardinality,
            prepared.smaller_value_width,
            spec,
            params,
            policy.budget,
            policy.threads,
        );
        if let Some(clustered) = &prepared.clustered {
            debug_assert_eq!(
                *clustered.spec(),
                streaming.cluster_spec,
                "prepared clustering drifted from the streaming plan"
            );
        }
        let cursors = prepared
            .clustered
            .as_ref()
            .map(|c| ChunkCursorState::new(c.bounds()));
        PipelineRun {
            prepared,
            fetch_larger,
            fetch_smaller,
            spec: *spec,
            policy,
            streaming,
            cursors,
            scratch: ChunkScratch::new(),
            emitted: 0,
            chunks_emitted: 0,
            peak_chunk_bytes: 0,
            timings: PhaseTimings::default(),
            begun: false,
            finished: false,
            obs: None,
            adapt: None,
            profile: None,
        }
    }

    /// Attaches an observability handle: every subsequent [`Self::step`]
    /// records a `ChunkStep` trace event keyed by `query` plus the
    /// `pipeline.chunk_ns` and `pipeline.predicted_vs_observed_permille`
    /// histograms (observed ns × 1000 / `predicted_chunk_ns` — the Fig. 9
    /// measured-vs-modeled comparison as a live distribution).  Histogram
    /// handles are resolved here, once, so the chunk loop itself never
    /// touches the registry.  A disabled `obs` is a no-op: the run stays
    /// exactly as cheap as an unobserved one.
    pub fn attach_obs(&mut self, obs: &Obs, query: QueryId, predicted_chunk_ns: u64) {
        let Some(metrics) = obs.metrics() else {
            return; // disabled obs: stay as cheap as an unobserved run
        };
        self.obs = Some(Box::new(RunObs {
            obs: obs.clone(),
            query,
            predicted_chunk_ns,
            chunk_ns: metrics.histogram("pipeline.chunk_ns"),
            ratio_permille: metrics.histogram("pipeline.predicted_vs_observed_permille"),
            adaptive_replans: metrics.counter("pipeline.adaptive_replans"),
            resplit_delta: metrics.histogram("pipeline.resplit_chunk_delta"),
        }));
    }

    /// Arms cache-truth profiling: every subsequent [`Self::step`] replays
    /// the emitted chunk's memory-access pattern through a simulated
    /// [`MemorySystem`] under `params`, records per-phase spans and
    /// per-chunk [`rdx_obs::MissCounts`] into `obs` (`ChunkProfile` trace
    /// events adjacent to each `ChunkStep`, `profile.*` metrics), and
    /// publishes the raw counts to a [`SharedMissCounts`] mailbox
    /// ([`Self::profile_shared`]) so an adaptive controller can react to
    /// simulated cache pressure instead of wall-clock.  Output is untouched
    /// — the replay only simulates — so a profiled run stays byte-identical
    /// to an unprofiled one by construction.  A disabled `obs` is a no-op:
    /// the run stays exactly as cheap as an unprofiled one.
    pub fn attach_profile(&mut self, obs: &Obs, query: QueryId, params: &CacheParams) {
        let Some(profile) = obs.profile() else {
            return; // disabled obs: stay as cheap as an unprofiled run
        };
        // The shared prefix's cluster build is accounted once, at attach —
        // prepare_keys books its wall-clock under the decluster phase.
        profile.record_span(
            Phase::Cluster,
            self.prepared.timings.decluster.as_nanos() as u64,
        );
        let mut space = AddressSpace::new();
        let n = self.prepared.result_rows();
        let first_oids_region = space.alloc(n.max(1), 4);
        let second_oids_region = space.alloc(n.max(1), 4);
        let larger_rows = self
            .prepared
            .first_oids
            .iter()
            .map(|&oid| oid as usize + 1)
            .max()
            .unwrap_or(1);
        let larger_cols = (0..self.spec.project_larger)
            .map(|_| space.alloc(larger_rows, VALUE_WIDTH))
            .collect();
        let smaller_cols = (0..self.spec.project_smaller)
            .map(|_| {
                space.alloc(
                    self.prepared.smaller_cardinality.max(1),
                    self.prepared.smaller_value_width.max(1),
                )
            })
            .collect();
        let chunk_capacity = self.streaming.chunk_rows.min(n).max(1);
        let chunk_oids = space.alloc(chunk_capacity, 4);
        let chunk_out = space.alloc(chunk_capacity, VALUE_WIDTH);
        self.profile = Some(Box::new(RunProfile {
            profile,
            obs: obs.clone(),
            query,
            mem: MemorySystem::new(params),
            shared: SharedMissCounts::new(),
            space,
            first_oids_region,
            second_oids_region,
            larger_cols,
            smaller_cols,
            chunk_oids,
            chunk_out,
            chunk_capacity,
        }));
    }

    /// The profiled run's miss-count mailbox — what a
    /// [`MissCountFeedback`](rdx_core::strategy::adapt::MissCountFeedback)
    /// handed to [`Self::attach_adaptive`] reads from.  `None` unless
    /// [`Self::attach_profile`] armed profiling.
    pub fn profile_shared(&self) -> Option<SharedMissCounts> {
        self.profile.as_deref().map(|p| p.shared.clone())
    }

    /// The cost model's current per-chunk prediction for this run, in
    /// nanoseconds — [`predict_streaming_cost`] over the run's streaming
    /// plan, divided across its chunks.  The single pricing rule the
    /// observability attach, the adaptive controller and mid-flight
    /// re-plans all share, so they can never disagree about what "as
    /// predicted" means.
    pub fn predicted_chunk_ns(&self, params: &CacheParams) -> u64 {
        per_chunk_prediction_ns(
            &self.streaming,
            self.prepared.smaller_cardinality,
            self.prepared.result_rows(),
            &self.spec,
            params,
        )
    }

    /// Arms runtime adaptation: after every emitted chunk the run feeds
    /// `source`'s observation into an EWMA-with-hysteresis controller and,
    /// when the controller fires, re-prices the **remaining** rows with
    /// [`plan_streaming`] and resumes from the same cursors.  Already-
    /// emitted chunks are never touched and the cluster spec never changes,
    /// so adaptive output is byte-identical to non-adaptive output by
    /// construction — only chunk boundaries move.  The grant is a ceiling:
    /// slower-than-predicted feedback *shrinks* the effective budget
    /// ([`resplit_budget`]); faster-than-predicted feedback restores at
    /// most the original budget, never more.
    ///
    /// All adaptive state (controller, feedback source, prediction) is
    /// allocated here, once: observing chunks that *hold* allocates
    /// nothing, preserving the steady-state zero-allocation guarantee.
    pub fn attach_adaptive(
        &mut self,
        policy: AdaptivePolicy,
        source: Box<dyn FeedbackSource + Send>,
        params: &CacheParams,
    ) {
        self.adapt = Some(Box::new(RunAdapt {
            controller: AdaptiveController::new(policy),
            source,
            params: params.clone(),
            predicted_chunk_ns: self.predicted_chunk_ns(params).max(1),
            correction_permille: 1_000,
            replans: 0,
        }));
    }

    /// Swaps the feedback source of an already-armed run (no-op when
    /// adaptation is off) — how a deterministic harness injects a scripted
    /// timing sequence into a run the serving layer built with the
    /// production wall-clock source.
    pub fn replace_feedback(&mut self, source: Box<dyn FeedbackSource + Send>) {
        if let Some(adapt) = self.adapt.as_deref_mut() {
            adapt.source = source;
        }
    }

    /// Re-prices the remaining rows under a new budget mid-flight (an
    /// engine share change), resuming from the current cursors.  Fails with
    /// the typed [`RdxError::Budget`] — never a silent clamp — when the new
    /// budget cannot hold even one row; on failure the run is unchanged and
    /// still streams under its previous plan.
    pub fn rebudget(&mut self, budget: MemoryBudget, params: &CacheParams) -> Result<(), RdxError> {
        let remaining = self.prepared.result_rows() - self.emitted;
        let new_plan = plan_streaming_checked(
            remaining.max(1),
            self.prepared.smaller_cardinality,
            self.prepared.smaller_value_width,
            &self.spec,
            params,
            budget,
            self.policy.threads,
        )
        .map_err(RdxError::Budget)?;
        debug_assert_eq!(
            new_plan.cluster_spec, self.streaming.cluster_spec,
            "mid-flight rebudget drifted the cluster spec"
        );
        let old_chunks = remaining.div_ceil(self.streaming.chunk_rows.max(1));
        let new_chunks = remaining.div_ceil(new_plan.chunk_rows.max(1));
        self.policy.budget = budget;
        if remaining > 0 {
            self.streaming = new_plan;
        }
        let corrected = per_chunk_prediction_ns(
            &self.streaming,
            self.prepared.smaller_cardinality,
            remaining.max(1),
            &self.spec,
            params,
        )
        .max(1);
        if let Some(adapt) = self.adapt.as_deref_mut() {
            adapt.predicted_chunk_ns = corrected;
        }
        if let Some(run_obs) = self.obs.as_deref_mut() {
            run_obs.predicted_chunk_ns = corrected;
            run_obs.obs.record(
                run_obs.query,
                EventKind::Replan {
                    old_chunks: old_chunks as u32,
                    new_chunks: new_chunks as u32,
                    reason: "rebudget",
                },
            );
        }
        Ok(())
    }

    /// Mid-flight re-splits the adaptive controller has fired so far.
    pub fn adaptive_replans(&self) -> usize {
        self.adapt.as_ref().map_or(0, |a| a.replans)
    }

    /// Replaces this run's chunk scratch with `scratch` (typically one
    /// harvested from a completed run via [`PipelineRun::take_scratch`]), so
    /// the warmed buffers carry over instead of being re-grown.  Purely a
    /// performance hand-off: results are unaffected.
    pub fn attach_scratch(&mut self, scratch: ChunkScratch) {
        self.scratch = scratch;
    }

    /// Takes this run's chunk scratch, leaving a fresh empty one — how a
    /// scratch pool reclaims the warmed buffers of a finished query.
    pub fn take_scratch(&mut self) -> ChunkScratch {
        std::mem::take(&mut self.scratch)
    }

    /// The chunking this run streams under.
    pub fn streaming(&self) -> &StreamingPlan {
        &self.streaming
    }

    /// The shared prefix this run streams from.
    pub fn prepared(&self) -> &PreparedProjection {
        &self.prepared
    }

    /// Result rows emitted so far.
    pub fn rows_emitted(&self) -> usize {
        self.emitted
    }

    /// Result rows still to emit.
    pub fn remaining_rows(&self) -> usize {
        self.prepared.result_rows() - self.emitted
    }

    /// `true` once the sink has been finished.
    pub fn is_done(&self) -> bool {
        self.finished
    }

    /// Emits the next chunk into `sink` and returns its row count, or
    /// `None` once the run is complete (the first `None` finishes the sink;
    /// further calls are no-ops).  The sink's `begin` is called on the first
    /// step, so a run that joins to an empty result still performs the full
    /// `begin`/`finish` protocol while emitting zero chunks.
    pub fn step(&mut self, sink: &mut dyn RowChunkSink) -> Option<usize> {
        if self.finished {
            return None;
        }
        let n = self.prepared.result_rows();
        if !self.begun {
            sink.begin(n, self.spec.total());
            self.begun = true;
        }
        if self.emitted >= n {
            sink.finish();
            self.finished = true;
            return None;
        }

        let emitted = self.emitted;
        let chunk_end = (emitted + self.streaming.chunk_rows).min(n);
        let rows = chunk_end - emitted;
        let mut chunk_bytes = rows * self.spec.total() * VALUE_WIDTH;
        // Chunk wall-clock is only measured when someone consumes it: an
        // observer, an adaptive controller, or both.
        let chunk_start = (self.obs.is_some() || self.adapt.is_some()).then(Instant::now);

        // All chunk-local buffers come from the run's scratch: after the
        // first (largest) chunk has grown them, a steady-state step
        // allocates nothing.
        let scratch = &mut self.scratch;
        scratch.columns.resize_with(self.spec.total(), Vec::new);

        // First side: morsel-parallel gather straight into the chunk.
        let t = Instant::now();
        par_project_columns_into(
            &self.prepared.first_oids[emitted..chunk_end],
            &self.fetch_larger,
            &self.policy,
            &mut scratch.columns[..self.spec.project_larger],
        );
        let first_elapsed = t.elapsed();
        self.timings.project_larger += first_elapsed;

        // Second side.
        let mut second_fetch_elapsed = None;
        let mut decluster_elapsed = None;
        let t = Instant::now();
        match (&self.prepared.clustered, &mut self.cursors) {
            (Some(clustered), Some(cursors)) => {
                cursors.next_chunk_into(clustered.payloads(), chunk_end, &mut scratch.chunk);
                let chunk = &scratch.chunk;
                debug_assert_eq!(chunk.result_range, emitted..chunk_end);
                // Chunk-local CLUST_SMALLER / CLUST_RESULT, shared by all
                // smaller-side columns of this chunk.
                chunk.gather_into(clustered.keys(), &mut scratch.local_oids);
                chunk.rebased_positions_into(clustered.payloads(), &mut scratch.local_positions);
                chunk.local_bounds_into(&mut scratch.local_bounds);
                chunk_bytes +=
                    (scratch.local_oids.len() + scratch.local_positions.len()) * VALUE_WIDTH;
                scratch.staged.resize(rows, 0);
                let staged = &mut scratch.staged[..rows];
                chunk_bytes += staged.len() * VALUE_WIDTH;
                for (b, column) in scratch.columns[self.spec.project_larger..]
                    .iter_mut()
                    .enumerate()
                {
                    // On-demand clustered positional join: the chunk's
                    // CLUST_VALUES, never the whole column.
                    let fetch = &self.fetch_smaller;
                    let local_oids = &scratch.local_oids;
                    for_each_output_morsel(staged, &self.policy, |off, slots| {
                        let oids = &local_oids[off..off + slots.len()];
                        for (slot, &oid) in slots.iter_mut().zip(oids) {
                            *slot = fetch(oid, b);
                        }
                    });
                    column.resize(rows, 0);
                    par_radix_decluster_into(
                        staged,
                        &scratch.local_positions,
                        &scratch.local_bounds,
                        self.streaming.window_bytes,
                        &self.policy,
                        &mut scratch.decluster,
                        column,
                    );
                }
                let elapsed = t.elapsed();
                self.timings.decluster += elapsed;
                decluster_elapsed = Some(elapsed);
            }
            _ => {
                par_project_columns_into(
                    &self.prepared.second_oids[emitted..chunk_end],
                    &self.fetch_smaller,
                    &self.policy,
                    &mut scratch.columns[self.spec.project_larger..],
                );
                let elapsed = t.elapsed();
                self.timings.project_smaller += elapsed;
                second_fetch_elapsed = Some(elapsed);
            }
        }

        self.peak_chunk_bytes = self.peak_chunk_bytes.max(chunk_bytes);
        sink.emit(emitted, &scratch.columns);
        self.chunks_emitted += 1;
        self.emitted = chunk_end;
        let observed_ns = chunk_start.map(|start| start.elapsed().as_nanos() as u64);
        if let (Some(run_obs), Some(observed_ns)) = (self.obs.as_deref(), observed_ns) {
            run_obs.chunk_ns.record(observed_ns);
            if let Some(permille) = observed_ns
                .saturating_mul(1000)
                .checked_div(run_obs.predicted_chunk_ns)
            {
                run_obs.ratio_permille.record(permille);
            }
            run_obs.obs.record(
                run_obs.query,
                EventKind::ChunkStep {
                    chunk: (self.chunks_emitted - 1) as u32,
                    rows: rows as u32,
                    observed_ns,
                    predicted_ns: run_obs.predicted_chunk_ns,
                    working_set_bytes: chunk_bytes as u64,
                },
            );
        }
        // Profiled mode: replay this chunk's memory-access pattern through
        // the simulator and publish the counts BEFORE the adaptive
        // controller observes the chunk, so a MissCountFeedback sees the
        // very chunk it is asked about.  Output was already emitted above —
        // the replay only simulates.
        if let Some(prof) = self.profile.as_deref_mut() {
            // `profile` is a distinct field from `prepared`/`scratch`/
            // `spec`/`streaming`, so these immutable borrows coexist with
            // the `&mut` taken above.
            let chunk_first_oids = &self.prepared.first_oids[emitted..chunk_end];
            let scratch = &self.scratch;
            let declustered: &[i32] = scratch.columns[self.spec.project_larger..]
                .last()
                .map(|c| c.as_slice())
                .unwrap_or(&[]);
            let second = if self.prepared.clustered.is_some() {
                SecondSideReplay::Decluster {
                    local_oids: &scratch.local_oids,
                    local_positions: &scratch.local_positions,
                    local_bounds: &scratch.local_bounds,
                    staged: &scratch.staged,
                    window_bytes: self.streaming.window_bytes,
                    declustered,
                }
            } else {
                SecondSideReplay::Unsorted { rows }
            };
            prof.profile
                .record_span(Phase::Fetch, first_elapsed.as_nanos() as u64);
            if let Some(d) = second_fetch_elapsed {
                prof.profile.record_span(Phase::Fetch, d.as_nanos() as u64);
            }
            if let Some(d) = decluster_elapsed {
                prof.profile
                    .record_span(Phase::Decluster, d.as_nanos() as u64);
            }
            let counts = prof.replay_chunk(emitted, chunk_first_oids, second);
            let params = prof.mem.params();
            let miss = MissCounts {
                accesses: counts.accesses,
                l1_misses: counts.l1_misses,
                l2_misses: counts.l2_misses,
                tlb_misses: counts.tlb_misses,
                stall_cycles: counts.stall_cycles(params).round() as u64,
            };
            prof.shared.publish(&counts, params);
            prof.profile.record_chunk(
                &prof.obs,
                prof.query,
                (self.chunks_emitted - 1) as u32,
                miss,
            );
        }
        // Feed the adaptive controller last, once the chunk's own event is
        // recorded: a Replan therefore always trails the ChunkStep that
        // triggered it, and only fires while rows remain to re-split.
        if self.adapt.is_some() && self.emitted < n {
            self.maybe_resplit(rows, observed_ns.unwrap_or(0));
        }
        Some(rows)
    }

    /// The between-chunks re-split point: feeds the just-emitted chunk to
    /// the feedback source and controller; on a `Replan` decision,
    /// re-prices the remaining rows (under the correction-scaled budget)
    /// and swaps the streaming plan in place.  The cursors are untouched —
    /// they accept any non-decreasing chunk end — so the next [`Self::step`]
    /// simply continues at the new granularity.
    fn maybe_resplit(&mut self, rows: usize, measured_ns: u64) {
        let remaining = self.prepared.result_rows() - self.emitted;
        let (ewma_permille, reason) = {
            let Some(adapt) = self.adapt.as_deref_mut() else {
                return;
            };
            let predicted = adapt.predicted_chunk_ns;
            let observed =
                adapt
                    .source
                    .observe_chunk(self.chunks_emitted - 1, rows, measured_ns, predicted);
            match adapt.controller.observe(observed, predicted) {
                AdaptiveDecision::Hold => return,
                AdaptiveDecision::Replan {
                    ewma_permille,
                    reason,
                } => (ewma_permille, reason),
            }
        };
        let Some(adapt) = self.adapt.as_deref_mut() else {
            return;
        };
        // Slower than predicted: the model under-priced the cache pressure,
        // so re-plan the tail under a proportionally smaller working set.
        // Faster: restore at most the original grant — never exceed it.
        // The EWMA is relative to the already-corrected prediction, so the
        // total mispricing compounds across fired re-plans.
        adapt.correction_permille = adapt
            .correction_permille
            .saturating_mul(ewma_permille)
            .max(1_000)
            / 1_000;
        let effective = resplit_budget(self.policy.budget, adapt.correction_permille);
        let new_plan = plan_streaming(
            remaining,
            self.prepared.smaller_cardinality,
            self.prepared.smaller_value_width,
            &self.spec,
            &adapt.params,
            effective,
            self.policy.threads,
        );
        debug_assert_eq!(
            new_plan.cluster_spec, self.streaming.cluster_spec,
            "adaptive re-split drifted the cluster spec"
        );
        let old_chunks = remaining.div_ceil(self.streaming.chunk_rows.max(1));
        let new_chunks = remaining.div_ceil(new_plan.chunk_rows.max(1));
        // Fold the learned correction into the prediction: if the world
        // really is `correction/1000` times the model, the next ratio lands
        // near 1000 and the controller settles instead of re-firing forever.
        let model_ns = per_chunk_prediction_ns(
            &new_plan,
            self.prepared.smaller_cardinality,
            remaining,
            &self.spec,
            &adapt.params,
        );
        adapt.predicted_chunk_ns =
            (model_ns.saturating_mul(adapt.correction_permille) / 1_000).max(1);
        adapt.replans += 1;
        let corrected = adapt.predicted_chunk_ns;
        self.streaming = new_plan;
        if let Some(run_obs) = self.obs.as_deref_mut() {
            run_obs.predicted_chunk_ns = corrected;
            run_obs.adaptive_replans.inc();
            run_obs
                .resplit_delta
                .record(old_chunks.abs_diff(new_chunks) as u64);
            run_obs.obs.record(
                run_obs.query,
                EventKind::Replan {
                    old_chunks: old_chunks as u32,
                    new_chunks: new_chunks as u32,
                    reason,
                },
            );
        }
    }

    /// Steps the run to completion.
    pub fn run_to_completion(&mut self, sink: &mut dyn RowChunkSink) {
        while self.step(sink).is_some() {}
    }

    /// Statistics for this run alone: chunk-loop timings only, *excluding*
    /// the shared prefix (whose build time a cache-hit run never paid — see
    /// [`PreparedProjection::timings`] for that side).
    pub fn run_stats(&self) -> PipelineStats {
        PipelineStats {
            streaming: self.streaming,
            chunks_emitted: self.chunks_emitted,
            rows_emitted: self.emitted,
            peak_chunk_bytes: self.peak_chunk_bytes,
            adaptive_replans: self.adaptive_replans(),
            timings: self.timings,
        }
    }

    /// Statistics with the prepare-phase timings folded in — what a cold
    /// (cache-miss) end-to-end execution reports.
    pub fn stats(&self) -> PipelineStats {
        let mut stats = self.run_stats();
        let prep = self.prepared.timings;
        stats.timings.join += prep.join;
        stats.timings.reorder += prep.reorder;
        stats.timings.decluster += prep.decluster;
        stats
    }
}

impl<'a> DsmPipelineRun<'a> {
    /// A run fetching attribute values from two DSM relations — the form
    /// the serving layer parks in its scheduler.
    ///
    /// # Panics
    /// Panics if the query asks for more projection columns than a relation
    /// has.
    pub fn over_dsm(
        prepared: Arc<PreparedProjection>,
        larger: &'a DsmRelation,
        smaller: &'a DsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
    ) -> Self {
        assert!(
            spec.project_larger <= larger.width(),
            "larger side has too few columns"
        );
        assert!(
            spec.project_smaller <= smaller.width(),
            "smaller side has too few columns"
        );
        PipelineRun::new(
            prepared,
            Box::new(move |oid, a| larger.attr(a).value(oid as usize)),
            Box::new(move |oid, b| smaller.attr(b).value(oid as usize)),
            spec,
            params,
            policy,
        )
    }
}

impl DsmPipelineRun<'static> {
    /// A run that *owns* its relations through `Arc`s instead of borrowing
    /// them — a `'static` value a session can park across calls without
    /// borrowing its own catalog (what the ticket-granular serving engine
    /// and the `rdx-api` `Session` front door need: the catalog hands out
    /// `Arc` clones, so an in-flight run never pins the catalog itself).
    ///
    /// # Panics
    /// Panics if the query asks for more projection columns than a relation
    /// has (callers with a catalog validate first and report the typed
    /// `RdxError` instead).
    pub fn over_dsm_arc(
        prepared: Arc<PreparedProjection>,
        larger: Arc<DsmRelation>,
        smaller: Arc<DsmRelation>,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
    ) -> Self {
        assert!(
            spec.project_larger <= larger.width(),
            "larger side has too few columns"
        );
        assert!(
            spec.project_smaller <= smaller.width(),
            "smaller side has too few columns"
        );
        PipelineRun::new(
            prepared,
            Box::new(move |oid, a| larger.attr(a).value(oid as usize)),
            Box::new(move |oid, b| smaller.attr(b).value(oid as usize)),
            spec,
            params,
            policy,
        )
    }
}

impl ProjectionPipeline {
    /// A pipeline running the given projection codes.
    pub fn new(plan: DsmPostProjection) -> Self {
        ProjectionPipeline { plan }
    }

    /// A pipeline with the cost-model-planned codes for this workload and
    /// thread count (`plan_by_cost_with_threads`).
    pub fn planned(
        larger: &DsmRelation,
        smaller: &DsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
    ) -> Self {
        Self::new(rdx_core::strategy::planner::plan_by_cost_with_threads(
            larger,
            smaller,
            spec,
            params,
            policy.worker_threads(),
        ))
    }

    /// Builds the shareable prefix for a projection over two DSM relations:
    /// join, first-side reorder, second-side partial clustering.
    pub fn prepare(
        &self,
        larger: &DsmRelation,
        smaller: &DsmRelation,
        params: &CacheParams,
        policy: &ExecPolicy,
    ) -> PreparedProjection {
        self.prepare_keys(
            larger.key().as_slice(),
            smaller.key().as_slice(),
            larger.cardinality(),
            smaller.cardinality(),
            VALUE_WIDTH,
            params,
            policy,
        )
    }

    /// The storage-model-generic prepare: join over the key columns, reorder
    /// for the first side, partial-cluster the second side on exactly the
    /// clustering the streaming planner prices
    /// (`StreamingPlan::cluster_spec` stays the single source of truth).
    #[allow(clippy::too_many_arguments)]
    pub fn prepare_keys(
        &self,
        larger_keys: &[u64],
        smaller_keys: &[u64],
        larger_cardinality: usize,
        smaller_cardinality: usize,
        smaller_value_width: usize,
        params: &CacheParams,
        policy: &ExecPolicy,
    ) -> PreparedProjection {
        let policy = &ExecPolicy {
            threads: policy.worker_threads(),
            ..*policy
        };
        let mut timings = PhaseTimings::default();

        // Phase 1: join index over the key columns only.
        let t = Instant::now();
        let join_spec = join_cluster_spec(smaller_cardinality, params.cache_capacity());
        let join_index = par_partitioned_hash_join(larger_keys, smaller_keys, join_spec, policy);
        timings.join = t.elapsed();

        // Phase 2: reorder for the first side (determines the result order).
        let t = Instant::now();
        let (first_oids, second_oids) = par_order_join_index(
            &join_index,
            self.plan.first_side,
            larger_cardinality,
            VALUE_WIDTH,
            params,
            policy,
        );
        timings.reorder = t.elapsed();
        drop(join_index);

        // Phase 3: second-side partial clustering (the 8 N-byte
        // CLUST_SMALLER / CLUST_RESULT floor the chunks stream over), on the
        // §3.1 spec `plan_streaming` also derives — the same
        // `plan_partial_cluster` rule, so prepared prefix and streaming plan
        // can never drift apart, including the pass count and the
        // plain/buffered scatter choice.  Counted as decluster time,
        // matching project_second_side_decluster.
        let n = first_oids.len();
        let (cluster_spec, scatter) =
            cluster_plan_for(smaller_cardinality, smaller_value_width, params);
        let t = Instant::now();
        let clustered: Option<Clustered<Oid, Oid>> = match self.plan.second_side {
            SecondSideCode::Decluster => {
                let result_positions: Vec<Oid> = (0..n as Oid).collect();
                Some(par_radix_cluster_oids_with_scratch(
                    &second_oids,
                    &result_positions,
                    cluster_spec,
                    scatter,
                    policy,
                    &mut ParClusterScratch::new(),
                ))
            }
            SecondSideCode::Unsorted => None,
        };
        timings.decluster += t.elapsed();

        PreparedProjection {
            plan: self.plan,
            first_oids,
            second_oids,
            clustered,
            smaller_cardinality,
            smaller_value_width,
            timings,
        }
    }

    /// Executes over DSM relations, streaming the result into `sink`.
    ///
    /// # Panics
    /// Panics if the query asks for more projection columns than a relation
    /// has.
    pub fn execute(
        &self,
        larger: &DsmRelation,
        smaller: &DsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
        sink: &mut dyn RowChunkSink,
    ) -> PipelineStats {
        let prepared = Arc::new(self.prepare(larger, smaller, params, policy));
        let mut run = DsmPipelineRun::over_dsm(prepared, larger, smaller, spec, params, policy);
        run.run_to_completion(sink);
        run.stats()
    }

    /// Executes over NSM relations (attribute 0 is the join key), streaming
    /// the result into `sink`.
    ///
    /// # Panics
    /// Panics if the query asks for more projection columns than a relation
    /// has beyond its key attribute.
    pub fn execute_nsm(
        &self,
        larger: &NsmRelation,
        smaller: &NsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
        sink: &mut dyn RowChunkSink,
    ) -> PipelineStats {
        assert!(spec.project_larger < larger.width());
        assert!(spec.project_smaller < smaller.width());
        // The unavoidable NSM entry fee: scan the key attribute out of the
        // wide records (morsel parallel, as in the materialising executor).
        let scan = Instant::now();
        let mut larger_keys = vec![0u64; larger.cardinality()];
        for_each_output_morsel(&mut larger_keys, policy, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = larger.key(offset + i);
            }
        });
        let mut smaller_keys = vec![0u64; smaller.cardinality()];
        for_each_output_morsel(&mut smaller_keys, policy, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = smaller.key(offset + i);
            }
        });
        let scan_time = scan.elapsed();
        let prepared = Arc::new(self.prepare_keys(
            &larger_keys,
            &smaller_keys,
            larger.cardinality(),
            smaller.cardinality(),
            // A cache-line fetch from an NSM relation drags the full record
            // in, so the clustering granularity must be sized to the record
            // width (exactly as par_nsm_post_projection_decluster does).
            smaller.tuple_bytes(),
            params,
            policy,
        ));
        let mut run = PipelineRun::new(
            prepared,
            |oid: Oid, a: usize| larger.value(oid as usize, a + 1),
            |oid: Oid, b: usize| smaller.value(oid as usize, b + 1),
            spec,
            params,
            policy,
        );
        run.run_to_completion(sink);
        let mut stats = run.stats();
        stats.timings.join += scan_time;
        stats
    }

    /// Convenience: streams into a [`MaterializeSink`] and returns the
    /// materialised [`StrategyOutcome`] — the drop-in replacement for
    /// [`DsmPostProjection::execute`] used by agreement tests.
    pub fn execute_materialized(
        &self,
        larger: &DsmRelation,
        smaller: &DsmRelation,
        spec: &QuerySpec,
        params: &CacheParams,
        policy: &ExecPolicy,
    ) -> (StrategyOutcome, PipelineStats) {
        let mut sink = MaterializeSink::new();
        let stats = self.execute(larger, smaller, spec, params, policy, &mut sink);
        (
            StrategyOutcome {
                result: sink.into_result(),
                timings: stats.timings,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_core::budget::MemoryBudget;
    use rdx_core::strategy::sink::CountingSink;
    use rdx_core::strategy::ProjectionCode;
    use rdx_workload::JoinWorkloadBuilder;

    fn raw_columns(outcome: &StrategyOutcome) -> Vec<Vec<i32>> {
        outcome
            .result
            .columns()
            .iter()
            .map(|c| c.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn streaming_is_byte_identical_to_dsm_post_for_every_code_and_budget() {
        let w = JoinWorkloadBuilder::equal(3_000, 2).seed(7).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let data_bytes = 2 * 3_000 * 2 * VALUE_WIDTH;
        for first in [
            ProjectionCode::Unsorted,
            ProjectionCode::Sorted,
            ProjectionCode::PartialCluster,
        ] {
            for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
                let plan = DsmPostProjection::with_codes(first, second);
                let expected = raw_columns(&plan.execute(&w.larger, &w.smaller, &spec, &params));
                for denom in [1usize, 16, 64] {
                    let policy = ExecPolicy::with_threads(2)
                        .budget(MemoryBudget::fraction_of(data_bytes, denom));
                    let (out, stats) = ProjectionPipeline::new(plan)
                        .execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
                    assert_eq!(
                        raw_columns(&out),
                        expected,
                        "codes {} denom {denom}",
                        plan.label()
                    );
                    assert_eq!(stats.rows_emitted, w.expected_matches);
                    if denom > 1 {
                        assert!(stats.chunks_emitted > 1, "denom {denom} did not chunk");
                    }
                }
            }
        }
    }

    #[test]
    fn peak_working_set_respects_the_budget() {
        let w = JoinWorkloadBuilder::equal(4_096, 1).seed(3).build();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let plan = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        );
        for budget_bytes in [512usize, 4 * 1024, 64 * 1024] {
            let policy = ExecPolicy::with_threads(2).budget(MemoryBudget::bytes(budget_bytes));
            let mut sink = CountingSink::new(MaterializeSink::new());
            let stats = ProjectionPipeline::new(plan)
                .execute(&w.larger, &w.smaller, &spec, &params, &policy, &mut sink);
            assert!(
                stats.peak_chunk_bytes <= stats.streaming.max_working_set_bytes(),
                "budget {budget_bytes}: peak {} exceeds planned bound {}",
                stats.peak_chunk_bytes,
                stats.streaming.max_working_set_bytes()
            );
            assert!(
                stats.peak_chunk_bytes <= budget_bytes,
                "budget {budget_bytes}: peak {}",
                stats.peak_chunk_bytes
            );
            assert_eq!(sink.chunks, stats.chunks_emitted);
            assert_eq!(
                sink.max_chunk_rows,
                stats.streaming.chunk_rows.min(sink.rows)
            );
        }
    }

    #[test]
    fn nsm_streaming_matches_dsm_streaming() {
        let w = JoinWorkloadBuilder::equal(1_500, 2).seed(19).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let plan = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        );
        let policy = ExecPolicy::with_threads(2).budget(MemoryBudget::bytes(2048));
        let pipeline = ProjectionPipeline::new(plan);
        let (dsm_out, _) =
            pipeline.execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
        let mut sink = MaterializeSink::new();
        pipeline.execute_nsm(
            &w.larger_nsm,
            &w.smaller_nsm,
            &spec,
            &params,
            &policy,
            &mut sink,
        );
        assert_eq!(raw_columns(&dsm_out), {
            let nsm_result = sink.into_result();
            nsm_result
                .columns()
                .iter()
                .map(|c| c.as_slice().to_vec())
                .collect::<Vec<_>>()
        });
    }

    #[test]
    fn empty_join_emits_no_chunks() {
        use rdx_dsm::Column;
        // Disjoint key domains by construction: the join is empty.
        let rel = |base: u64| {
            rdx_dsm::DsmRelation::new(
                Column::from_vec((base..base + 64).collect()),
                vec![Column::from_vec((0..64).collect())],
            )
        };
        let (larger, smaller) = (rel(1_000), rel(0));
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let policy = ExecPolicy::with_threads(2).budget(MemoryBudget::bytes(256));
        let plan =
            DsmPostProjection::with_codes(ProjectionCode::Unsorted, SecondSideCode::Decluster);
        let (out, stats) = ProjectionPipeline::new(plan)
            .execute_materialized(&larger, &smaller, &spec, &params, &policy);
        assert_eq!(stats.chunks_emitted, 0);
        assert_eq!(stats.rows_emitted, 0);
        assert_eq!(out.result.cardinality(), 0);
        assert_eq!(out.result.num_columns(), 2);
    }

    #[test]
    fn planned_pipeline_matches_planned_executor() {
        let w = JoinWorkloadBuilder::equal(2_000, 1).seed(23).build();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::bytes(1024));
        let pipeline = ProjectionPipeline::planned(&w.larger, &w.smaller, &spec, &params, &policy);
        let (out, _) =
            pipeline.execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
        let expected = pipeline.plan.execute(&w.larger, &w.smaller, &spec, &params);
        assert_eq!(raw_columns(&out), raw_columns(&expected));
    }

    #[test]
    fn interleaved_steps_of_shared_prefix_runs_stay_byte_identical() {
        // Two runs over the SAME Arc-shared prepared prefix, stepped in an
        // uneven interleaving (2 chunks of A per chunk of B) — the serving
        // scheduler's access pattern — must both reproduce the one-shot
        // execution byte for byte.
        let w = JoinWorkloadBuilder::equal(2_500, 2).seed(41).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let plan = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        );
        let policy = ExecPolicy::with_threads(2).budget(MemoryBudget::bytes(1024));
        let pipeline = ProjectionPipeline::new(plan);
        let (expected, _) =
            pipeline.execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
        let expected = raw_columns(&expected);

        let prepared = Arc::new(pipeline.prepare(&w.larger, &w.smaller, &params, &policy));
        assert!(prepared.resident_bytes() > 0);
        let mut run_a = DsmPipelineRun::over_dsm(
            prepared.clone(),
            &w.larger,
            &w.smaller,
            &spec,
            &params,
            &policy,
        );
        let mut run_b = DsmPipelineRun::over_dsm(
            prepared.clone(),
            &w.larger,
            &w.smaller,
            &spec,
            &params,
            &policy,
        );
        let mut sink_a = MaterializeSink::new();
        let mut sink_b = MaterializeSink::new();
        while !(run_a.is_done() && run_b.is_done()) {
            run_a.step(&mut sink_a);
            run_a.step(&mut sink_a);
            run_b.step(&mut sink_b);
        }
        for (label, sink, run) in [("a", sink_a, run_a), ("b", sink_b, run_b)] {
            let result = sink.into_result();
            let cols: Vec<Vec<i32>> = result
                .columns()
                .iter()
                .map(|c| c.as_slice().to_vec())
                .collect();
            assert_eq!(cols, expected, "run {label}");
            assert_eq!(run.rows_emitted(), w.expected_matches);
            assert_eq!(run.remaining_rows(), 0);
            // Per-run stats exclude the shared prefix; folded stats add it.
            assert_eq!(run.run_stats().rows_emitted, w.expected_matches);
            assert!(run.stats().timings.total() >= run.run_stats().timings.total());
        }
    }

    #[test]
    fn arc_owned_run_matches_the_borrowing_run() {
        let w = JoinWorkloadBuilder::equal(1_000, 2).seed(9).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::bytes(512));
        let plan = DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        );
        let pipeline = ProjectionPipeline::new(plan);
        let prepared = Arc::new(pipeline.prepare(&w.larger, &w.smaller, &params, &policy));
        let mut borrowed = DsmPipelineRun::over_dsm(
            prepared.clone(),
            &w.larger,
            &w.smaller,
            &spec,
            &params,
            &policy,
        );
        // The Arc-owning run is a 'static value: parkable without borrowing.
        let mut owned: DsmPipelineRun<'static> = DsmPipelineRun::over_dsm_arc(
            prepared,
            Arc::new(w.larger.clone()),
            Arc::new(w.smaller.clone()),
            &spec,
            &params,
            &policy,
        );
        let (mut sink_a, mut sink_b) = (MaterializeSink::new(), MaterializeSink::new());
        borrowed.run_to_completion(&mut sink_a);
        owned.run_to_completion(&mut sink_b);
        let cols = |s: MaterializeSink| {
            s.into_result()
                .columns()
                .iter()
                .map(|c| c.as_slice().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(cols(sink_a), cols(sink_b));
    }

    #[test]
    fn profiled_run_is_byte_identical_and_counts_are_deterministic() {
        use rdx_core::strategy::adapt::MissCountFeedback;
        use rdx_obs::{Obs, ObsConfig, QueryId};

        let w = JoinWorkloadBuilder::equal(2_000, 2).seed(11).build();
        let spec = QuerySpec::symmetric(2);
        let params = CacheParams::tiny_for_tests();
        let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::bytes(1024));
        for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
            let plan = DsmPostProjection::with_codes(ProjectionCode::PartialCluster, second);
            let pipeline = ProjectionPipeline::new(plan);
            let (expected, _) =
                pipeline.execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
            let expected = raw_columns(&expected);

            let prepared = Arc::new(pipeline.prepare(&w.larger, &w.smaller, &params, &policy));
            let mut totals = Vec::new();
            for _ in 0..2 {
                let obs = Obs::enabled(ObsConfig::default());
                let query = QueryId::next();
                let mut run = DsmPipelineRun::over_dsm(
                    prepared.clone(),
                    &w.larger,
                    &w.smaller,
                    &spec,
                    &params,
                    &policy,
                );
                run.attach_profile(&obs, query, &params);
                let shared = run.profile_shared().expect("profiling armed");
                run.attach_adaptive(
                    AdaptivePolicy::default(),
                    Box::new(MissCountFeedback::new(shared.clone())),
                    &params,
                );
                let mut sink = MaterializeSink::new();
                run.run_to_completion(&mut sink);
                let cols: Vec<Vec<i32>> = sink
                    .into_result()
                    .columns()
                    .iter()
                    .map(|c| c.as_slice().to_vec())
                    .collect();
                assert_eq!(cols, expected, "profiled output drifted ({second:?})");
                // The mailbox saw the last chunk's counts.
                assert!(shared.last().accesses > 0);

                let snap = obs.metrics_snapshot().unwrap();
                let total = [
                    "profile.accesses",
                    "profile.l1_misses",
                    "profile.l2_misses",
                    "profile.tlb_misses",
                    "profile.stall_cycles",
                ]
                .map(|m| snap.counter(m).unwrap());
                assert!(total[0] > 0, "no accesses charged");
                assert!(total[1] > 0, "no L1 misses charged");
                // One ChunkProfile event per emitted chunk, adjacent to steps.
                let events = obs.trace_snapshot().unwrap().events_for(query);
                let profiles = events
                    .iter()
                    .filter(|e| e.kind.label() == "chunk_profile")
                    .count();
                assert_eq!(profiles, run.run_stats().chunks_emitted);
                assert_eq!(snap.histogram("profile.phase.cluster_ns").unwrap().count, 1);
                totals.push(total);
            }
            // Two identical profiled runs charge identical simulated counts.
            assert_eq!(totals[0], totals[1], "simulated counts not deterministic");
        }
    }

    #[test]
    fn unprofiled_run_has_no_profile_state_and_disabled_obs_is_inert() {
        use rdx_obs::{Obs, QueryId};
        let w = JoinWorkloadBuilder::equal(400, 1).seed(2).build();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::bytes(512));
        let pipeline = ProjectionPipeline::new(DsmPostProjection::with_codes(
            ProjectionCode::Unsorted,
            SecondSideCode::Decluster,
        ));
        let prepared = Arc::new(pipeline.prepare(&w.larger, &w.smaller, &params, &policy));
        let mut run =
            DsmPipelineRun::over_dsm(prepared, &w.larger, &w.smaller, &spec, &params, &policy);
        assert!(run.profile_shared().is_none());
        run.attach_profile(&Obs::disabled(), QueryId::next(), &params);
        assert!(run.profile_shared().is_none(), "disabled obs must not arm");
        let mut sink = MaterializeSink::new();
        run.run_to_completion(&mut sink);
        assert_eq!(run.rows_emitted(), w.expected_matches);
    }

    #[test]
    fn step_protocol_begins_and_finishes_once() {
        let w = JoinWorkloadBuilder::equal(512, 1).seed(5).build();
        let spec = QuerySpec::symmetric(1);
        let params = CacheParams::tiny_for_tests();
        let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::bytes(256));
        let pipeline = ProjectionPipeline::new(DsmPostProjection::with_codes(
            ProjectionCode::Unsorted,
            SecondSideCode::Decluster,
        ));
        let prepared = Arc::new(pipeline.prepare(&w.larger, &w.smaller, &params, &policy));
        let mut run =
            DsmPipelineRun::over_dsm(prepared, &w.larger, &w.smaller, &spec, &params, &policy);
        let mut sink = CountingSink::new(MaterializeSink::new());
        let mut steps = 0;
        while let Some(rows) = run.step(&mut sink) {
            assert!(rows > 0);
            steps += 1;
        }
        assert!(run.is_done());
        assert_eq!(steps, run.run_stats().chunks_emitted);
        assert_eq!(sink.chunks, steps);
        // Stepping a finished run is a harmless no-op.
        assert_eq!(run.step(&mut sink), None);
        assert_eq!(sink.chunks, steps);
        assert_eq!(sink.rows, w.expected_matches);
    }
}
