//! Parallel Radix-Cluster: per-thread local clustering + prefix-sum merge.
//!
//! Each worker radix-clusters one contiguous shard of the input with the
//! sequential kernel (so every per-pass cursor set stays cache-contained *per
//! core*), then the per-shard cluster sizes are prefix-summed into global
//! cluster borders and the shards are merged — in worker order, so the result
//! is **byte-identical** to the sequential [`rdx_core::cluster::radix_cluster`]:
//! the sequential kernel is a stable counting sort, worker shards are
//! contiguous input ranges, and concatenating each cluster's per-shard
//! segments in shard order reproduces exactly the stable global order.
//!
//! The merge itself is parallel too: the output arrays are split at the
//! global cluster borders into disjoint `&mut` shards (`split_by_bounds`) and
//! whole clusters are dealt to workers, balanced by tuple count.

use crate::pool::{partition_ranges, run_workers, split_by_bounds, ExecPolicy};
use rdx_core::cluster::{
    radix_cluster, radix_cluster_oids, radix_sort_spec, Clustered, RadixClusterSpec,
};
use rdx_dsm::Oid;
use std::ops::Range;

/// Parallel `radix_cluster(B, P)` over hashed keys; byte-identical to the
/// sequential [`radix_cluster`] for every `(spec, policy)`.
pub fn par_radix_cluster<P: Copy + Send + Sync>(
    keys: &[u64],
    payloads: &[P],
    spec: RadixClusterSpec,
    policy: &ExecPolicy,
) -> Clustered<u64, P> {
    par_cluster_impl(keys, payloads, spec, policy, |k, p| {
        radix_cluster(k, p, spec)
    })
}

/// Parallel clustering of unhashed oids (the join-index case of §3.1);
/// byte-identical to the sequential [`radix_cluster_oids`].
pub fn par_radix_cluster_oids<P: Copy + Send + Sync>(
    oids: &[Oid],
    payloads: &[P],
    spec: RadixClusterSpec,
    policy: &ExecPolicy,
) -> Clustered<Oid, P> {
    par_cluster_impl(oids, payloads, spec, policy, |k, p| {
        radix_cluster_oids(k, p, spec)
    })
}

/// Parallel Radix-Sort of an oid column: all significant bits, no ignore
/// bits; byte-identical to [`rdx_core::cluster::radix_sort_oids`].
pub fn par_radix_sort_oids<P: Copy + Send + Sync>(
    oids: &[Oid],
    payloads: &[P],
    domain: usize,
    policy: &ExecPolicy,
) -> Clustered<Oid, P> {
    par_radix_cluster_oids(oids, payloads, radix_sort_spec(domain), policy)
}

/// One merge work item: the group's first cluster index plus one
/// `(keys, payloads)` output shard per cluster in the group.
type MergeGroup<'a, K, P> = (usize, Vec<(&'a mut [K], &'a mut [P])>);

fn par_cluster_impl<K, P, F>(
    keys: &[K],
    payloads: &[P],
    spec: RadixClusterSpec,
    policy: &ExecPolicy,
    cluster_shard: F,
) -> Clustered<K, P>
where
    K: Copy + Send + Sync,
    P: Copy + Send + Sync,
    F: Fn(&[K], &[P]) -> Clustered<K, P> + Sync,
{
    assert_eq!(keys.len(), payloads.len(), "keys/payloads length mismatch");
    let n = keys.len();
    let threads = policy.worker_threads();
    if threads == 1 || n == 0 || spec.bits == 0 {
        return cluster_shard(keys, payloads);
    }

    // Phase 1 — per-thread histograms and local scatter: each worker runs the
    // full (multi-pass, stable) sequential kernel on its contiguous shard.
    let shards = partition_ranges(n, threads);
    let locals: Vec<Clustered<K, P>> = run_workers(threads, |w| {
        let r = shards[w].clone();
        cluster_shard(&keys[r.clone()], &payloads[r])
    });

    // Phase 2 — prefix sum of the per-shard cluster sizes into global borders.
    let clusters = spec.num_clusters();
    let mut bounds = vec![0usize; clusters + 1];
    for c in 0..clusters {
        let total: usize = locals.iter().map(|l| l.cluster_range(c).len()).sum();
        bounds[c + 1] = bounds[c] + total;
    }
    debug_assert_eq!(bounds[clusters], n);

    // Phase 3 — parallel merge: split the output at the global borders into
    // one disjoint `&mut` shard per cluster, deal whole clusters to workers
    // (balanced by tuple count), and copy each cluster's per-shard segments
    // in shard order.
    let mut out_keys = vec![keys[0]; n];
    let mut out_payloads = vec![payloads[0]; n];
    let key_shards = split_by_bounds(&mut out_keys, &bounds);
    let payload_shards = split_by_bounds(&mut out_payloads, &bounds);

    let groups = balanced_cluster_groups(&bounds, threads);
    let mut key_iter = key_shards.into_iter();
    let mut payload_iter = payload_shards.into_iter();
    let work: Vec<MergeGroup<'_, K, P>> = groups
        .iter()
        .map(|g| {
            let shards: Vec<_> = g
                .clone()
                .map(|_| (key_iter.next().unwrap(), payload_iter.next().unwrap()))
                .collect();
            (g.start, shards)
        })
        .collect();

    let locals_ref = &locals;
    std::thread::scope(|scope| {
        for (first_cluster, cluster_shards) in work {
            scope.spawn(move || {
                for (j, (key_out, payload_out)) in cluster_shards.into_iter().enumerate() {
                    let c = first_cluster + j;
                    let mut off = 0;
                    for local in locals_ref {
                        let seg_keys = local.cluster_keys(c);
                        let seg_payloads = local.cluster_payloads(c);
                        key_out[off..off + seg_keys.len()].copy_from_slice(seg_keys);
                        payload_out[off..off + seg_payloads.len()].copy_from_slice(seg_payloads);
                        off += seg_keys.len();
                    }
                    debug_assert_eq!(off, key_out.len());
                }
            });
        }
    });

    Clustered::from_parts(out_keys, out_payloads, bounds, spec)
}

/// Deals clusters `0..H` into at most `parts` contiguous groups with
/// near-equal *tuple* counts (clusters can be heavily skewed, so dealing by
/// cluster index alone would unbalance the merge).
fn balanced_cluster_groups(bounds: &[usize], parts: usize) -> Vec<Range<usize>> {
    let clusters = bounds.len() - 1;
    let n = *bounds.last().unwrap();
    let parts = parts.max(1).min(clusters.max(1));
    let mut groups = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let end = if p + 1 == parts {
            clusters
        } else {
            let target = n * (p + 1) / parts;
            bounds
                .partition_point(|&b| b < target)
                .clamp(start, clusters)
        };
        groups.push(start..end);
        start = end;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rdx_core::cluster::radix_sort_oids;

    fn shuffled_oids(n: usize, seed: u64) -> Vec<Oid> {
        let mut v: Vec<Oid> = (0..n as Oid).collect();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn parallel_equals_sequential_for_every_thread_count() {
        let oids = shuffled_oids(10_000, 3);
        let payloads: Vec<u32> = (0..10_000).collect();
        for bits in [0u32, 1, 4, 9] {
            for passes in [1u32, 2, 3] {
                let spec = RadixClusterSpec::partial(bits, passes, 2);
                let expected = radix_cluster_oids(&oids, &payloads, spec);
                for threads in [1usize, 2, 3, 8] {
                    let policy = ExecPolicy::with_threads(threads);
                    let got = par_radix_cluster_oids(&oids, &payloads, spec, &policy);
                    assert_eq!(
                        got, expected,
                        "bits={bits} passes={passes} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn hashed_parallel_equals_sequential() {
        let keys: Vec<u64> = (0..8_192).map(|i| i * 2654435761 % 10_000).collect();
        let payloads: Vec<u32> = (0..8_192).collect();
        let spec = RadixClusterSpec::new(6, 2);
        let expected = radix_cluster(&keys, &payloads, spec);
        for threads in [2usize, 5, 8] {
            let got = par_radix_cluster(&keys, &payloads, spec, &ExecPolicy::with_threads(threads));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sort_equals_sequential_sort() {
        let oids = shuffled_oids(20_000, 9);
        let payloads: Vec<u32> = (0..20_000).collect();
        let expected = radix_sort_oids(&oids, &payloads, 20_000);
        let got = par_radix_sort_oids(&oids, &payloads, 20_000, &ExecPolicy::with_threads(4));
        assert_eq!(got, expected);
    }

    #[test]
    fn skewed_clusters_still_merge_correctly() {
        // Every key lands in cluster 0 except a handful: exercises the
        // balanced group dealing with pathological skew.
        let mut oids = vec![0 as Oid; 5_000];
        oids.extend([7, 9, 15, 31].iter().map(|&x| x as Oid));
        let payloads: Vec<u32> = (0..oids.len() as u32).collect();
        let spec = RadixClusterSpec::single_pass(5);
        let expected = radix_cluster_oids(&oids, &payloads, spec);
        for threads in [2usize, 8] {
            let got =
                par_radix_cluster_oids(&oids, &payloads, spec, &ExecPolicy::with_threads(threads));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let policy = ExecPolicy::with_threads(8);
        let empty =
            par_radix_cluster_oids::<u32>(&[], &[], RadixClusterSpec::single_pass(4), &policy);
        assert_eq!(empty.num_clusters(), 16);
        assert!(empty.is_empty());
        let one = par_radix_cluster_oids(&[3], &[99u32], RadixClusterSpec::single_pass(4), &policy);
        assert_eq!(one.keys(), &[3]);
        assert_eq!(one.payloads(), &[99]);
    }
}
