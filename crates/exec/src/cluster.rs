//! Parallel Radix-Cluster: per-thread local clustering + prefix-sum merge.
//!
//! Each worker radix-clusters one contiguous shard of the input with the
//! sequential scatter engine **inside its own [`ClusterScratch`] arena** (so
//! every per-pass cursor set stays cache-contained *per core* and no worker
//! allocates per shard), then the per-shard cluster sizes are prefix-summed
//! into global cluster borders and the shards are merged — in worker order,
//! so the result is **byte-identical** to the sequential
//! [`rdx_core::cluster::radix_cluster`]: the sequential kernel is a stable
//! counting sort, worker shards are contiguous input ranges, and
//! concatenating each cluster's per-shard segments in shard order reproduces
//! exactly the stable global order.
//!
//! The merge builds the output with `Vec::with_capacity` + per-cluster
//! `extend_from_slice` — the earlier design initialised the output with
//! `vec![keys[0]; n]` and then overwrote every slot from worker threads,
//! writing each output byte twice; since the initialising fill was itself a
//! full sequential write, the fill-then-parallel-copy scheme could never
//! beat a single sequential pass, so the double-init is simply gone.

use crate::pool::{partition_ranges, ExecPolicy};
use rdx_core::cluster::{
    radix_sort_spec, ClusterScratch, Clustered, RadixClusterSpec, ScatterMode, ScratchClustered,
};
use rdx_dsm::Oid;

/// Reusable per-worker [`ClusterScratch`] arenas for the parallel cluster
/// kernels: one arena per worker thread, grown on demand and retained
/// across calls, so repeated parallel clusterings (per query, per batch)
/// allocate only their outputs.
#[derive(Debug, Default)]
pub struct ParClusterScratch<K, P> {
    workers: Vec<ClusterScratch<K, P>>,
}

impl<K, P> ParClusterScratch<K, P> {
    /// An empty pool; per-worker arenas are created on first use.
    pub fn new() -> Self {
        ParClusterScratch {
            workers: Vec::new(),
        }
    }

    /// Resident heap bytes across all per-worker arenas.
    pub fn resident_bytes(&self) -> usize {
        self.workers.iter().map(|w| w.resident_bytes()).sum()
    }
}

/// Parallel `radix_cluster(B, P)` over hashed keys; byte-identical to the
/// sequential [`rdx_core::cluster::radix_cluster`] for every
/// `(spec, policy)`.  Allocates one-shot per-worker scratch; hot paths
/// should hold a [`ParClusterScratch`] and call
/// [`par_radix_cluster_with_scratch`].
pub fn par_radix_cluster<P: Copy + Send + Sync>(
    keys: &[u64],
    payloads: &[P],
    spec: RadixClusterSpec,
    policy: &ExecPolicy,
) -> Clustered<u64, P> {
    par_radix_cluster_with_scratch(
        keys,
        payloads,
        spec,
        ScatterMode::Auto,
        policy,
        &mut ParClusterScratch::new(),
    )
}

/// [`par_radix_cluster`] with an explicit scatter mode and reusable
/// per-worker arenas.
pub fn par_radix_cluster_with_scratch<P: Copy + Send + Sync>(
    keys: &[u64],
    payloads: &[P],
    spec: RadixClusterSpec,
    mode: ScatterMode,
    policy: &ExecPolicy,
    scratch: &mut ParClusterScratch<u64, P>,
) -> Clustered<u64, P> {
    par_cluster_impl(keys, payloads, spec, mode, policy, scratch, |&k| {
        rdx_core::hash::hash_key(k)
    })
}

/// Parallel clustering of unhashed oids (the join-index case of §3.1);
/// byte-identical to the sequential
/// [`rdx_core::cluster::radix_cluster_oids`].  Allocates one-shot per-worker
/// scratch; hot paths should hold a [`ParClusterScratch`] and call
/// [`par_radix_cluster_oids_with_scratch`].
pub fn par_radix_cluster_oids<P: Copy + Send + Sync>(
    oids: &[Oid],
    payloads: &[P],
    spec: RadixClusterSpec,
    policy: &ExecPolicy,
) -> Clustered<Oid, P> {
    par_radix_cluster_oids_with_scratch(
        oids,
        payloads,
        spec,
        ScatterMode::Auto,
        policy,
        &mut ParClusterScratch::new(),
    )
}

/// [`par_radix_cluster_oids`] with an explicit scatter mode and reusable
/// per-worker arenas.
pub fn par_radix_cluster_oids_with_scratch<P: Copy + Send + Sync>(
    oids: &[Oid],
    payloads: &[P],
    spec: RadixClusterSpec,
    mode: ScatterMode,
    policy: &ExecPolicy,
    scratch: &mut ParClusterScratch<Oid, P>,
) -> Clustered<Oid, P> {
    par_cluster_impl(oids, payloads, spec, mode, policy, scratch, |&o| o as u64)
}

/// Parallel Radix-Sort of an oid column: all significant bits, no ignore
/// bits; byte-identical to [`rdx_core::cluster::radix_sort_oids`].
pub fn par_radix_sort_oids<P: Copy + Send + Sync>(
    oids: &[Oid],
    payloads: &[P],
    domain: usize,
    policy: &ExecPolicy,
) -> Clustered<Oid, P> {
    par_radix_cluster_oids(oids, payloads, radix_sort_spec(domain), policy)
}

fn par_cluster_impl<K, P, F>(
    keys: &[K],
    payloads: &[P],
    spec: RadixClusterSpec,
    mode: ScatterMode,
    policy: &ExecPolicy,
    scratch: &mut ParClusterScratch<K, P>,
    bucket_of: F,
) -> Clustered<K, P>
where
    K: Copy + Send + Sync,
    P: Copy + Send + Sync,
    F: Fn(&K) -> u64 + Sync,
{
    assert_eq!(keys.len(), payloads.len(), "keys/payloads length mismatch");
    let n = keys.len();
    let threads = policy.worker_threads();
    if scratch.workers.len() < threads.max(1) {
        scratch
            .workers
            .resize_with(threads.max(1), ClusterScratch::new);
    }
    if threads == 1 || n == 0 || spec.bits == 0 {
        return scratch.workers[0].cluster_by(keys, payloads, spec, mode, bucket_of);
    }

    // Phase 1 — per-worker local clustering: each worker runs the full
    // (multi-pass, stable) scatter engine on its contiguous shard, entirely
    // inside its own arena — no per-shard histograms, flip buffers or
    // result vectors are allocated.
    let shards = partition_ranges(n, threads);
    std::thread::scope(|scope| {
        let bucket_of = &bucket_of;
        for (worker, range) in scratch.workers.iter_mut().zip(&shards) {
            let r = range.clone();
            scope.spawn(move || {
                worker.cluster_by_in_scratch(&keys[r.clone()], &payloads[r], spec, mode, bucket_of);
            });
        }
    });
    let locals: Vec<ScratchClustered<'_, K, P>> = scratch.workers[..threads]
        .iter()
        .map(|w| match w.view() {
            Some(v) => v,
            // The scope above ran cluster_by_in_scratch on every worker.
            None => unreachable!("worker clustered its shard"),
        })
        .collect();

    // Phase 2 — prefix sum of the per-shard cluster sizes into global borders.
    let clusters = spec.num_clusters();
    let mut bounds = Vec::with_capacity(clusters + 1);
    bounds.push(0usize);
    let mut acc = 0usize;
    for c in 0..clusters {
        acc += locals
            .iter()
            .map(|l| l.cluster_range(c).len())
            .sum::<usize>();
        bounds.push(acc);
    }
    debug_assert_eq!(acc, n);

    // Phase 3 — merge: concatenate each cluster's per-shard segments in
    // shard order, appending into capacity-reserved outputs so every output
    // byte is written exactly once.
    let mut out_keys: Vec<K> = Vec::with_capacity(n);
    let mut out_payloads: Vec<P> = Vec::with_capacity(n);
    for c in 0..clusters {
        for local in &locals {
            out_keys.extend_from_slice(local.cluster_keys(c));
            out_payloads.extend_from_slice(local.cluster_payloads(c));
        }
    }

    Clustered::from_parts(out_keys, out_payloads, bounds, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rdx_core::cluster::{radix_cluster, radix_cluster_oids, radix_sort_oids};

    fn shuffled_oids(n: usize, seed: u64) -> Vec<Oid> {
        let mut v: Vec<Oid> = (0..n as Oid).collect();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn parallel_equals_sequential_for_every_thread_count() {
        let oids = shuffled_oids(10_000, 3);
        let payloads: Vec<u32> = (0..10_000).collect();
        for bits in [0u32, 1, 4, 9] {
            for passes in [1u32, 2, 3] {
                let spec = RadixClusterSpec::partial(bits, passes, 2);
                let expected = radix_cluster_oids(&oids, &payloads, spec);
                for threads in [1usize, 2, 3, 8] {
                    let policy = ExecPolicy::with_threads(threads);
                    let got = par_radix_cluster_oids(&oids, &payloads, spec, &policy);
                    assert_eq!(
                        got, expected,
                        "bits={bits} passes={passes} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn hashed_parallel_equals_sequential() {
        let keys: Vec<u64> = (0..8_192).map(|i| i * 2654435761 % 10_000).collect();
        let payloads: Vec<u32> = (0..8_192).collect();
        let spec = RadixClusterSpec::new(6, 2);
        let expected = radix_cluster(&keys, &payloads, spec);
        for threads in [2usize, 5, 8] {
            let got = par_radix_cluster(&keys, &payloads, spec, &ExecPolicy::with_threads(threads));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn buffered_parallel_equals_sequential_across_scratch_reuse() {
        // One scratch pool across many (spec, mode, threads) calls — the
        // serving layer's reuse pattern — must stay byte-identical to the
        // sequential kernel throughout.
        let mut scratch = ParClusterScratch::new();
        let oids = shuffled_oids(9_000, 17);
        let payloads: Vec<u32> = (0..9_000).collect();
        for spec in [
            RadixClusterSpec::single_pass(5),
            RadixClusterSpec::partial(8, 2, 1),
            RadixClusterSpec::single_pass(0),
        ] {
            let expected = radix_cluster_oids(&oids, &payloads, spec);
            for mode in [ScatterMode::Plain, ScatterMode::Buffered, ScatterMode::Auto] {
                for threads in [1usize, 3, 4] {
                    let got = par_radix_cluster_oids_with_scratch(
                        &oids,
                        &payloads,
                        spec,
                        mode,
                        &ExecPolicy::with_threads(threads),
                        &mut scratch,
                    );
                    assert_eq!(got, expected, "spec={spec:?} mode={mode:?} t={threads}");
                }
            }
        }
        assert!(scratch.resident_bytes() > 0);
    }

    #[test]
    fn parallel_sort_equals_sequential_sort() {
        let oids = shuffled_oids(20_000, 9);
        let payloads: Vec<u32> = (0..20_000).collect();
        let expected = radix_sort_oids(&oids, &payloads, 20_000);
        let got = par_radix_sort_oids(&oids, &payloads, 20_000, &ExecPolicy::with_threads(4));
        assert_eq!(got, expected);
    }

    #[test]
    fn skewed_clusters_still_merge_correctly() {
        // Every key lands in cluster 0 except a handful: exercises the merge
        // with pathological skew.
        let mut oids = vec![0 as Oid; 5_000];
        oids.extend([7, 9, 15, 31].iter().map(|&x| x as Oid));
        let payloads: Vec<u32> = (0..oids.len() as u32).collect();
        let spec = RadixClusterSpec::single_pass(5);
        let expected = radix_cluster_oids(&oids, &payloads, spec);
        for threads in [2usize, 8] {
            let got =
                par_radix_cluster_oids(&oids, &payloads, spec, &ExecPolicy::with_threads(threads));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let policy = ExecPolicy::with_threads(8);
        let empty =
            par_radix_cluster_oids::<u32>(&[], &[], RadixClusterSpec::single_pass(4), &policy);
        assert_eq!(empty.num_clusters(), 16);
        assert!(empty.is_empty());
        let one = par_radix_cluster_oids(&[3], &[99u32], RadixClusterSpec::single_pass(4), &policy);
        assert_eq!(one.keys(), &[3]);
        assert_eq!(one.payloads(), &[99]);
    }
}
