//! Parallel Radix-Decluster: independent insertion-window ranges per worker.
//!
//! Radix-Decluster's writes are confined to the current insertion window, and
//! the windows tile the result without overlap — so the window sequence can
//! be cut into contiguous *window ranges* and each range handed to a worker
//! together with the matching disjoint `&mut` result shard.  A worker finds
//! its per-cluster start cursors by binary search (positions are ascending
//! within every cluster — §3.2 property 2) and then runs the unchanged
//! sequential window loop ([`rdx_core::decluster::radix_decluster_windows`])
//! over its shard.  No synchronisation happens inside the loop, and the
//! output is **byte-identical** to the sequential kernel: every tuple's
//! destination is data-determined, workers merely split who writes it.

use crate::pool::{partition_ranges, split_by_bounds, ExecPolicy};
use rdx_core::decluster::{
    radix_decluster_windows, radix_decluster_windows_with_scratch, validate_inputs, window_elems,
    DeclusterScratch,
};
use rdx_dsm::Oid;

/// Parallel Radix-Decluster; byte-identical to
/// [`rdx_core::decluster::radix_decluster`] for every `(window, policy)`.
///
/// Allocates (and zero-fills) its result per call; hot paths that hold a
/// reusable output buffer should use [`par_radix_decluster_into`].
///
/// # Panics
/// Panics if the slices disagree in length or the borders do not cover the
/// input (same contract as the sequential kernel).
pub fn par_radix_decluster<T: Copy + Default + Send + Sync>(
    values: &[T],
    result_positions: &[Oid],
    bounds: &[usize],
    window_bytes: usize,
    policy: &ExecPolicy,
) -> Vec<T> {
    debug_assert!(validate_inputs(result_positions, bounds));
    let mut result = vec![T::default(); values.len()];
    par_radix_decluster_into(
        values,
        result_positions,
        bounds,
        window_bytes,
        policy,
        &mut DeclusterScratch::new(),
        &mut result,
    );
    result
}

/// Parallel Radix-Decluster into a caller-provided output slice: the
/// parallel counterpart of [`rdx_core::decluster::radix_decluster_into`].
/// Every slot of `out` is overwritten, so no allocation or zero-fill is
/// paid for the result; with one worker the whole sweep runs inline through
/// `scratch` and is allocation-free in steady state (multi-worker sweeps
/// still allocate their per-worker cursor arrays alongside the thread
/// spawns they already require).
///
/// # Panics
/// Panics if the slices disagree in length, `out` has the wrong length, or
/// the borders do not cover the input.
pub fn par_radix_decluster_into<T: Copy + Send + Sync>(
    values: &[T],
    result_positions: &[Oid],
    bounds: &[usize],
    window_bytes: usize,
    policy: &ExecPolicy,
    scratch: &mut DeclusterScratch,
    out: &mut [T],
) {
    let n = values.len();
    assert_eq!(
        result_positions.len(),
        n,
        "values/positions length mismatch"
    );
    assert_eq!(out.len(), n, "output length mismatch");
    assert_eq!(
        *bounds.last().unwrap_or(&0),
        n,
        "cluster borders do not cover the input"
    );
    if n == 0 {
        return;
    }
    let elems = window_elems(window_bytes, std::mem::size_of::<T>());
    let windows = n.div_ceil(elems);
    let threads = policy.worker_threads().min(windows).max(1);
    if threads == 1 {
        radix_decluster_windows_with_scratch(
            values,
            result_positions,
            bounds,
            elems,
            0..windows,
            scratch,
            out,
        );
        return;
    }

    // Cut the window sequence into contiguous per-worker ranges and split the
    // result at the corresponding positions: window range [a, b) owns result
    // positions [a·elems, min(b·elems, n)).
    let groups = partition_ranges(windows, threads);
    let cuts: Vec<usize> = std::iter::once(0)
        .chain(groups.iter().map(|g| (g.end * elems).min(n)))
        .collect();
    let shards = split_by_bounds(out, &cuts);

    std::thread::scope(|scope| {
        for (range, shard) in groups.into_iter().zip(shards) {
            scope.spawn(move || {
                radix_decluster_windows(values, result_positions, bounds, elems, range, shard)
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rdx_core::cluster::{radix_cluster_oids, RadixClusterSpec};
    use rdx_core::decluster::radix_decluster;

    /// The §3.2 pipeline input: cluster a permutation, attach values.
    fn clustered_input(n: usize, bits: u32, seed: u64) -> (Vec<i64>, Vec<Oid>, Vec<usize>) {
        let mut smaller: Vec<Oid> = (0..n as Oid).collect();
        smaller.shuffle(&mut StdRng::seed_from_u64(seed));
        let positions: Vec<Oid> = (0..n as Oid).collect();
        let clustered =
            radix_cluster_oids(&smaller, &positions, RadixClusterSpec::single_pass(bits));
        let values: Vec<i64> = clustered.keys().iter().map(|&o| o as i64 * 7).collect();
        (
            values,
            clustered.payloads().to_vec(),
            clustered.bounds().to_vec(),
        )
    }

    #[test]
    fn parallel_equals_sequential_across_thread_counts_and_windows() {
        for &n in &[1usize, 17, 1_000, 20_000] {
            let (values, positions, bounds) = clustered_input(n, 5, n as u64);
            for window_bytes in [8usize, 256, 4 * 1024, 1 << 20] {
                let expected = radix_decluster(&values, &positions, &bounds, window_bytes);
                for threads in [1usize, 2, 3, 8] {
                    let got = par_radix_decluster(
                        &values,
                        &positions,
                        &bounds,
                        window_bytes,
                        &ExecPolicy::with_threads(threads),
                    );
                    assert_eq!(
                        got, expected,
                        "n={n} window={window_bytes} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_threads_than_windows_degrades_gracefully() {
        let (values, positions, bounds) = clustered_input(100, 3, 4);
        // One giant window: only one window exists, so only one worker runs.
        let expected = radix_decluster(&values, &positions, &bounds, 1 << 20);
        let got = par_radix_decluster(
            &values,
            &positions,
            &bounds,
            1 << 20,
            &ExecPolicy::with_threads(8),
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_radix_decluster(&[], &[], &[0], 1024, &ExecPolicy::with_threads(4));
        assert!(out.is_empty());
    }

    #[test]
    fn into_variant_overwrites_reused_buffers_byte_identically() {
        let mut scratch = DeclusterScratch::new();
        let mut buf: Vec<i64> = Vec::new();
        for &(n, threads) in &[(1_000usize, 1usize), (1_000, 3), (257, 2), (4_096, 1)] {
            let (values, positions, bounds) = clustered_input(n, 4, n as u64);
            let expected = radix_decluster(&values, &positions, &bounds, 512);
            // Garbage-filled reused buffer: every slot must be overwritten.
            buf.clear();
            buf.resize(n, i64::MIN);
            par_radix_decluster_into(
                &values,
                &positions,
                &bounds,
                512,
                &ExecPolicy::with_threads(threads),
                &mut scratch,
                &mut buf,
            );
            assert_eq!(buf, expected, "n={n} threads={threads}");
        }
    }

    #[test]
    fn wide_values_survive_parallel_decluster() {
        let (values, positions, bounds) = clustered_input(2_000, 4, 11);
        let wide: Vec<[i64; 4]> = values.iter().map(|&v| [v, v + 1, v + 2, v + 3]).collect();
        let expected = radix_decluster(&wide, &positions, &bounds, 2048);
        let got = par_radix_decluster(
            &wide,
            &positions,
            &bounds,
            2048,
            &ExecPolicy::with_threads(4),
        );
        assert_eq!(got, expected);
    }
}
