//! Edge-case conformance for the morsel pool and the parallel kernels:
//! empty inputs, one-tuple morsels, more workers than morsels, and the
//! `threads = 0` (auto-detect) policy must all run panic-free and agree with
//! the sequential kernels.

use rdx_cache::CacheParams;
use rdx_core::cluster::{radix_cluster_oids, RadixClusterSpec};
use rdx_core::decluster::radix_decluster;
use rdx_core::join::partitioned_hash_join;
use rdx_core::strategy::{DsmPostProjection, QuerySpec};
use rdx_dsm::Oid;
use rdx_exec::pool::{detected_parallelism, for_each_output_morsel, MorselQueue};
use rdx_exec::{
    par_dsm_post_projection, par_partitioned_hash_join, par_radix_cluster_oids,
    par_radix_decluster, ExecPolicy,
};
use rdx_workload::JoinWorkloadBuilder;

fn decluster_input(n: usize, bits: u32) -> (Vec<i32>, Vec<Oid>, Vec<usize>) {
    let smaller: Vec<Oid> = (0..n as Oid)
        .map(|r| (r.wrapping_mul(2_654_435_761)) % n.max(1) as Oid)
        .collect();
    let positions: Vec<Oid> = (0..n as Oid).collect();
    let c = radix_cluster_oids(&smaller, &positions, RadixClusterSpec::single_pass(bits));
    let values: Vec<i32> = c.keys().iter().map(|&o| o as i32 + 1).collect();
    (values, c.payloads().to_vec(), c.bounds().to_vec())
}

#[test]
fn empty_inputs_run_panic_free_everywhere() {
    for threads in [0usize, 1, 7] {
        let policy = ExecPolicy::with_threads(threads);
        // Morsel fill over an empty output.
        let mut out: Vec<u32> = Vec::new();
        for_each_output_morsel(&mut out, &policy, |_, _| panic!("no morsels expected"));
        // Empty cluster / decluster / join.
        let clustered =
            par_radix_cluster_oids::<u32>(&[], &[], RadixClusterSpec::single_pass(3), &policy);
        assert_eq!(clustered.len(), 0);
        assert_eq!(clustered.num_clusters(), 8);
        let declustered: Vec<i32> = par_radix_decluster(&[], &[], &[0], 64, &policy);
        assert!(declustered.is_empty());
        let ji = par_partitioned_hash_join(&[], &[], RadixClusterSpec::single_pass(2), &policy);
        assert!(ji.is_empty());
    }
    // An empty morsel queue hands out nothing.
    let q = MorselQueue::new(0, 16);
    assert!(q.claim().is_none());
}

#[test]
fn one_tuple_morsels_agree_with_sequential() {
    let (values, positions, bounds) = decluster_input(500, 3);
    let expected = radix_decluster(&values, &positions, &bounds, 128);
    for threads in [0usize, 2, 5] {
        let policy = ExecPolicy::with_threads(threads).morsel_tuples(1);
        assert_eq!(
            par_radix_decluster(&values, &positions, &bounds, 128, &policy),
            expected,
            "threads {threads}"
        );
        let mut out = vec![0usize; 97];
        for_each_output_morsel(&mut out, &policy, |off, chunk| {
            assert_eq!(chunk.len(), 1);
            chunk[0] = off + 1;
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }
}

#[test]
fn more_threads_than_morsels_agree_with_sequential() {
    // 10 tuples, morsels of 4 → 3 morsels, 8 workers: most workers find the
    // queue dry immediately.
    let policy = ExecPolicy::with_threads(8).morsel_tuples(4);
    let mut out = vec![0u32; 10];
    for_each_output_morsel(&mut out, &policy, |off, chunk| {
        for (i, v) in chunk.iter_mut().enumerate() {
            *v = (off + i) as u32;
        }
    });
    assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));

    let larger: Vec<u64> = (0..10).collect();
    let smaller: Vec<u64> = (0..10).rev().collect();
    let spec = RadixClusterSpec::single_pass(2);
    let seq = partitioned_hash_join(&larger, &smaller, spec);
    let par = par_partitioned_hash_join(&larger, &smaller, spec, &policy);
    assert_eq!(par.larger(), seq.larger());
    assert_eq!(par.smaller(), seq.smaller());
}

#[test]
fn zero_threads_policy_agrees_with_sequential_end_to_end() {
    let w = JoinWorkloadBuilder::equal(1_200, 2).seed(13).build();
    let spec = QuerySpec::symmetric(2);
    let params = CacheParams::tiny_for_tests();
    let plan = DsmPostProjection::plan(&w.larger, &w.smaller, &params);
    let seq = plan.execute(&w.larger, &w.smaller, &spec, &params);
    let auto = par_dsm_post_projection(
        &plan,
        &w.larger,
        &w.smaller,
        &spec,
        &params,
        &ExecPolicy::with_threads(0),
    );
    let seq_cols: Vec<&[i32]> = seq.result.columns().iter().map(|c| c.as_slice()).collect();
    let auto_cols: Vec<&[i32]> = auto.result.columns().iter().map(|c| c.as_slice()).collect();
    assert_eq!(auto_cols, seq_cols);
}

#[test]
fn auto_detect_clamps_to_at_least_one_worker() {
    // On a 1-CPU host (this container) available_parallelism() is 1; the
    // clamp guarantees ≥ 1 everywhere regardless.
    let detected = detected_parallelism();
    assert!(detected >= 1);
    assert_eq!(ExecPolicy::available().threads, detected);
    assert_eq!(ExecPolicy::with_threads(0).worker_threads(), detected);
    assert_eq!(ExecPolicy::default().worker_threads(), detected);
    // An explicit count is never overridden by detection.
    assert_eq!(ExecPolicy::with_threads(5).worker_threads(), 5);
}
