//! Row-major (NSM) relations and the record projection routine.

use rdx_dsm::{Column, DsmRelation, Oid};

/// A row-major relation: `N` tuples of `ω` 4-byte integer attributes stored
/// contiguously per tuple, the classic NSM ("slotted records") layout reduced
/// to fixed-width records exactly as the paper's NSM simulation does.
///
/// Attribute `0` is the join key.  The record projection routine
/// [`NsmRelation::project_record`] "iterates over such a record and copies
/// selected values out of it", which is the per-tuple work all NSM strategies
/// pay and the DSM column-at-a-time operators avoid (§4.2, "Pre-Projection
/// Alternatives").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsmRelation {
    width: usize,
    data: Vec<i32>,
}

impl NsmRelation {
    /// Creates an empty relation of `width` attributes per tuple.
    ///
    /// # Panics
    /// Panics if `width == 0`; a relation needs at least the key attribute.
    pub fn new(width: usize) -> Self {
        assert!(
            width >= 1,
            "an NSM relation needs at least the key attribute"
        );
        NsmRelation {
            width,
            data: Vec::new(),
        }
    }

    /// Creates an empty relation with room for `tuples` tuples.
    pub fn with_capacity(width: usize, tuples: usize) -> Self {
        let mut r = Self::new(width);
        r.data.reserve(tuples * width);
        r
    }

    /// Number of tuples `N`.
    pub fn cardinality(&self) -> usize {
        self.data.len() / self.width
    }

    /// Number of attributes per tuple `ω` (including the key).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Width of one record in bytes (`T`, the tuple width of the scalability
    /// bound `O(C²/T²)` in §4.2).
    pub fn tuple_bytes(&self) -> usize {
        self.width * std::mem::size_of::<i32>()
    }

    /// Total size of the relation in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<i32>()
    }

    /// Appends one tuple.
    ///
    /// # Panics
    /// Panics if the slice length differs from the relation width.
    pub fn push_tuple(&mut self, tuple: &[i32]) -> Oid {
        assert_eq!(tuple.len(), self.width, "tuple width mismatch");
        let oid = self.cardinality() as Oid;
        self.data.extend_from_slice(tuple);
        oid
    }

    /// Borrow tuple `row` as a slice of its attributes.
    #[inline]
    pub fn tuple(&self, row: usize) -> &[i32] {
        let start = row * self.width;
        &self.data[start..start + self.width]
    }

    /// The join key of tuple `row` (attribute 0), widened for hashing.
    #[inline]
    pub fn key(&self, row: usize) -> u64 {
        self.data[row * self.width] as u32 as u64
    }

    /// Attribute `attr` of tuple `row`.
    #[inline]
    pub fn value(&self, row: usize, attr: usize) -> i32 {
        self.data[row * self.width + attr]
    }

    /// The NSM record projection routine: copies the attributes listed in
    /// `projection` out of record `row` and appends them to `out`.
    ///
    /// This is deliberately written with a run-time attribute list (a "degree
    /// of freedom" in the paper's words) — the per-tuple interpretation
    /// overhead it causes relative to DSM's hard-coded column loops is part of
    /// what Fig. 10a measures.
    #[inline]
    pub fn project_record(&self, row: usize, projection: &[usize], out: &mut Vec<i32>) {
        let tuple = self.tuple(row);
        for &attr in projection {
            out.push(tuple[attr]);
        }
    }

    /// Iterate over all tuples.
    pub fn iter(&self) -> impl Iterator<Item = &[i32]> {
        self.data.chunks_exact(self.width)
    }

    /// Vertically fragments the relation into DSM columns ("projection
    /// indices" in the §5 terminology): the key attribute becomes the DSM key
    /// column, every other attribute becomes one value column.
    pub fn to_dsm(&self) -> DsmRelation {
        let n = self.cardinality();
        let mut key = Vec::with_capacity(n);
        for row in 0..n {
            key.push(self.key(row));
        }
        let mut rel = DsmRelation::from_key(Column::from_vec(key));
        for attr in 1..self.width {
            let mut col = Vec::with_capacity(n);
            for row in 0..n {
                col.push(self.value(row, attr));
            }
            rel.push_attr(Column::from_vec(col));
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NsmRelation {
        let mut r = NsmRelation::new(4);
        r.push_tuple(&[10, 1, 2, 3]);
        r.push_tuple(&[20, 4, 5, 6]);
        r.push_tuple(&[30, 7, 8, 9]);
        r
    }

    #[test]
    fn geometry() {
        let r = sample();
        assert_eq!(r.cardinality(), 3);
        assert_eq!(r.width(), 4);
        assert_eq!(r.tuple_bytes(), 16);
        assert_eq!(r.byte_size(), 48);
    }

    #[test]
    fn tuple_and_value_access() {
        let r = sample();
        assert_eq!(r.tuple(1), &[20, 4, 5, 6]);
        assert_eq!(r.key(2), 30);
        assert_eq!(r.value(0, 3), 3);
    }

    #[test]
    #[should_panic]
    fn push_rejects_wrong_width() {
        let mut r = NsmRelation::new(3);
        r.push_tuple(&[1, 2]);
    }

    #[test]
    fn record_projection_copies_selected_attributes() {
        let r = sample();
        let mut out = Vec::new();
        r.project_record(1, &[3, 1], &mut out);
        r.project_record(2, &[3, 1], &mut out);
        assert_eq!(out, vec![6, 4, 9, 7]);
    }

    #[test]
    fn to_dsm_fragments_vertically() {
        let r = sample();
        let dsm = r.to_dsm();
        assert_eq!(dsm.cardinality(), 3);
        assert_eq!(dsm.width(), 3);
        assert_eq!(dsm.key().as_slice(), &[10, 20, 30]);
        assert_eq!(dsm.attr(0).as_slice(), &[1, 4, 7]);
        assert_eq!(dsm.attr(2).as_slice(), &[3, 6, 9]);
    }

    #[test]
    fn negative_key_widens_without_sign_extension_surprises() {
        let mut r = NsmRelation::new(1);
        r.push_tuple(&[-1]);
        // -1 as u32 as u64 keeps the bit pattern 0xFFFF_FFFF; what matters is
        // that equal i32 keys map to equal u64 keys, which this guarantees.
        assert_eq!(r.key(0), u32::MAX as u64);
    }

    #[test]
    fn iter_visits_all_tuples() {
        let r = sample();
        assert_eq!(r.iter().count(), 3);
        assert_eq!(r.iter().next().unwrap(), &[10, 1, 2, 3]);
    }
}
