//! # rdx-nsm — N-ary Storage Model substrate
//!
//! The paper compares its DSM strategies against the conventional NSM layout,
//! "simulated" in MonetDB "by introducing new atomic types that hold 1, 4, 16,
//! 64, and 256 integer column values, and which are copied and projected from
//! using a NSM projection routine that iterates over such a 'record' and
//! copies selected values out of it" (§4).  This crate provides:
//!
//! * [`NsmRelation`] — a row-major relation of ω 4-byte attributes per tuple
//!   (attribute 0 is the join key), plus the record-projection routine.
//! * [`Page`] / [`BufferManager`] — slotted pages with the record-offset
//!   directory at the end of the page and the page/offset arithmetic of
//!   Fig. 12, used by the §5 "DSM Radix-Decluster in a NSM DBMS" scenario.
//! * [`paged::assign_positions`] — phase 2 of the Fig. 12 three-phase
//!   decluster: turning per-value lengths into page/offset placements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod paged;
pub mod relation;

pub use buffer::{BufferManager, Page, PageId, SlotId};
pub use paged::{assign_positions, Placement};
pub use relation::NsmRelation;
