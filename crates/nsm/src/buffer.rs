//! Slotted pages and a minimal buffer manager (paper §5, Fig. 12).
//!
//! In an NSM RDBMS "columns would be stored in pages at various locations of
//! the buffer pool", so Radix-Decluster's insert-by-position must be mapped to
//! (page, offset) pairs.  These types provide the target of that mapping: a
//! pool of fixed-size pages, each with a header, a payload area filled from
//! the front, and a record-offset directory growing from the end of the page
//! ("record offsets at end of page" in Fig. 12).

/// Identifies a page within a [`BufferManager`].
pub type PageId = usize;

/// Identifies a record slot within a [`Page`].
pub type SlotId = usize;

/// Size of the page header in bytes (Fig. 12's `hdr`).
pub const PAGE_HEADER_BYTES: usize = 8;

/// Size of one slot-directory entry in bytes (Fig. 12's `sizeof(short)`).
pub const SLOT_ENTRY_BYTES: usize = 2;

/// A fixed-size slotted page.
///
/// Payload bytes are written at explicit offsets (Radix-Decluster dictates the
/// position); the slot directory at the end of the page records, per record,
/// the payload offset where it starts, so records remain addressable by
/// `(PageId, SlotId)` afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    payload: Vec<u8>,
    /// Slot directory: `slots[i]` = payload offset of record `i`'s first byte,
    /// `u16::MAX` when slot `i` has not been written yet.
    slots: Vec<u16>,
    page_size: usize,
}

impl Page {
    /// Creates an empty page of `page_size` total bytes.
    ///
    /// # Panics
    /// Panics if `page_size` is too small to hold the header plus one slot.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size > PAGE_HEADER_BYTES + SLOT_ENTRY_BYTES,
            "page size {page_size} too small"
        );
        Page {
            payload: Vec::new(),
            slots: Vec::new(),
            page_size,
        }
    }

    /// Total page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Payload capacity of the page given `nslots` directory entries — the
    /// `P = sizeof(page) − (sizeof(hdr) + sizeof(short))`-per-record budget of
    /// Fig. 12 generalised to the actual slot count.
    pub fn payload_capacity(&self, nslots: usize) -> usize {
        self.page_size - PAGE_HEADER_BYTES - nslots * SLOT_ENTRY_BYTES
    }

    /// Number of slots registered so far.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of payload written so far (high-water mark).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Writes `bytes` at payload offset `offset`, registering it as slot
    /// `slot`.  Gaps between writes are zero-filled; Radix-Decluster writes
    /// positions out of order, so arriving "late" for an earlier offset is
    /// normal.
    ///
    /// # Panics
    /// Panics if the write would exceed the payload capacity for the current
    /// slot count, or if the slot was already written.
    pub fn write_at(&mut self, slot: SlotId, offset: usize, bytes: &[u8]) {
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, u16::MAX);
        }
        assert_eq!(self.slots[slot], u16::MAX, "slot {slot} written twice");
        let end = offset + bytes.len();
        assert!(
            end <= self.payload_capacity(self.slots.len()),
            "write of {} bytes at offset {offset} overflows page (capacity {})",
            bytes.len(),
            self.payload_capacity(self.slots.len())
        );
        if end > self.payload.len() {
            self.payload.resize(end, 0);
        }
        self.payload[offset..end].copy_from_slice(bytes);
        self.slots[slot] = offset as u16;
    }

    /// Reads the record registered in `slot`, given its length.
    pub fn read(&self, slot: SlotId, len: usize) -> &[u8] {
        let offset = self.slots[slot];
        assert_ne!(offset, u16::MAX, "slot {slot} never written");
        &self.payload[offset as usize..offset as usize + len]
    }

    /// The payload offset registered for `slot`, if written.
    pub fn slot_offset(&self, slot: SlotId) -> Option<usize> {
        match self.slots.get(slot) {
            Some(&o) if o != u16::MAX => Some(o as usize),
            _ => None,
        }
    }
}

/// A pool of pre-allocated pages ("Output space has been allocated in a number
/// of buffer pages, whose start addresses are stored in an index array",
/// Fig. 12).
#[derive(Debug, Clone)]
pub struct BufferManager {
    page_size: usize,
    pages: Vec<Page>,
}

impl BufferManager {
    /// Creates a buffer manager handing out pages of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        BufferManager {
            page_size,
            pages: Vec::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pre-allocates `n` empty pages, returning the id of the first one.
    pub fn allocate(&mut self, n: usize) -> PageId {
        let first = self.pages.len();
        for _ in 0..n {
            self.pages.push(Page::new(self.page_size));
        }
        first
    }

    /// Number of pages currently allocated.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Borrow page `id`.
    pub fn page(&self, id: PageId) -> &Page {
        &self.pages[id]
    }

    /// Mutably borrow page `id`.
    pub fn page_mut(&mut self, id: PageId) -> &mut Page {
        &mut self.pages[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_write_and_read_roundtrip() {
        let mut p = Page::new(128);
        p.write_at(0, 0, b"fast");
        p.write_at(1, 4, b"hashing");
        assert_eq!(p.read(0, 4), b"fast");
        assert_eq!(p.read(1, 7), b"hashing");
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.slot_offset(1), Some(4));
    }

    #[test]
    fn out_of_order_writes_zero_fill_gaps() {
        let mut p = Page::new(128);
        p.write_at(1, 10, b"bb");
        p.write_at(0, 0, b"a");
        assert_eq!(p.read(0, 1), b"a");
        assert_eq!(p.read(1, 2), b"bb");
        // The gap between offset 1 and 10 is zero-filled.
        assert_eq!(p.payload_len(), 12);
    }

    #[test]
    #[should_panic]
    fn double_write_to_slot_panics() {
        let mut p = Page::new(128);
        p.write_at(0, 0, b"x");
        p.write_at(0, 1, b"y");
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut p = Page::new(32);
        // capacity = 32 - 8 - 2 = 22 bytes with one slot
        p.write_at(0, 0, &[0u8; 23]);
    }

    #[test]
    fn payload_capacity_shrinks_with_slot_count() {
        let p = Page::new(4096);
        assert_eq!(p.payload_capacity(0), 4096 - 8);
        assert_eq!(p.payload_capacity(10), 4096 - 8 - 20);
    }

    #[test]
    fn buffer_manager_allocates_pages() {
        let mut bm = BufferManager::new(256);
        let first = bm.allocate(3);
        assert_eq!(first, 0);
        assert_eq!(bm.num_pages(), 3);
        bm.page_mut(2).write_at(0, 0, b"xyz");
        assert_eq!(bm.page(2).read(0, 3), b"xyz");
        let next = bm.allocate(2);
        assert_eq!(next, 3);
        assert_eq!(bm.num_pages(), 5);
    }
}
