//! Phase 2 of the Fig. 12 three-phase buffer-manager decluster: mapping
//! per-value lengths to (page, slot, offset) placements.
//!
//! Fig. 12 computes a running byte position `B = sizeof(short)·i + Σ lengths`
//! and derives `page# = B / P`, `offset = B % P`.  A raw modulo would let a
//! value straddle a page boundary, which a slotted page cannot represent; we
//! therefore use the page-aware variant (bump to the next page when a value
//! does not fit), which keeps the same sequential-prefix-sum structure and the
//! same per-record `sizeof(short)` directory charge.  DESIGN.md records this
//! as the one intentional refinement over the figure.

use crate::buffer::{BufferManager, PAGE_HEADER_BYTES, SLOT_ENTRY_BYTES};

/// Where one value will be written: page, slot within the page, and payload
/// offset within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Page index (relative to the first page allocated for this output).
    pub page: usize,
    /// Slot index within the page.
    pub slot: usize,
    /// Payload byte offset within the page.
    pub offset: usize,
}

/// Computes placements for values of the given `lengths` (in final result
/// order) into pages of `page_size` bytes.
///
/// Every value is charged its own bytes plus one slot-directory entry; a value
/// that does not fit in the remaining payload of the current page starts a new
/// page.  This is the "sequential pass over SIZE_VALUES creating incremental
/// sums" of Fig. 12 phase 2.
///
/// # Panics
/// Panics if any single value (plus header and one slot entry) exceeds the
/// page size.
pub fn assign_positions(lengths: &[usize], page_size: usize) -> Vec<Placement> {
    let budget = page_size - PAGE_HEADER_BYTES;
    let mut placements = Vec::with_capacity(lengths.len());
    let mut page = 0usize;
    let mut slot = 0usize;
    let mut offset = 0usize;
    for (i, &len) in lengths.iter().enumerate() {
        let needed = len + SLOT_ENTRY_BYTES;
        assert!(
            needed <= budget,
            "value {i} of {len} bytes cannot fit a {page_size}-byte page"
        );
        let used = offset + (slot + 1) * SLOT_ENTRY_BYTES;
        if used + len > budget {
            page += 1;
            slot = 0;
            offset = 0;
        }
        placements.push(Placement { page, slot, offset });
        offset += len;
        slot += 1;
    }
    placements
}

/// Number of pages the placements occupy (0 for an empty input).
pub fn pages_needed(placements: &[Placement]) -> usize {
    placements.last().map(|p| p.page + 1).unwrap_or(0)
}

/// Pre-allocates exactly the pages `placements` need in `bm`, returning the
/// id of the first page.
pub fn allocate_for(bm: &mut BufferManager, placements: &[Placement]) -> usize {
    bm.allocate(pages_needed(placements))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_page_layout_is_sequential() {
        let lengths = [4, 7, 5];
        let p = assign_positions(&lengths, 4096);
        assert_eq!(
            p,
            vec![
                Placement {
                    page: 0,
                    slot: 0,
                    offset: 0
                },
                Placement {
                    page: 0,
                    slot: 1,
                    offset: 4
                },
                Placement {
                    page: 0,
                    slot: 2,
                    offset: 11
                },
            ]
        );
        assert_eq!(pages_needed(&p), 1);
    }

    #[test]
    fn values_never_straddle_pages() {
        // page 64: budget = 56 payload+slots bytes.
        let lengths = [20, 20, 20, 20];
        let p = assign_positions(&lengths, 64);
        // 20+2 + 20+2 = 44 fits; adding another 20+2 = 66 > 56 -> new page.
        assert_eq!(p[0].page, 0);
        assert_eq!(p[1].page, 0);
        assert_eq!(p[2].page, 1);
        assert_eq!(p[3].page, 1);
        assert_eq!(p[2].offset, 0);
        assert_eq!(p[2].slot, 0);
    }

    #[test]
    fn slot_entry_bytes_are_charged() {
        // Without the 2-byte slot charge three 18-byte values would fit a
        // 64-byte page (54 <= 56); with it the third one spills.
        let lengths = [18, 18, 18];
        let p = assign_positions(&lengths, 64);
        assert_eq!(p[2].page, 1);
    }

    #[test]
    #[should_panic]
    fn oversized_value_panics() {
        assign_positions(&[100], 64);
    }

    #[test]
    fn empty_input() {
        let p = assign_positions(&[], 4096);
        assert!(p.is_empty());
        assert_eq!(pages_needed(&p), 0);
    }

    #[test]
    fn allocate_for_creates_exactly_needed_pages() {
        let lengths = vec![30; 10];
        let p = assign_positions(&lengths, 64);
        let mut bm = BufferManager::new(64);
        let first = allocate_for(&mut bm, &p);
        assert_eq!(first, 0);
        assert_eq!(bm.num_pages(), pages_needed(&p));
        // one 30-byte value + slot entry per page (30+2)*2 = 64 > 56 budget
        assert_eq!(bm.num_pages(), 10);
    }
}
